#!/usr/bin/env sh
# Tier-1 verification: the whole workspace must build and test fully
# offline against the committed Cargo.lock (the build is hermetic — see
# DESIGN.md §5). The in-tree lpmem-lint gate always runs (it needs nothing
# beyond cargo itself); fmt and clippy run strictly when installed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked --offline"
cargo build --release --locked --offline

echo "==> cargo test -q --locked --offline"
cargo test -q --locked --offline

echo "==> sweep smoke (quick grid, 4 workers)"
LPMEM_BENCH_QUICK=1 LPMEM_SWEEP_THREADS=4 \
    cargo run --release --locked --offline -p lpmem-bench --bin sweep -- \
    --quick --jsonl /dev/null

echo "==> explore smoke (small space, exhaustive, fixed seed)"
cargo run --release --locked --offline -p lpmem-bench --bin explore -- \
    --axes small --strategy exhaustive --budget 32 --seed 2003 \
    --threads 2 --jsonl /dev/null

echo "==> isa backend differential smoke + speedup gate (DESIGN.md §10)"
# Byte-identical traces on every kernel is a hard gate; the >=5x speedup
# check self-skips on single-CPU machines (or LPMEM_SKIP_TIMING_GATE=1),
# where wall-clock ratios are meaningless. Quick sampling: the committed
# BENCH_isa.json comes from a full run, not from here.
mkdir -p target
cargo run --release --locked --offline -p lpmem-bench --bin isa-bench -- \
    --quick --json target/BENCH_isa_smoke.json --check-speedup 5

echo "==> fleet smoke: worker byte-identity + bounded-memory gate (DESIGN.md §11)"
# The fleet path streams every device through the online statistics, so
# peak RSS is bounded by per-device footprint, not fleet size:
# materializing this smoke's event stream (20000 devices x 1024 events
# x 16 B/event) would need ~320 MiB and blow the 128 MiB gate. The JSONL
# body must be byte-identical at any worker count.
cargo run --release --locked --offline -p lpmem-bench --bin fleet -- \
    --devices 20000 --events 1024 --threads 1 --jsonl target/fleet_t1.jsonl
cargo run --release --locked --offline -p lpmem-bench --bin fleet -- \
    --devices 20000 --events 1024 --threads 2 --jsonl target/fleet_t2.jsonl \
    --assert-peak-rss-mb 128
cmp target/fleet_t1.jsonl target/fleet_t2.jsonl

echo "==> fault campaign smoke: worker byte-identity + zero-fault equivalence (DESIGN.md §12)"
# Campaign reports draw every flip from logical coordinates, so the
# fault-mode JSONL must be byte-identical at any worker count; and a
# disabled FaultSpec must reproduce the plain fleet bytes exactly (the
# reliability layer costs nothing when off).
cargo run --release --locked --offline -p lpmem-bench --bin fleet -- \
    --devices 2000 --faults secded --tech t90 --threads 1 \
    --jsonl target/fault_t1.jsonl
cargo run --release --locked --offline -p lpmem-bench --bin fleet -- \
    --devices 2000 --faults secded --tech t90 --threads 2 \
    --jsonl target/fault_t2.jsonl
cmp target/fault_t1.jsonl target/fault_t2.jsonl
cargo run --release --locked --offline -p lpmem-bench --bin fleet -- \
    --devices 2000 --faults off --threads 2 --jsonl target/fault_off.jsonl
cargo run --release --locked --offline -p lpmem-bench --bin fleet -- \
    --devices 2000 --threads 2 --jsonl target/fault_plain.jsonl
cmp target/fault_off.jsonl target/fault_plain.jsonl

echo "==> cmp smoke: worker byte-identity + zero-CMP equivalence (DESIGN.md §13)"
# CMP scenarios draw every core seed and fault flip from logical
# coordinates, so the --cmp JSONL must be byte-identical at any worker
# count; and a disabled CmpSpec must reproduce the plain sweep bytes
# exactly (the scenario layer costs nothing when off).
cargo run --release --locked --offline -p lpmem-bench --bin sweep -- \
    --quick --threads 1 --flows system --kernels fir --techs t180,t90 \
    --variants default --cmp c4b8x32w4-zrun-t180+t90-p600 \
    --jsonl target/cmp_t1.jsonl
cargo run --release --locked --offline -p lpmem-bench --bin sweep -- \
    --quick --threads 2 --flows system --kernels fir --techs t180,t90 \
    --variants default --cmp c4b8x32w4-zrun-t180+t90-p600 \
    --jsonl target/cmp_t2.jsonl
cmp target/cmp_t1.jsonl target/cmp_t2.jsonl
cargo run --release --locked --offline -p lpmem-bench --bin sweep -- \
    --quick --threads 2 --flows system --kernels fir --techs t180,t90 \
    --variants default --cmp off --jsonl target/cmp_off.jsonl
cargo run --release --locked --offline -p lpmem-bench --bin sweep -- \
    --quick --threads 2 --flows system --kernels fir --techs t180,t90 \
    --variants default --jsonl target/cmp_plain.jsonl
cmp target/cmp_off.jsonl target/cmp_plain.jsonl

echo "==> cmp-bench quick run (cores x banks scaling table)"
# Quick sampling: the committed BENCH_cmp.json comes from a full run,
# not from here. The outcome counters it prints are deterministic either
# way; only the timings vary.
cargo run --release --locked --offline -p lpmem-bench --bin cmp-bench -- \
    --quick --json target/BENCH_cmp_smoke.json

echo "==> pool panic-isolation gate (DESIGN.md §12)"
# A panicking task must yield a deterministic per-task error record, not
# kill the harness.
cargo test -q --locked --offline -p lpmem-util --lib pool
cargo test -q --locked --offline -p lpmem-bench --test sweep fault

echo "==> fleet bench report (self-skips on single-CPU hosts, like isa-bench)"
# Quick throughput emission: the committed BENCH_fleet.json comes from a
# full 1M-device run, not from here.
if [ "$(nproc 2>/dev/null || echo 1)" -gt 1 ] && [ -z "${LPMEM_SKIP_TIMING_GATE:-}" ]; then
    cargo run --release --locked --offline -p lpmem-bench --bin fleet -- \
        --devices 100000 --bench-json target/BENCH_fleet_smoke.json
else
    echo "    skipped (single CPU or LPMEM_SKIP_TIMING_GATE); committed BENCH_fleet.json stands"
fi

echo "==> lpmem-lint --deny (determinism/accounting invariants, DESIGN.md §9, §14)"
# The bench record doubles as a smoke test of the semantic phase: a full
# workspace analysis (AST + call graph + taint fixpoint) must finish and
# report its counters. The committed BENCH_lint.json comes from the same
# command at the repo root.
cargo run --release --locked --offline -p lpmem-lint --bin lint -- \
    --deny --bench-json target/BENCH_lint_smoke.json
grep -q '"schema":"lpmem-lint-bench-v1"' target/BENCH_lint_smoke.json

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format gate"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --all-targets --locked --offline -- -D warnings"
    cargo clippy --workspace --all-targets --locked --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint gate"
fi

echo "verify: OK"
