#!/usr/bin/env sh
# Tier-1 verification: the whole workspace must build and test fully
# offline against the committed Cargo.lock (the build is hermetic — see
# DESIGN.md §5). The in-tree lpmem-lint gate always runs (it needs nothing
# beyond cargo itself); fmt and clippy run strictly when installed.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked --offline"
cargo build --release --locked --offline

echo "==> cargo test -q --locked --offline"
cargo test -q --locked --offline

echo "==> sweep smoke (quick grid, 4 workers)"
LPMEM_BENCH_QUICK=1 LPMEM_SWEEP_THREADS=4 \
    cargo run --release --locked --offline -p lpmem-bench --bin sweep -- \
    --quick --jsonl /dev/null

echo "==> explore smoke (small space, exhaustive, fixed seed)"
cargo run --release --locked --offline -p lpmem-bench --bin explore -- \
    --axes small --strategy exhaustive --budget 32 --seed 2003 \
    --threads 2 --jsonl /dev/null

echo "==> isa backend differential smoke + speedup gate (DESIGN.md §10)"
# Byte-identical traces on every kernel is a hard gate; the >=5x speedup
# check self-skips on single-CPU machines (or LPMEM_SKIP_TIMING_GATE=1),
# where wall-clock ratios are meaningless. Quick sampling: the committed
# BENCH_isa.json comes from a full run, not from here.
mkdir -p target
cargo run --release --locked --offline -p lpmem-bench --bin isa-bench -- \
    --quick --json target/BENCH_isa_smoke.json --check-speedup 5

echo "==> lpmem-lint --deny (determinism/accounting invariants, DESIGN.md §9)"
cargo run --release --locked --offline -p lpmem-lint --bin lint -- --deny

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt not installed; skipping format gate"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --all-targets --locked --offline -- -D warnings"
    cargo clippy --workspace --all-targets --locked --offline -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint gate"
fi

echo "verify: OK"
