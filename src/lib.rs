//! # lpmem — energy-efficient embedded memory-system optimization
//!
//! `lpmem` is a full reproduction of the DATE 2003 Session 1B
//! (*Energy-Efficient Memory Systems*) line of work, built as a Rust
//! workspace with every substrate implemented from scratch:
//!
//! * **address clustering** for memory partitioning
//!   ([`cluster`], [`partition`] — 1B.1);
//! * **energy-driven differential write-back compression**
//!   ([`compress`] — 1B.2);
//! * **application-specific instruction-bus encoding**
//!   ([`buscode`] — 1B.3);
//! * **two-level on-chip data scheduling** for multi-context
//!   reconfigurable fabrics ([`sched`] — 1B.4);
//! * substrates: trace analysis ([`trace`]), a TinyRISC ISA simulator with
//!   a verified benchmark-kernel suite ([`isa`]), a data-carrying cache
//!   simulator ([`mem`]), and analytic energy models ([`energy`]);
//! * ready-made evaluation flows tying it all together ([`core`]);
//! * multi-objective design-space exploration over the cross-flow
//!   configuration space, with a deterministic Pareto engine
//!   ([`explore`]).
//!
//! This crate re-exports the whole workspace; depend on it for everything,
//! or on the individual `lpmem-*` crates for narrower footprints. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduction results.
//!
//! # Quickstart
//!
//! ```
//! use lpmem::prelude::*;
//!
//! // Run a verified TinyRISC kernel and optimize its data memory.
//! let run = Kernel::Histogram.run(16, 42)?;
//! let outcome = run_partitioning(
//!     "histogram",
//!     &run.trace,
//!     &PartitioningConfig::default(),
//!     &Technology::tech180(),
//! )?;
//! println!(
//!     "monolithic {} -> partitioned {} -> clustered {}",
//!     outcome.monolithic, outcome.partitioned, outcome.clustered
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use lpmem_buscode as buscode;
pub use lpmem_cluster as cluster;
pub use lpmem_compress as compress;
pub use lpmem_core as core;
pub use lpmem_energy as energy;
pub use lpmem_explore as explore;
pub use lpmem_isa as isa;
pub use lpmem_mem as mem;
pub use lpmem_partition as partition;
pub use lpmem_sched as sched;
pub use lpmem_trace as trace;

/// The most commonly used items in one import.
pub mod prelude {
    pub use lpmem_buscode::{BusInvert, RegionEncoder, XorTransform};
    pub use lpmem_cluster::{cluster_blocks, AddressMap, ClusterConfig, Objective};
    pub use lpmem_compress::{
        analyze_writebacks, DiffCodec, FpcCodec, LineCodec, RawCodec, ZeroRunCodec,
    };
    pub use lpmem_core::flows::buscoding::{run_buscoding, BusCodingOutcome};
    pub use lpmem_core::flows::compression::{
        run_compression_kernel, run_compression_trace, CompressionConfig, CompressionOutcome,
        PlatformKind,
    };
    pub use lpmem_core::flows::partitioning::{
        run_partitioning, PartitioningConfig, PartitioningOutcome,
    };
    pub use lpmem_core::flows::scheduling::{dsp_pipeline_app, run_scheduling, SchedulingOutcome};
    pub use lpmem_core::flows::system::{run_system, run_system_with_tech, SystemOutcome};
    pub use lpmem_core::flows::{
        CmpReport, CmpSpec, FlowSpec, FlowSummary, LlcCodec, TechNode, VariantSpec,
    };
    pub use lpmem_core::{workloads, DeviceArchetype, FlowError, WorkloadMix};
    pub use lpmem_energy::{
        AreaReport, BusModel, Energy, EnergyReport, OffChipModel, SramModel, Technology,
    };
    pub use lpmem_explore::{
        DesignPoint, DesignSpace, Evaluator, Evolutionary, Exhaustive, Frontier, Objectives,
        SearchConfig, SearchStrategy, Workload,
    };
    pub use lpmem_isa::{assemble, Kernel, KernelRun, Machine, Program};
    pub use lpmem_mem::{Cache, CacheConfig, FlatMemory, RecordingBacking};
    pub use lpmem_partition::{greedy_partition, optimal_partition, Partition, PartitionCost};
    pub use lpmem_sched::{greedy_schedule, naive_schedule, AppSpec, ContextSpec, SchedPlatform};
    pub use lpmem_trace::{
        AccessKind, BlockProfile, LocalityReport, MemEvent, Reservoir, StackDistanceHistogram,
        StreamingLocality, StreamingStackDistance, StreamingWorkingSet, Trace, WorkingSetReport,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let trace: Trace = lpmem_trace::gen::HotColdGen::new(1 << 16, 4, 0.9)
            .seed(1)
            .events(5_000)
            .collect();
        let profile = BlockProfile::from_trace(&trace, 2048).unwrap();
        let cost = PartitionCost::new(&Technology::tech180());
        let (partition, eval) = optimal_partition(&profile, 8, &cost);
        assert!(partition.num_banks() >= 1);
        assert!(eval.total() > Energy::ZERO);
    }
}
