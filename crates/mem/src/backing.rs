//! Backing (memory-side) storage behind the cache.

use std::collections::HashMap;

/// The memory-side interface a cache talks to: line fills and line
/// write-backs.
///
/// A mutable reference to a `Backing` also implements `Backing`, so callers
/// can pass `&mut mem` ([C-RW-VALUE]-style flexibility).
///
/// [C-RW-VALUE]: https://rust-lang.github.io/api-guidelines/interoperability.html
pub trait Backing {
    /// Reads `buf.len()` bytes starting at `addr` (a full line on fills).
    fn read_block(&mut self, addr: u64, buf: &mut [u8]);

    /// Writes `data` starting at `addr` (a full line on write-backs, a
    /// partial block for write-through stores).
    fn write_block(&mut self, addr: u64, data: &[u8]);
}

impl<B: Backing + ?Sized> Backing for &mut B {
    fn read_block(&mut self, addr: u64, buf: &mut [u8]) {
        (**self).read_block(addr, buf)
    }
    fn write_block(&mut self, addr: u64, data: &[u8]) {
        (**self).write_block(addr, data)
    }
}

const PAGE_SHIFT: u32 = 12;

/// Size in bytes of a [`FlatMemory`] page (4 KiB). Public so callers that
/// mirror memory into denser structures (e.g. the TinyRISC compiled
/// backend's data arena) can match the materialization granularity
/// exactly — `resident_pages` stays comparable across such mirrors.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable memory backed by 4 KiB pages.
///
/// Unwritten bytes read as zero, so a fresh `FlatMemory` is a valid image
/// for any address. `FlatMemory` doubles as the functional data memory of
/// the TinyRISC simulator.
///
/// ```
/// use lpmem_mem::FlatMemory;
///
/// let mut m = FlatMemory::new();
/// m.write_u32(0x8000, 0x0102_0304);
/// assert_eq!(m.read_u32(0x8000), 0x0102_0304);
/// assert_eq!(m.read_u8(0x8000), 0x04); // little-endian
/// assert_eq!(m.read_u32(0xdead_0000), 0); // untouched reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlatMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl FlatMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        FlatMemory::default()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        self.page_mut(addr)[off] = value;
    }

    /// Reads a little-endian 32-bit word (no alignment requirement).
    ///
    /// Accesses that stay within one page — the overwhelmingly common
    /// case — cost a single page lookup; only page-straddling reads fall
    /// back to the byte path. This is the hot edge of the TinyRISC
    /// simulator (every load, and every instruction fetch on the
    /// interpreter backend).
    pub fn read_u32(&self, addr: u64) -> u32 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]),
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr + 1),
                self.read_u8(addr + 2),
                self.read_u8(addr + 3),
            ])
        }
    }

    /// Writes a little-endian 32-bit word (no alignment requirement).
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            let page = self.page_mut(addr);
            page[off..off + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Reads a little-endian 16-bit halfword.
    pub fn read_u16(&self, addr: u64) -> u16 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 2 {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => u16::from_le_bytes([p[off], p[off + 1]]),
                None => 0,
            }
        } else {
            u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)])
        }
    }

    /// Writes a little-endian 16-bit halfword.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 2 {
            let page = self.page_mut(addr);
            page[off..off + 2].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// Runs page by page (one lookup per touched page, not per byte) so
    /// bulk loads — program segments, dirty-page write-back — stay cheap.
    pub fn load(&mut self, addr: u64, data: &[u8]) {
        let mut addr = addr;
        let mut data = data;
        while !data.is_empty() {
            let off = (addr as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - off).min(data.len());
            self.page_mut(addr)[off..off + n].copy_from_slice(&data[..n]);
            // Wrapping: the bump after the final chunk may pass the top of
            // the address space; it is never dereferenced.
            addr = addr.wrapping_add(n as u64);
            data = &data[n..];
        }
    }

    /// Number of 4 KiB pages currently materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Snapshot of every materialized page as `(base address, bytes)`,
    /// sorted by base address (deterministic despite the hash-map store).
    pub fn pages_sorted(&self) -> Vec<(u64, &[u8; PAGE_SIZE])> {
        let mut pages: Vec<(u64, &[u8; PAGE_SIZE])> = self
            .pages
            .iter()
            .map(|(idx, page)| (idx << PAGE_SHIFT, &**page))
            .collect();
        pages.sort_unstable_by_key(|&(base, _)| base);
        pages
    }
}

impl Backing for FlatMemory {
    fn read_block(&mut self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    fn write_block(&mut self, addr: u64, data: &[u8]) {
        self.load(addr, data);
    }
}

/// Wraps a [`Backing`] and records memory-side traffic: fill addresses and
/// full write-back lines (address + data).
///
/// The recorded write-back lines are exactly what the 1B.2 compression flow
/// feeds to its codec.
#[derive(Debug, Clone, Default)]
pub struct RecordingBacking<B> {
    inner: B,
    fills: Vec<u64>,
    write_backs: Vec<(u64, Vec<u8>)>,
}

impl<B: Backing> RecordingBacking<B> {
    /// Wraps `inner`.
    pub fn new(inner: B) -> Self {
        RecordingBacking {
            inner,
            fills: Vec::new(),
            write_backs: Vec::new(),
        }
    }

    /// Addresses of every line fill, in order.
    pub fn fills(&self) -> &[u64] {
        &self.fills
    }

    /// Every write-back as `(line address, line data)`, in order.
    pub fn write_backs(&self) -> &[(u64, Vec<u8>)] {
        &self.write_backs
    }

    /// Total bytes read from the backing (fills).
    pub fn bytes_read(&self, line_bytes: u64) -> u64 {
        self.fills.len() as u64 * line_bytes
    }

    /// Total bytes written to the backing.
    pub fn bytes_written(&self) -> u64 {
        self.write_backs.iter().map(|(_, d)| d.len() as u64).sum()
    }

    /// Clears the recorded traffic, keeping the inner memory state.
    pub fn clear_log(&mut self) {
        self.fills.clear();
        self.write_backs.clear();
    }

    /// Returns the wrapped backing.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Shared access to the wrapped backing.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Exclusive access to the wrapped backing.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }
}

impl<B: Backing> Backing for RecordingBacking<B> {
    fn read_block(&mut self, addr: u64, buf: &mut [u8]) {
        self.fills.push(addr);
        self.inner.read_block(addr, buf);
    }

    fn write_block(&mut self, addr: u64, data: &[u8]) {
        self.write_backs.push((addr, data.to_vec()));
        self.inner.write_block(addr, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let m = FlatMemory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u8(u64::MAX - 4), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn word_roundtrip_is_little_endian() {
        let mut m = FlatMemory::new();
        m.write_u32(100, 0xA1B2_C3D4);
        assert_eq!(m.read_u8(100), 0xD4);
        assert_eq!(m.read_u8(103), 0xA1);
        assert_eq!(m.read_u32(100), 0xA1B2_C3D4);
        assert_eq!(m.read_u16(100), 0xC3D4);
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = FlatMemory::new();
        let addr = PAGE_SIZE as u64 - 2; // straddles pages 0 and 1
        m.write_u32(addr, 0x1122_3344);
        assert_eq!(m.read_u32(addr), 0x1122_3344);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn pages_sorted_is_ordered_and_complete() {
        let mut m = FlatMemory::new();
        // Touch pages out of address order.
        m.write_u8(5 * PAGE_SIZE as u64, 3);
        m.write_u8(0, 1);
        m.write_u8(2 * PAGE_SIZE as u64 + 7, 2);
        let sorted = m.pages_sorted();
        let bases: Vec<u64> = sorted.iter().map(|&(b, _)| b).collect();
        assert_eq!(bases, vec![0, 2 * PAGE_SIZE as u64, 5 * PAGE_SIZE as u64]);
        assert_eq!(sorted[0].1[0], 1);
        assert_eq!(sorted[1].1[7], 2);
        assert_eq!(sorted[2].1[0], 3);
    }

    #[test]
    fn bulk_load_spans_pages() {
        let mut m = FlatMemory::new();
        let data: Vec<u8> = (0..=255u8).cycle().take(3 * PAGE_SIZE).collect();
        let base = PAGE_SIZE as u64 - 100; // misaligned, spans 4 pages
        m.load(base, &data);
        assert_eq!(m.resident_pages(), 4);
        for (i, b) in data.iter().enumerate() {
            assert_eq!(m.read_u8(base + i as u64), *b, "byte {i}");
        }
    }

    #[test]
    fn block_io_roundtrips() {
        let mut m = FlatMemory::new();
        let data: Vec<u8> = (0u8..32).collect();
        m.write_block(0x2000, &data);
        let mut buf = [0u8; 32];
        m.read_block(0x2000, &mut buf);
        assert_eq!(&buf[..], &data[..]);
    }

    #[test]
    fn recording_backing_logs_traffic() {
        let mut r = RecordingBacking::new(FlatMemory::new());
        let mut buf = [0u8; 16];
        r.read_block(0x100, &mut buf);
        r.write_block(0x200, &[1, 2, 3, 4]);
        assert_eq!(r.fills(), &[0x100]);
        assert_eq!(r.write_backs(), &[(0x200, vec![1, 2, 3, 4])]);
        assert_eq!(r.bytes_read(16), 16);
        assert_eq!(r.bytes_written(), 4);
        r.clear_log();
        assert!(r.fills().is_empty());
        // State survives the log clear.
        assert_eq!(r.inner().read_u8(0x200), 1);
    }

    #[test]
    fn mut_ref_is_a_backing() {
        fn takes_backing(b: impl Backing) {
            let _ = b;
        }
        let mut m = FlatMemory::new();
        takes_backing(&mut m);
        m.write_u8(0, 7); // still usable afterwards
        assert_eq!(m.read_u8(0), 7);
    }
}
