//! A data-carrying set-associative cache simulator.

use crate::{Backing, MemError};

/// Write policy of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WritePolicy {
    /// Write-back with write-allocate: stores dirty the line; dirty lines
    /// are written to the backing on eviction or [`Cache::flush`]. This is
    /// the policy the 1B.2 compression scheme targets.
    WriteBackAllocate,
    /// Write-through with no-write-allocate: stores go straight to the
    /// backing; write misses do not fill.
    WriteThroughNoAllocate,
}

/// Replacement policy of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReplacementPolicy {
    /// Least-recently used.
    Lru,
    /// First-in first-out (insertion order).
    Fifo,
}

/// Geometry and policies of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    size_bytes: u64,
    line_bytes: u32,
    assoc: u32,
    write_policy: WritePolicy,
    replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a configuration: `size_bytes` capacity, `line_bytes` lines,
    /// `assoc`-way associativity, defaulting to write-back/write-allocate
    /// with LRU replacement.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidGeometry`] unless all of the following
    /// hold: sizes are powers of two, `line_bytes ≥ 4`,
    /// `assoc ≥ 1`, and `size_bytes` is divisible by `line_bytes × assoc`.
    pub fn new(size_bytes: u64, line_bytes: u32, assoc: u32) -> Result<Self, MemError> {
        if size_bytes == 0 || !size_bytes.is_power_of_two() {
            return Err(MemError::InvalidGeometry(
                "size must be a non-zero power of two",
            ));
        }
        if line_bytes < 4 || !line_bytes.is_power_of_two() {
            return Err(MemError::InvalidGeometry(
                "line must be a power of two of at least 4",
            ));
        }
        if assoc == 0 {
            return Err(MemError::InvalidGeometry(
                "associativity must be at least 1",
            ));
        }
        let way_bytes = line_bytes as u64 * assoc as u64;
        if size_bytes < way_bytes || !size_bytes.is_multiple_of(way_bytes) {
            return Err(MemError::InvalidGeometry(
                "size must be a multiple of line × assoc",
            ));
        }
        let sets = size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(MemError::InvalidGeometry(
                "number of sets must be a power of two",
            ));
        }
        Ok(CacheConfig {
            size_bytes,
            line_bytes,
            assoc,
            write_policy: WritePolicy::WriteBackAllocate,
            replacement: ReplacementPolicy::Lru,
        })
    }

    /// Sets the write policy.
    pub fn write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Cache capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.assoc as u64)
    }
}

/// Hit/miss and memory-side traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Read accesses presented to the cache.
    pub reads: u64,
    /// Write accesses presented to the cache.
    pub writes: u64,
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Lines fetched from the backing.
    pub fills: u64,
    /// Dirty lines written to the backing (evictions and flushes); for
    /// write-through caches, the number of store-driven backing writes.
    pub writebacks: u64,
    /// Clean lines dropped on eviction.
    pub clean_evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.accesses() - self.hits()
    }

    /// Hit ratio in `0.0..=1.0` (zero for an idle cache).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
    data: Vec<u8>,
}

/// A set-associative, data-carrying cache.
///
/// The cache stores real line contents so evictions hand complete
/// `(address, data)` pairs to the backing — the input of the write-back
/// compression flow. See the crate docs for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with all lines invalid.
    pub fn new(cfg: CacheConfig) -> Self {
        let line = Line {
            tag: 0,
            valid: false,
            dirty: false,
            stamp: 0,
            data: vec![0; cfg.line_bytes as usize],
        };
        let sets = (0..cfg.num_sets())
            .map(|_| vec![line.clone(); cfg.assoc as usize])
            .collect();
        Cache {
            cfg,
            sets,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters (state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn line_shift(&self) -> u32 {
        self.cfg.line_bytes.trailing_zeros()
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift()) & (self.cfg.num_sets() - 1)) as usize
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.line_shift() + self.cfg.num_sets().trailing_zeros())
    }

    fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    /// Rebuilds a line's base address from its set index and tag.
    fn addr_of(&self, set: usize, tag: u64) -> u64 {
        let sets_bits = self.cfg.num_sets().trailing_zeros();
        ((tag << sets_bits) | set as u64) << self.line_shift()
    }

    /// Reads `buf.len()` bytes starting at `addr`, filling on miss.
    /// Accesses that straddle line boundaries are split per line.
    pub fn read(&mut self, addr: u64, buf: &mut [u8], mut backing: impl Backing) {
        self.stats.reads += 1;
        let mut all_hit = true;
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let base = self.line_base(a);
            let line_off = (a - base) as usize;
            let n = ((self.cfg.line_bytes as usize) - line_off).min(buf.len() - done);
            let (way, hit) = self.lookup_or_fill(a, &mut backing);
            all_hit &= hit;
            let set = self.set_index(a);
            buf[done..done + n].copy_from_slice(&self.sets[set][way].data[line_off..line_off + n]);
            done += n;
        }
        if all_hit {
            self.stats.read_hits += 1;
        }
    }

    /// Writes `data` starting at `addr`, honouring the write policy.
    pub fn write(&mut self, addr: u64, data: &[u8], mut backing: impl Backing) {
        self.stats.writes += 1;
        let mut all_hit = true;
        let mut done = 0usize;
        while done < data.len() {
            let a = addr + done as u64;
            let base = self.line_base(a);
            let line_off = (a - base) as usize;
            let n = ((self.cfg.line_bytes as usize) - line_off).min(data.len() - done);
            let set = self.set_index(a);
            let tag = self.tag_of(a);
            match self.cfg.write_policy {
                WritePolicy::WriteBackAllocate => {
                    let (way, hit) = self.lookup_or_fill(a, &mut backing);
                    all_hit &= hit;
                    let line = &mut self.sets[set][way];
                    line.data[line_off..line_off + n].copy_from_slice(&data[done..done + n]);
                    line.dirty = true;
                }
                WritePolicy::WriteThroughNoAllocate => {
                    backing.write_block(a, &data[done..done + n]);
                    self.stats.writebacks += 1;
                    if let Some(way) = self.probe(set, tag) {
                        self.touch(set, way);
                        let line = &mut self.sets[set][way];
                        line.data[line_off..line_off + n].copy_from_slice(&data[done..done + n]);
                    } else {
                        all_hit = false;
                    }
                }
            }
            done += n;
        }
        if all_hit {
            self.stats.write_hits += 1;
        }
    }

    /// Reads a little-endian 32-bit word.
    pub fn read_word(&mut self, addr: u64, backing: impl Backing) -> u32 {
        let mut buf = [0u8; 4];
        self.read(addr, &mut buf, backing);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian 32-bit word.
    pub fn write_word(&mut self, addr: u64, value: u32, backing: impl Backing) {
        self.write(addr, &value.to_le_bytes(), backing);
    }

    /// Writes every dirty line to the backing and marks the cache clean.
    pub fn flush(&mut self, mut backing: impl Backing) {
        for set_idx in 0..self.sets.len() {
            for way in 0..self.sets[set_idx].len() {
                let (valid, dirty, tag) = {
                    let l = &self.sets[set_idx][way];
                    (l.valid, l.dirty, l.tag)
                };
                if valid && dirty {
                    let addr = self.addr_of(set_idx, tag);
                    backing.write_block(addr, &self.sets[set_idx][way].data);
                    self.sets[set_idx][way].dirty = false;
                    self.stats.writebacks += 1;
                }
            }
        }
    }

    /// Invalidates every line *without* writing back (for tests of dirty
    /// data loss and for power-gating studies).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
                line.dirty = false;
            }
        }
    }

    fn probe(&self, set: usize, tag: u64) -> Option<usize> {
        self.sets[set].iter().position(|l| l.valid && l.tag == tag)
    }

    fn touch(&mut self, set: usize, way: usize) {
        if self.cfg.replacement == ReplacementPolicy::Lru {
            self.tick += 1;
            self.sets[set][way].stamp = self.tick;
        }
    }

    /// Returns `(way, was_hit)`, filling the line on a miss.
    fn lookup_or_fill(&mut self, addr: u64, backing: &mut impl Backing) -> (usize, bool) {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        if let Some(way) = self.probe(set, tag) {
            self.touch(set, way);
            return (way, true);
        }
        // Miss: choose a victim (invalid first, then lowest stamp).
        let way = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| (l.valid, l.stamp))
            .map(|(i, _)| i)
            .expect("associativity is at least 1");
        // Evict.
        let (v_valid, v_dirty, v_tag) = {
            let l = &self.sets[set][way];
            (l.valid, l.dirty, l.tag)
        };
        if v_valid {
            if v_dirty {
                let victim_addr = self.addr_of(set, v_tag);
                backing.write_block(victim_addr, &self.sets[set][way].data);
                self.stats.writebacks += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
        }
        // Fill.
        let base = self.line_base(addr);
        backing.read_block(base, &mut self.sets[set][way].data);
        self.stats.fills += 1;
        self.tick += 1;
        let line = &mut self.sets[set][way];
        line.tag = tag;
        line.valid = true;
        line.dirty = false;
        line.stamp = self.tick; // both LRU and FIFO stamp on insertion
        (way, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatMemory, RecordingBacking};

    fn cache(size: u64, line: u32, assoc: u32) -> Cache {
        Cache::new(CacheConfig::new(size, line, assoc).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(1 << 12, 32, 2).is_ok());
        assert!(CacheConfig::new(0, 32, 2).is_err());
        assert!(CacheConfig::new(1 << 12, 3, 2).is_err());
        assert!(CacheConfig::new(1 << 12, 32, 0).is_err());
        assert!(CacheConfig::new(32, 32, 2).is_err()); // smaller than one way
    }

    #[test]
    fn geometry_accessors() {
        let cfg = CacheConfig::new(1 << 12, 32, 2).unwrap();
        assert_eq!(cfg.num_sets(), 64);
        assert_eq!(cfg.size_bytes(), 4096);
        assert_eq!(cfg.line_bytes(), 32);
        assert_eq!(cfg.assoc(), 2);
    }

    #[test]
    fn read_after_write_returns_value() {
        let mut c = cache(1 << 12, 32, 2);
        let mut m = FlatMemory::new();
        c.write_word(0x1234, 0xCAFE_F00D, &mut m);
        assert_eq!(c.read_word(0x1234, &mut m), 0xCAFE_F00D);
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = cache(1 << 12, 32, 2);
        let mut m = FlatMemory::new();
        c.read_word(0x100, &mut m);
        c.read_word(0x104, &mut m); // same line
        assert_eq!(c.stats().reads, 2);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn dirty_eviction_writes_back_line() {
        // Direct-mapped, 2 sets of 16 B lines -> addresses 0 and 32 collide.
        let mut c = cache(32, 16, 1);
        let mut m = RecordingBacking::new(FlatMemory::new());
        c.write_word(0, 0x1111_1111, &mut m);
        c.write_word(32, 0x2222_2222, &mut m); // evicts dirty line 0
        assert_eq!(c.stats().writebacks, 1);
        let (addr, data) = &m.write_backs()[0];
        assert_eq!(*addr, 0);
        assert_eq!(&data[0..4], &0x1111_1111u32.to_le_bytes());
        // The evicted value is durable in the backing.
        assert_eq!(m.inner().read_u32(0), 0x1111_1111);
    }

    #[test]
    fn clean_eviction_does_not_write_back() {
        let mut c = cache(32, 16, 1);
        let mut m = FlatMemory::new();
        c.read_word(0, &mut m);
        c.read_word(32, &mut m); // evicts clean line
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().clean_evictions, 1);
    }

    #[test]
    fn lru_keeps_recently_used_way() {
        // One set, 2 ways, 16 B lines. Lines A=0, B=64, C=128 all map to set 0.
        let mut c = cache(32, 16, 2);
        let mut m = FlatMemory::new();
        c.read_word(0, &mut m); // A
        c.read_word(64, &mut m); // B
        c.read_word(0, &mut m); // touch A
        c.read_word(128, &mut m); // C evicts B (LRU)
        c.read_word(0, &mut m); // A still resident
        assert_eq!(c.stats().fills, 3);
        assert_eq!(c.stats().read_hits, 2);
    }

    #[test]
    fn fifo_evicts_insertion_order() {
        let cfg = CacheConfig::new(32, 16, 2)
            .unwrap()
            .replacement(ReplacementPolicy::Fifo);
        let mut c = Cache::new(cfg);
        let mut m = FlatMemory::new();
        c.read_word(0, &mut m); // A inserted first
        c.read_word(64, &mut m); // B
        c.read_word(0, &mut m); // hit A; FIFO must NOT refresh its age
        c.read_word(128, &mut m); // C evicts A under FIFO
        c.read_word(64, &mut m); // B still resident
        assert_eq!(c.stats().fills, 3);
    }

    #[test]
    fn write_through_no_allocate_bypasses_on_miss() {
        let cfg = CacheConfig::new(1 << 10, 16, 1)
            .unwrap()
            .write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(cfg);
        let mut m = RecordingBacking::new(FlatMemory::new());
        c.write_word(0x40, 0xABCD_EF01, &mut m);
        assert_eq!(c.stats().fills, 0); // no allocate
        assert_eq!(m.write_backs().len(), 1);
        assert_eq!(m.inner().read_u32(0x40), 0xABCD_EF01);
        // A subsequent read must fill and see the stored value.
        assert_eq!(c.read_word(0x40, &mut m), 0xABCD_EF01);
    }

    #[test]
    fn write_through_updates_resident_line() {
        let cfg = CacheConfig::new(1 << 10, 16, 1)
            .unwrap()
            .write_policy(WritePolicy::WriteThroughNoAllocate);
        let mut c = Cache::new(cfg);
        let mut m = FlatMemory::new();
        c.read_word(0x40, &mut m); // make line resident
        c.write_word(0x40, 7, &mut m);
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.read_word(0x40, &mut m), 7);
    }

    #[test]
    fn flush_writes_all_dirty_lines() {
        let mut c = cache(1 << 10, 16, 2);
        let mut m = RecordingBacking::new(FlatMemory::new());
        c.write_word(0x00, 1, &mut m);
        c.write_word(0x40, 2, &mut m);
        c.write_word(0x80, 3, &mut m);
        c.flush(&mut m);
        assert_eq!(c.stats().writebacks, 3);
        // Flushing twice writes nothing new.
        c.flush(&mut m);
        assert_eq!(c.stats().writebacks, 3);
        assert_eq!(m.inner().read_u32(0x40), 2);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut c = cache(1 << 10, 16, 1);
        let mut m = FlatMemory::new();
        c.write(14, &[1, 2, 3, 4], &mut m); // crosses the 16-byte boundary
        assert_eq!(c.stats().fills, 2);
        let mut buf = [0u8; 4];
        c.read(14, &mut buf, &mut m);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn invalidate_drops_dirty_data() {
        let mut c = cache(1 << 10, 16, 1);
        let mut m = FlatMemory::new();
        c.write_word(0, 0xFFFF_FFFF, &mut m);
        c.invalidate_all();
        // The write never reached the backing, so it is lost.
        assert_eq!(c.read_word(0, &mut m), 0);
    }

    #[test]
    fn cache_contents_match_memory_model() {
        // Differential test: a cache in front of FlatMemory must behave like
        // FlatMemory alone for any access sequence.
        let mut c = cache(1 << 8, 16, 2); // tiny: lots of evictions
        let mut m = FlatMemory::new();
        let mut reference = FlatMemory::new();
        let addrs = [0u64, 16, 256, 272, 0, 512, 768, 16, 1024, 256];
        for (i, &a) in addrs.iter().enumerate() {
            let v = (i as u32).wrapping_mul(0x9E37_79B9);
            c.write_word(a, v, &mut m);
            reference.write_u32(a, v);
        }
        for &a in &addrs {
            assert_eq!(c.read_word(a, &mut m), reference.read_u32(a), "addr {a:#x}");
        }
        c.flush(&mut m);
        for &a in &addrs {
            assert_eq!(m.read_u32(a), reference.read_u32(a));
        }
    }

    #[test]
    fn stats_helpers() {
        let mut c = cache(1 << 10, 16, 1);
        let mut m = FlatMemory::new();
        c.read_word(0, &mut m);
        c.read_word(0, &mut m);
        let s = *c.stats();
        assert_eq!(s.accesses(), 2);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
