//! Memory-hierarchy simulation: caches and backing memory.
//!
//! This crate rebuilds the simulator substrate the DATE 2003 1B.2 evaluation
//! ran on (Lx-ST200 D-cache RTL / SimpleScalar): a configurable,
//! **data-carrying** set-associative cache in front of a sparse
//! [`FlatMemory`]. Carrying real line data matters because the write-back
//! compression flow compresses the *contents* of evicted dirty lines, not
//! just their addresses.
//!
//! # Example
//!
//! ```
//! use lpmem_mem::{Cache, CacheConfig, FlatMemory, RecordingBacking};
//!
//! # fn main() -> Result<(), lpmem_mem::MemError> {
//! let cfg = CacheConfig::new(1 << 12, 32, 2)?; // 4 KiB, 32 B lines, 2-way
//! let mut cache = Cache::new(cfg);
//! let mut mem = RecordingBacking::new(FlatMemory::new());
//!
//! cache.write_word(0x1000, 0xdead_beef, &mut mem);
//! cache.flush(&mut mem); // forces the dirty line out
//! assert_eq!(mem.write_backs().len(), 1);
//! assert_eq!(cache.stats().writebacks, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backing;
pub mod cache;

pub use backing::{Backing, FlatMemory, RecordingBacking, PAGE_SIZE};
pub use cache::{Cache, CacheConfig, CacheStats, ReplacementPolicy, WritePolicy};

/// Errors produced when configuring the memory hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A size or line parameter is zero, not a power of two, or inconsistent
    /// (e.g. line larger than the cache).
    InvalidGeometry(&'static str),
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::InvalidGeometry(what) => write!(f, "invalid cache geometry: {what}"),
        }
    }
}

impl std::error::Error for MemError {}
