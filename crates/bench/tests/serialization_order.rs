//! Insertion-order byte-identity: the serialized artifacts the engines
//! promise to be deterministic must not depend on the order their inputs
//! arrive in. This is the regression net behind lint rule D01 — any path
//! that iterated an unordered map into a report would fail here before it
//! could ship a byte-drifting JSONL.

use lpmem_bench::metrics::Metrics;
use lpmem_core::flows::{FlowSpec, FlowSummary};
use lpmem_energy::{AreaReport, Energy};
use lpmem_explore::{DesignSpace, Evaluation, Frontier, Objectives};
use lpmem_util::Rng;

/// The explore archive's JSONL dump is byte-identical under any insertion
/// order of the same evaluation set. Objective values are *copied* into
/// the archive (never folded), so this holds exactly, not to rounding.
#[test]
fn frontier_jsonl_is_insertion_order_invariant() {
    let space = DesignSpace::full();
    // A spread of distinct points with coarse objective grids so the set
    // contains dominated, duplicate-objective, and trade-off members.
    let mut evals: Vec<Evaluation> = (0..48)
        .map(|i| Evaluation {
            point: space.point_at((i * 97) % space.len()),
            objectives: Objectives {
                energy_pj: ((i * 7) % 13) as f64,
                area_mm2: ((i * 5) % 11) as f64,
                cycles: ((i * 3) % 17) as u64,
                silent: 0,
            },
            area: AreaReport::new(),
            reliability: None,
            cmp: None,
        })
        .collect();

    let mut reference = Frontier::new();
    for e in &evals {
        reference.insert(e.clone());
    }
    let golden = reference.to_jsonl();
    assert!(!golden.is_empty());

    let mut rng = Rng::seed_from_u64(0x1b_2003);
    for round in 0..16 {
        rng.shuffle(&mut evals);
        let mut frontier = Frontier::new();
        for e in &evals {
            frontier.insert(e.clone());
        }
        assert_eq!(
            frontier.to_jsonl(),
            golden,
            "frontier JSONL diverged on permutation {round}"
        );
    }
}

fn summary(baseline_pj: f64, optimized_pj: f64) -> FlowSummary {
    FlowSummary {
        flow: FlowSpec::Partitioning,
        workload: "w".into(),
        baseline: Energy::from_pj(baseline_pj),
        optimized: Energy::from_pj(optimized_pj),
        events: 1,
        reliability: None,
        cmp: None,
    }
}

/// The sweep's per-flow table is byte-identical whatever order tasks are
/// recorded in and however they are grouped across workers before the
/// merge. Energies here are integer-valued pJ, where f64 addition is
/// exact, so the rendered bytes must match exactly — a `HashMap` behind
/// `per_flow` (D01) or order-sensitive accumulation would break this.
#[test]
fn metrics_tables_are_record_and_merge_order_invariant() {
    const FLOWS: [&str; 4] = ["partitioning", "compression", "buscoding", "system"];
    let events: Vec<(usize, u64, bool, f64, f64)> = (0..64)
        .map(|i| {
            (
                (i * 13) % FLOWS.len(),
                ((i * 29) % 40) as u64 * 1_000_000,
                i % 7 != 0,
                ((i * 37) % 500) as f64,
                ((i * 17) % 400) as f64,
            )
        })
        .collect();

    let mut reference = Metrics::new();
    for &(f, ns, ok, base, opt) in &events {
        let s = summary(base, opt);
        reference.record(FLOWS[f], ns, if ok { Some(&s) } else { None });
    }
    let flow_golden = reference.flow_table(1_000_000_000, 4).to_string();
    let latency_golden = reference.latency_table().to_string();

    let mut rng = Rng::seed_from_u64(0x1b_2003);
    let mut order: Vec<usize> = (0..events.len()).collect();
    for round in 0..16 {
        rng.shuffle(&mut order);
        let workers = rng.gen_range(1..9usize);
        // Record the permuted stream through worker-local metrics, then
        // merge the workers in a rotated order.
        let mut locals = vec![Metrics::new(); workers];
        for (slot, &i) in order.iter().enumerate() {
            let (f, ns, ok, base, opt) = events[i];
            let s = summary(base, opt);
            locals[slot % workers].record(FLOWS[f], ns, if ok { Some(&s) } else { None });
        }
        let first = rng.gen_range(0..workers);
        let mut merged = Metrics::new();
        for w in 0..workers {
            merged.merge(&locals[(first + w) % workers]);
        }
        assert_eq!(
            merged.flow_table(1_000_000_000, 4).to_string(),
            flow_golden,
            "flow table diverged on permutation {round} ({workers} workers)"
        );
        assert_eq!(
            merged.latency_table().to_string(),
            latency_golden,
            "latency table diverged on permutation {round}"
        );
        // The per-flow key order itself is pinned (BTreeMap semantics).
        assert_eq!(
            merged.per_flow.keys().collect::<Vec<_>>(),
            reference.per_flow.keys().collect::<Vec<_>>()
        );
    }
}
