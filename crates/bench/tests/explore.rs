//! Integration tests for the design-space explorer: frontier JSONL must
//! be byte-identical at any worker count, the evolutionary search must
//! agree with exhaustive enumeration on spaces it can exhaust (DSE-2),
//! and no frontier point may be dominated by any configuration the sweep
//! grid already runs (DSE-1).

use lpmem_bench::sweep::SweepGrid;
use lpmem_explore::{
    DesignPoint, DesignSpace, Evaluator, Evolutionary, Exhaustive, SearchConfig, SearchStrategy,
    Workload,
};

/// A workload small enough for test time; identical across every test so
/// the evaluator's memoized sub-flows behave exactly as in one process.
fn tiny_workload() -> Workload {
    Workload {
        scale: 16,
        iterations: 8,
        ..Workload::default()
    }
}

/// The sweep grid's variant axis, embedded as design points — the
/// configurations every existing experiment runs.
fn grid_embeddings() -> Vec<DesignPoint> {
    let grid = SweepGrid::default_grid(true);
    let mut points: Vec<DesignPoint> = grid
        .variants
        .iter()
        .map(DesignPoint::from_variant)
        .collect();
    points.dedup_by_key(|p| p.key());
    points
}

#[test]
fn frontier_jsonl_is_byte_identical_at_any_worker_count() {
    let space = DesignSpace::small();
    let evaluator = Evaluator::new(tiny_workload()).expect("workload runs");
    let single = {
        let cfg = SearchConfig {
            budget: space.len(),
            workers: 1,
            ..Default::default()
        };
        Exhaustive
            .search(&space, &evaluator, &cfg)
            .expect("search runs")
    };
    for workers in [2, 8] {
        let cfg = SearchConfig {
            budget: space.len(),
            workers,
            ..Default::default()
        };
        let out = Exhaustive
            .search(&space, &evaluator, &cfg)
            .expect("search runs");
        assert_eq!(
            single.frontier.to_jsonl(),
            out.frontier.to_jsonl(),
            "frontier JSONL diverged at {workers} workers"
        );
        assert_eq!(single.evaluated, out.evaluated);
    }
    // The evolutionary path schedules offspring batches across the pool
    // too; its frontier must be just as worker-independent.
    let evo = Evolutionary::default();
    let single = {
        let cfg = SearchConfig {
            budget: 24,
            workers: 1,
            ..Default::default()
        };
        evo.search(&space, &evaluator, &cfg).expect("search runs")
    };
    for workers in [2, 8] {
        let cfg = SearchConfig {
            budget: 24,
            workers,
            ..Default::default()
        };
        let out = evo.search(&space, &evaluator, &cfg).expect("search runs");
        assert_eq!(
            single.frontier.to_jsonl(),
            out.frontier.to_jsonl(),
            "evolutionary frontier diverged at {workers} workers"
        );
    }
}

#[test]
fn dse2_evolutionary_recovers_the_exhaustive_frontier() {
    let space = DesignSpace::small();
    let evaluator = Evaluator::new(tiny_workload()).expect("workload runs");
    let cfg = SearchConfig {
        budget: space.len(),
        workers: 2,
        ..Default::default()
    };
    let exhaustive = Exhaustive
        .search(&space, &evaluator, &cfg)
        .expect("search runs");
    let evolved = Evolutionary::default()
        .search(&space, &evaluator, &cfg)
        .expect("search runs");
    assert_eq!(exhaustive.evaluated, space.len());
    assert_eq!(
        evolved.evaluated,
        space.len(),
        "budget >= |space| must exhaust it"
    );
    assert_eq!(
        exhaustive.frontier.to_jsonl(),
        evolved.frontier.to_jsonl(),
        "DSE-2: evolutionary disagrees with exhaustive on an exhaustible space"
    );
}

#[test]
fn dse1_no_frontier_point_is_dominated_by_the_sweep_grid() {
    let space = DesignSpace::full();
    let evaluator = Evaluator::new(tiny_workload()).expect("workload runs");
    let seeds: Vec<DesignPoint> = grid_embeddings()
        .into_iter()
        .filter(|p| space.contains(p))
        .collect();
    assert!(
        !seeds.is_empty(),
        "the full space embeds the sweep variants"
    );
    let cfg = SearchConfig {
        budget: 96,
        workers: 2,
        seeds: seeds.clone(),
        ..Default::default()
    };
    let out = Evolutionary::default()
        .search(&space, &evaluator, &cfg)
        .expect("search runs");
    assert!(!out.frontier.is_empty());
    // Every sweep-grid configuration is evaluated up front; the archive
    // can therefore never retain a point one of them dominates.
    for seed in &seeds {
        let eval = evaluator.evaluate(seed).expect("seed evaluates");
        for p in out.frontier.points() {
            assert!(
                !eval.objectives.dominates(&p.objectives),
                "DSE-1: sweep configuration {} dominates frontier point {}",
                seed.key(),
                p.point.key()
            );
        }
    }
    // And the frontier itself is mutually non-dominated.
    for a in out.frontier.points() {
        for b in out.frontier.points() {
            assert!(!a.objectives.dominates(&b.objectives));
        }
    }
}
