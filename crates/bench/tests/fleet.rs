//! Fleet aggregation invariants: the merged JSONL report is byte-identical
//! at any worker count and under any shard-merge permutation — the
//! workspace's signature determinism guarantee, extended to the fleet
//! path (`serialization_order.rs` style coverage).

use lpmem_bench::fleet::{run_fleet, simulate_shard, FleetReport, FleetShard, FleetSpec};
use lpmem_core::WorkloadMix;
use lpmem_util::Rng;

fn small_spec() -> FleetSpec {
    let mut spec = FleetSpec::new(WorkloadMix::embedded());
    spec.devices = 300;
    spec.events_per_device = 96;
    spec.shard_devices = 32;
    spec.base_seed = 77;
    spec
}

#[test]
fn jsonl_is_byte_identical_at_any_worker_count() {
    let spec = small_spec();
    let baseline = run_fleet(&spec, 1).unwrap().jsonl();
    for workers in [2, 8] {
        let report = run_fleet(&spec, workers).unwrap();
        assert_eq!(
            report.jsonl(),
            baseline,
            "fleet JSONL diverged at {workers} workers"
        );
    }
}

#[test]
fn jsonl_is_invariant_under_shard_merge_permutations() {
    let spec = small_spec();
    let shards: Vec<FleetShard> = (0..spec.num_shards())
        .map(|s| simulate_shard(&spec, s))
        .collect();
    let baseline = FleetReport::from_shards(spec.clone(), shards.clone()).jsonl();
    let mut rng = Rng::seed_from_u64(0xf1ee7);
    for round in 0..16 {
        let mut shuffled = shards.clone();
        rng.shuffle(&mut shuffled);
        let report = FleetReport::from_shards(spec.clone(), shuffled);
        assert_eq!(report.jsonl(), baseline, "diverged in round {round}");
    }
}

#[test]
fn seeds_hang_off_device_coordinates_not_shard_layout() {
    // Re-sharding the same fleet must not change any aggregate: device
    // seeds derive from device ids, never from shard or worker layout.
    let spec = small_spec();
    let baseline = run_fleet(&spec, 2).unwrap();
    let mut resharded = spec.clone();
    resharded.shard_devices = 7;
    let report = run_fleet(&resharded, 3).unwrap();
    assert_eq!(report.per_class, baseline.per_class);
    assert_eq!(report.samples, baseline.samples);
}

#[test]
fn sample_is_the_global_bottom_k_by_priority() {
    let spec = small_spec();
    let report = run_fleet(&spec, 2).unwrap();
    assert_eq!(report.samples.len(), spec.samples);
    // Sorted by (priority, device) and globally minimal: every priority in
    // the sample is <= every priority outside it.
    let keys: Vec<(u64, u64)> = report
        .samples
        .iter()
        .map(|s| (s.priority, s.device))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
    let cutoff = *keys.last().unwrap();
    let mut outside = 0u64;
    for device in 0..spec.devices {
        let d = lpmem_bench::fleet::simulate_device(&spec, device);
        if (d.priority, d.device) < cutoff && !report.samples.iter().any(|s| s.device == device) {
            outside += 1;
        }
    }
    assert_eq!(outside, 0, "a lower-priority device was left unsampled");
}

#[test]
fn distinct_mixes_and_seeds_change_the_population() {
    let spec = small_spec();
    let base = run_fleet(&spec, 1).unwrap();
    let mut other_mix = spec.clone();
    other_mix.mix = WorkloadMix::chase();
    let chase = run_fleet(&other_mix, 1).unwrap();
    assert_ne!(base.per_class, chase.per_class);
    // Chase-heavy mix puts most devices in the chase class (index 3).
    let chase_devices = chase.per_class[3].devices;
    assert!(
        chase_devices > spec.devices / 3,
        "chase mix produced only {chase_devices} chase devices"
    );
    let mut other_seed = spec.clone();
    other_seed.base_seed = 78;
    assert_ne!(run_fleet(&other_seed, 1).unwrap().jsonl(), base.jsonl());
}
