//! Integration tests for the sweep engine: the JSON-lines report must be
//! byte-identical at any worker count, and the report must stay in grid
//! order with metrics that account for every task.

use lpmem_bench::sweep::{run_sweep, SweepGrid};
use lpmem_core::flows::{CmpSpec, FaultSpec, FlowSpec, Protection, TechNode, VariantSpec};
use lpmem_isa::Kernel;

/// A grid small enough for test time but covering every flow and both
/// variants, so worker interleaving has real work to scramble.
fn small_grid() -> SweepGrid {
    SweepGrid {
        flows: FlowSpec::ALL.to_vec(),
        kernels: vec![(Kernel::Fir, 24), (Kernel::Dct8, 8)],
        techs: vec![TechNode::T180, TechNode::T90],
        variants: vec![VariantSpec::default(), VariantSpec::tight()],
        faults: vec![FaultSpec::off()],
        cmps: vec![CmpSpec::off()],
        base_seed: 2003,
    }
}

#[test]
fn jsonl_is_byte_identical_at_any_worker_count() {
    let grid = small_grid();
    let single = run_sweep(&grid, 1).jsonl();
    for workers in [2, 8] {
        let parallel = run_sweep(&grid, workers).jsonl();
        assert_eq!(single, parallel, "JSONL diverged at {workers} workers");
    }
    assert_eq!(single.lines().count(), grid.len());
    // Every line is a self-contained JSON object.
    for line in single.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line: {line}"
        );
    }
}

#[test]
fn report_is_in_grid_order_with_complete_metrics() {
    let grid = small_grid();
    let report = run_sweep(&grid, 4);
    assert_eq!(report.results.len(), grid.len());
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(r.task.index, i, "results not in grid order");
    }
    // No flow in this grid fails, and the metrics account for every task.
    assert_eq!(report.metrics.errors, 0);
    assert_eq!(report.metrics.tasks as usize, grid.len());
    assert_eq!(report.metrics.latency.total() as usize, grid.len());
    let per_flow_tasks: u64 = report.metrics.per_flow.values().map(|f| f.tasks).sum();
    assert_eq!(per_flow_tasks as usize, grid.len());
    // Both rendered tables exist and carry the run.
    let tables = report.tables();
    assert_eq!(tables.len(), 2);
    assert_eq!(tables[0].rows.len(), report.metrics.per_flow.len());
}

#[test]
fn base_seed_threads_through_to_every_task() {
    // A different base seed rederives every task seed, so the JSONL
    // changes — while each run stays internally deterministic.
    let grid = small_grid();
    let reseeded = SweepGrid {
        base_seed: 7,
        ..small_grid()
    };
    let a = run_sweep(&grid, 2).jsonl();
    let b = run_sweep(&reseeded, 2).jsonl();
    assert_ne!(a, b, "base_seed did not reach the task seeds");
    assert_eq!(a, run_sweep(&grid, 1).jsonl());
    assert_eq!(b, run_sweep(&reseeded, 1).jsonl());
}

/// The small grid expanded along the reliability axis: every protection
/// under an accelerated fault rate, plus the disabled baseline.
fn fault_grid() -> SweepGrid {
    SweepGrid {
        faults: vec![
            FaultSpec::off(),
            FaultSpec::accelerated(Protection::None),
            FaultSpec::accelerated(Protection::Parity),
            FaultSpec::accelerated(Protection::Secded),
        ],
        ..small_grid()
    }
}

#[test]
fn fault_campaign_jsonl_is_byte_identical_at_any_worker_count() {
    let grid = fault_grid();
    let single = run_sweep(&grid, 1).jsonl();
    for workers in [2, 8] {
        let parallel = run_sweep(&grid, workers).jsonl();
        assert_eq!(
            single, parallel,
            "fault JSONL diverged at {workers} workers"
        );
    }
    assert_eq!(single.lines().count(), grid.len());
    // Fault-enabled rows carry the reliability fields; the off rows don't.
    assert!(single.lines().any(|l| l.contains("\"fault\":\"secded:")));
    assert!(single
        .lines()
        .filter(|l| !l.contains("\"fault\""))
        .all(|l| !l.contains("\"injected\"")));
}

#[test]
fn disabled_fault_axis_reproduces_the_plain_grid_bytes() {
    // Rows of the expanded grid with the `off` spec must equal the plain
    // grid's rows, modulo the task index renumbering the wider axis
    // causes — so compare with indexes stripped.
    let plain = run_sweep(&small_grid(), 2);
    let expanded = run_sweep(&fault_grid(), 2);
    let strip = |line: &str| -> String {
        let rest = line.split_once(",\"flow\"").expect("task field first").1;
        format!("{{\"flow\"{rest}")
    };
    let plain_rows: Vec<String> = plain.jsonl().lines().map(strip).collect();
    let off_rows: Vec<String> = expanded
        .results
        .iter()
        .filter(|r| !r.task.fault.enabled())
        .map(|r| strip(&r.json_line()))
        .collect();
    assert_eq!(plain_rows, off_rows);
}

#[test]
fn protections_share_the_workload_seed() {
    // The fault axis must not reseed the workload: all four fault specs
    // of a grid point see the same task seed and the same events.
    let report = run_sweep(&fault_grid(), 4);
    for chunk in report.results.chunks(4) {
        let seeds: Vec<u64> = chunk.iter().map(|r| r.task.seed).collect();
        assert!(seeds.windows(2).all(|w| w[0] == w[1]), "{seeds:?}");
        let events: Vec<u64> = chunk
            .iter()
            .map(|r| r.outcome.as_ref().expect("flow ran").events)
            .collect();
        assert!(events.windows(2).all(|w| w[0] == w[1]), "{events:?}");
    }
}

#[test]
fn worker_count_never_changes_results_only_timings() {
    let grid = small_grid();
    let a = run_sweep(&grid, 1);
    let b = run_sweep(&grid, 8);
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.task, rb.task);
        assert_eq!(ra.outcome, rb.outcome);
        // wall_ns may differ — that is the point of keeping timings out
        // of the JSONL schema.
    }
    assert_eq!(a.metrics.tasks, b.metrics.tasks);
    assert_eq!(a.metrics.errors, b.metrics.errors);
}
