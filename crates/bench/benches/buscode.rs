//! Std-only bench for the T3 encoder: training and encoding throughput.
//! Cases are declared up front and executed through the sweep engine's
//! pool.

use lpmem_bench::benchrun::{options, run_cases, table, BenchCase};
use lpmem_util::bench::black_box;

use lpmem_buscode::{RegionEncoder, XorTransform};
use lpmem_isa::Kernel;

fn fetch_stream() -> Vec<(u64, u32)> {
    let run = Kernel::Fir.run(96, 3).expect("kernel");
    run.trace
        .fetches_only()
        .iter()
        .map(|e| (e.addr, e.value))
        .collect()
}

fn main() {
    let opts = options();
    let stream = fetch_stream();
    let words: Vec<u32> = stream.iter().map(|&(_, w)| w).collect();
    let elems = (stream.len() as u64, "elem");

    let mut train_cases = vec![BenchCase::new("single_transform", Some(elems), move || {
        XorTransform::train(black_box(&words))
    })];
    for regions in [1usize, 4, 16] {
        let stream = stream.clone();
        train_cases.push(BenchCase::new(
            format!("region_encoder/{regions}"),
            Some(elems),
            move || RegionEncoder::train(black_box(&stream), regions),
        ));
    }
    let mut train = table("B3a", "buscode_train");
    run_cases(&mut train, &opts, train_cases);
    print!("{train}");

    let encoder = RegionEncoder::train(&stream, 4);
    let encode_cases = vec![
        BenchCase::new("encode_stream", Some(elems), {
            let (encoder, stream) = (encoder.clone(), stream.clone());
            move || encoder.encode_stream(black_box(&stream))
        }),
        BenchCase::new("evaluate", Some(elems), move || {
            encoder.evaluate(black_box(&stream))
        }),
    ];
    let mut encode = table("B3b", "buscode_encode");
    run_cases(&mut encode, &opts, encode_cases);
    print!("{encode}");
}
