//! Std-only bench for the T3 encoder: training and encoding throughput.

use lpmem_bench::benchrun::{options, run_case, table};
use lpmem_util::bench::black_box;

use lpmem_buscode::{RegionEncoder, XorTransform};
use lpmem_isa::Kernel;

fn fetch_stream() -> Vec<(u64, u32)> {
    let run = Kernel::Fir.run(96, 3).expect("kernel");
    run.trace.fetches_only().iter().map(|e| (e.addr, e.value)).collect()
}

fn main() {
    let opts = options();
    let stream = fetch_stream();
    let words: Vec<u32> = stream.iter().map(|&(_, w)| w).collect();
    let elems = (stream.len() as u64, "elem");

    let mut train = table("B3a", "buscode_train");
    run_case(&mut train, &opts, "single_transform", Some(elems), || {
        XorTransform::train(black_box(&words))
    });
    for regions in [1usize, 4, 16] {
        run_case(&mut train, &opts, &format!("region_encoder/{regions}"), Some(elems), || {
            RegionEncoder::train(black_box(&stream), regions)
        });
    }
    print!("{train}");

    let encoder = RegionEncoder::train(&stream, 4);
    let mut encode = table("B3b", "buscode_encode");
    run_case(&mut encode, &opts, "encode_stream", Some(elems), || {
        encoder.encode_stream(black_box(&stream))
    });
    run_case(&mut encode, &opts, "evaluate", Some(elems), || {
        encoder.evaluate(black_box(&stream))
    });
    print!("{encode}");
}
