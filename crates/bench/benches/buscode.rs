//! Criterion bench for the T3 encoder: training and encoding throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lpmem_buscode::{RegionEncoder, XorTransform};
use lpmem_isa::Kernel;

fn fetch_stream() -> Vec<(u64, u32)> {
    let run = Kernel::Fir.run(96, 3).expect("kernel");
    run.trace.fetches_only().iter().map(|e| (e.addr, e.value)).collect()
}

fn bench_train(c: &mut Criterion) {
    let stream = fetch_stream();
    let words: Vec<u32> = stream.iter().map(|&(_, w)| w).collect();
    let mut group = c.benchmark_group("buscode_train");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("single_transform", |b| {
        b.iter(|| XorTransform::train(black_box(&words)))
    });
    for regions in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("region_encoder", regions),
            &stream,
            |b, s| b.iter(|| RegionEncoder::train(black_box(s), regions)),
        );
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let stream = fetch_stream();
    let encoder = RegionEncoder::train(&stream, 4);
    let mut group = c.benchmark_group("buscode_encode");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("encode_stream", |b| {
        b.iter(|| encoder.encode_stream(black_box(&stream)))
    });
    group.bench_function("evaluate", |b| b.iter(|| encoder.evaluate(black_box(&stream))));
    group.finish();
}

criterion_group!(benches, bench_train, bench_encode);
criterion_main!(benches);
