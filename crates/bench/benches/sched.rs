//! Criterion bench for the T4 scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lpmem_core::flows::scheduling::{default_platform, dsp_pipeline_app};
use lpmem_energy::Technology;
use lpmem_sched::{greedy_schedule, naive_schedule};

fn bench_schedulers(c: &mut Criterion) {
    let tech = Technology::tech180();
    let platform = default_platform(&tech);
    let mut group = c.benchmark_group("sched");
    for stages in [2usize, 4, 8, 16] {
        let app = dsp_pipeline_app(stages, 32, 1).expect("builder");
        group.bench_with_input(BenchmarkId::new("greedy", stages), &app, |b, app| {
            b.iter(|| greedy_schedule(black_box(app), &platform))
        });
        group.bench_with_input(BenchmarkId::new("naive", stages), &app, |b, app| {
            b.iter(|| naive_schedule(black_box(app), &platform))
        });
        let greedy = greedy_schedule(&app, &platform);
        group.bench_with_input(BenchmarkId::new("evaluate", stages), &app, |b, app| {
            b.iter(|| platform.evaluate(black_box(app), &greedy).expect("valid"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
