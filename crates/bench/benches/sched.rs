//! Std-only bench for the T4 scheduler. Cases are declared up front and
//! executed through the sweep engine's pool.

use lpmem_bench::benchrun::{options, run_cases, table, BenchCase};
use lpmem_util::bench::black_box;

use lpmem_core::flows::scheduling::{default_platform, dsp_pipeline_app};
use lpmem_energy::Technology;
use lpmem_sched::{greedy_schedule, naive_schedule};

fn main() {
    let opts = options();
    let tech = Technology::tech180();
    let platform = default_platform(&tech);

    let mut cases = Vec::new();
    for stages in [2usize, 4, 8, 16] {
        let app = dsp_pipeline_app(stages, 32, 1).expect("builder");
        cases.push(BenchCase::new(format!("greedy/{stages}"), None, {
            let (app, platform) = (app.clone(), platform.clone());
            move || greedy_schedule(black_box(&app), &platform)
        }));
        cases.push(BenchCase::new(format!("naive/{stages}"), None, {
            let (app, platform) = (app.clone(), platform.clone());
            move || naive_schedule(black_box(&app), &platform)
        }));
        let greedy = greedy_schedule(&app, &platform);
        cases.push(BenchCase::new(format!("evaluate/{stages}"), None, {
            let platform = platform.clone();
            move || platform.evaluate(black_box(&app), &greedy).expect("valid")
        }));
    }
    let mut t = table("B4", "sched");
    run_cases(&mut t, &opts, cases);
    print!("{t}");
}
