//! Std-only bench for the T4 scheduler.

use lpmem_bench::benchrun::{options, run_case, table};
use lpmem_util::bench::black_box;

use lpmem_core::flows::scheduling::{default_platform, dsp_pipeline_app};
use lpmem_energy::Technology;
use lpmem_sched::{greedy_schedule, naive_schedule};

fn main() {
    let opts = options();
    let tech = Technology::tech180();
    let platform = default_platform(&tech);

    let mut t = table("B4", "sched");
    for stages in [2usize, 4, 8, 16] {
        let app = dsp_pipeline_app(stages, 32, 1).expect("builder");
        run_case(&mut t, &opts, &format!("greedy/{stages}"), None, || {
            greedy_schedule(black_box(&app), &platform)
        });
        run_case(&mut t, &opts, &format!("naive/{stages}"), None, || {
            naive_schedule(black_box(&app), &platform)
        });
        let greedy = greedy_schedule(&app, &platform);
        run_case(&mut t, &opts, &format!("evaluate/{stages}"), None, || {
            platform.evaluate(black_box(&app), &greedy).expect("valid")
        });
    }
    print!("{t}");
}
