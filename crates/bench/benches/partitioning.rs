//! Std-only bench for the T1/F1a/F1b pipeline: profiling, clustering, and
//! DP-optimal partitioning.

use lpmem_bench::benchrun::{options, run_case, table};
use lpmem_util::bench::black_box;

use lpmem_cluster::{cluster_blocks, ClusterConfig};
use lpmem_energy::Technology;
use lpmem_partition::{greedy_partition, optimal_partition, PartitionCost};
use lpmem_trace::gen::HotColdGen;
use lpmem_trace::{BlockProfile, Trace};

fn profile_of(blocks: u64) -> (Trace, BlockProfile) {
    let trace: Trace = HotColdGen::new(blocks * 2048, 12, 0.9)
        .block_size(2048)
        .seed(7)
        .events(50_000)
        .collect();
    let profile = BlockProfile::from_trace(&trace, 2048).expect("profile");
    (trace, profile)
}

fn main() {
    let opts = options();
    let tech = Technology::tech180();
    let cost = PartitionCost::new(&tech);

    let mut t = table("B1a", "partitioning");
    for blocks in [32u64, 64, 128, 256] {
        let (trace, profile) = profile_of(blocks);
        run_case(&mut t, &opts, &format!("optimal_dp/{blocks}"), None, || {
            optimal_partition(black_box(&profile), 8, &cost)
        });
        run_case(&mut t, &opts, &format!("greedy/{blocks}"), None, || {
            greedy_partition(black_box(&profile), 8, &cost)
        });
        run_case(&mut t, &opts, &format!("cluster/{blocks}"), None, || {
            cluster_blocks(black_box(&profile), Some(&trace), &ClusterConfig::default())
        });
    }
    print!("{t}");

    let trace: Trace = HotColdGen::new(1 << 18, 12, 0.9).seed(7).events(200_000).collect();
    let mut p = table("B1b", "profile_build");
    run_case(&mut p, &opts, "from_trace_200k", Some((trace.len() as u64, "event")), || {
        BlockProfile::from_trace(black_box(&trace), 2048).expect("profile")
    });
    print!("{p}");
}
