//! Std-only bench for the T1/F1a/F1b pipeline: profiling, clustering, and
//! DP-optimal partitioning. Cases are declared up front and executed
//! through the sweep engine's pool (see `benchrun::run_cases`).

use lpmem_bench::benchrun::{options, run_cases, table, BenchCase};
use lpmem_util::bench::black_box;

use lpmem_cluster::{cluster_blocks, ClusterConfig};
use lpmem_energy::Technology;
use lpmem_partition::{greedy_partition, optimal_partition, PartitionCost};
use lpmem_trace::gen::HotColdGen;
use lpmem_trace::{BlockProfile, Trace};

fn profile_of(blocks: u64) -> (Trace, BlockProfile) {
    let trace: Trace = HotColdGen::new(blocks * 2048, 12, 0.9)
        .block_size(2048)
        .seed(7)
        .events(50_000)
        .collect();
    let profile = BlockProfile::from_trace(&trace, 2048).expect("profile");
    (trace, profile)
}

fn main() {
    let opts = options();
    let tech = Technology::tech180();
    let cost = PartitionCost::new(&tech);

    let mut cases = Vec::new();
    for blocks in [32u64, 64, 128, 256] {
        let (trace, profile) = profile_of(blocks);
        cases.push(BenchCase::new(format!("optimal_dp/{blocks}"), None, {
            let (profile, cost) = (profile.clone(), cost.clone());
            move || optimal_partition(black_box(&profile), 8, &cost)
        }));
        cases.push(BenchCase::new(format!("greedy/{blocks}"), None, {
            let (profile, cost) = (profile.clone(), cost.clone());
            move || greedy_partition(black_box(&profile), 8, &cost)
        }));
        cases.push(BenchCase::new(
            format!("cluster/{blocks}"),
            None,
            move || cluster_blocks(black_box(&profile), Some(&trace), &ClusterConfig::default()),
        ));
    }
    let mut t = table("B1a", "partitioning");
    run_cases(&mut t, &opts, cases);
    print!("{t}");

    let trace: Trace = HotColdGen::new(1 << 18, 12, 0.9)
        .seed(7)
        .events(200_000)
        .collect();
    let mut p = table("B1b", "profile_build");
    let events = trace.len() as u64;
    run_cases(
        &mut p,
        &opts,
        vec![BenchCase::new(
            "from_trace_200k",
            Some((events, "event")),
            move || BlockProfile::from_trace(black_box(&trace), 2048).expect("profile"),
        )],
    );
    print!("{p}");
}
