//! Criterion bench for the T1/F1a/F1b pipeline: profiling, clustering, and
//! DP-optimal partitioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lpmem_cluster::{cluster_blocks, ClusterConfig};
use lpmem_energy::Technology;
use lpmem_partition::{greedy_partition, optimal_partition, PartitionCost};
use lpmem_trace::gen::HotColdGen;
use lpmem_trace::{BlockProfile, Trace};

fn profile_of(blocks: u64) -> (Trace, BlockProfile) {
    let trace: Trace = HotColdGen::new(blocks * 2048, 12, 0.9)
        .block_size(2048)
        .seed(7)
        .events(50_000)
        .collect();
    let profile = BlockProfile::from_trace(&trace, 2048).expect("profile");
    (trace, profile)
}

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    let tech = Technology::tech180();
    let cost = PartitionCost::new(&tech);
    for blocks in [32u64, 64, 128, 256] {
        let (trace, profile) = profile_of(blocks);
        group.bench_with_input(BenchmarkId::new("optimal_dp", blocks), &profile, |b, p| {
            b.iter(|| optimal_partition(black_box(p), 8, &cost))
        });
        group.bench_with_input(BenchmarkId::new("greedy", blocks), &profile, |b, p| {
            b.iter(|| greedy_partition(black_box(p), 8, &cost))
        });
        group.bench_with_input(
            BenchmarkId::new("cluster", blocks),
            &(&trace, &profile),
            |b, (t, p)| {
                b.iter(|| cluster_blocks(black_box(p), Some(t), &ClusterConfig::default()))
            },
        );
    }
    group.finish();
}

fn bench_profile_build(c: &mut Criterion) {
    let trace: Trace = HotColdGen::new(1 << 18, 12, 0.9).seed(7).events(200_000).collect();
    c.bench_function("profile/from_trace_200k", |b| {
        b.iter(|| BlockProfile::from_trace(black_box(&trace), 2048).expect("profile"))
    });
}

criterion_group!(benches, bench_partitioning, bench_profile_build);
criterion_main!(benches);
