//! Std-only bench for the T2 codecs: throughput of compress/decompress
//! over realistic cache-line payloads.

use lpmem_bench::benchrun::{options, run_case, table};
use lpmem_util::bench::black_box;

use lpmem_compress::{DiffCodec, FpcCodec, LineCodec, ZeroRunCodec};

/// Smooth signal-like line (the favourable case).
fn smooth_line(words: usize) -> Vec<u8> {
    (0..words as u32).flat_map(|i| (100_000 + 37 * i).to_le_bytes()).collect()
}

/// High-entropy line (the unfavourable case).
fn random_line(words: usize) -> Vec<u8> {
    (0..words as u32)
        .flat_map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7).to_le_bytes())
        .collect()
}

fn main() {
    let opts = options();
    let codecs: Vec<(&str, Box<dyn LineCodec>)> = vec![
        ("diff", Box::new(DiffCodec::new())),
        ("zero", Box::new(ZeroRunCodec::new())),
        ("fpc", Box::new(FpcCodec::new())),
    ];

    let mut compress = table("B2a", "codec_compress");
    for (data_name, line) in [("smooth", smooth_line(16)), ("random", random_line(16))] {
        let bytes = (line.len() as u64, "B");
        for (name, codec) in &codecs {
            run_case(&mut compress, &opts, &format!("{name}/{data_name}"), Some(bytes), || {
                codec.compress(black_box(&line))
            });
        }
    }
    print!("{compress}");

    let mut roundtrip = table("B2b", "codec_roundtrip");
    let line = smooth_line(16);
    for (name, codec) in &codecs {
        let encoded = codec.compress(&line);
        run_case(
            &mut roundtrip,
            &opts,
            &format!("{name}/decompress"),
            Some((line.len() as u64, "B")),
            || codec.decompress(black_box(&encoded), line.len()),
        );
    }
    let diff = DiffCodec::new();
    run_case(&mut roundtrip, &opts, "diff/compressed_bits_only", None, || {
        diff.compressed_bits(black_box(&line))
    });
    print!("{roundtrip}");
}
