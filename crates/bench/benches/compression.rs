//! Criterion bench for the T2 codecs: throughput of compress/decompress
//! over realistic cache-line payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lpmem_compress::{DiffCodec, FpcCodec, LineCodec, ZeroRunCodec};

/// Smooth signal-like line (the favourable case).
fn smooth_line(words: usize) -> Vec<u8> {
    (0..words as u32).flat_map(|i| (100_000 + 37 * i).to_le_bytes()).collect()
}

/// High-entropy line (the unfavourable case).
fn random_line(words: usize) -> Vec<u8> {
    (0..words as u32)
        .flat_map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7).to_le_bytes())
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let codecs: Vec<(&str, Box<dyn LineCodec>)> = vec![
        ("diff", Box::new(DiffCodec::new())),
        ("zero", Box::new(ZeroRunCodec::new())),
        ("fpc", Box::new(FpcCodec::new())),
    ];
    let mut group = c.benchmark_group("codec_compress");
    for (data_name, line) in [("smooth", smooth_line(16)), ("random", random_line(16))] {
        group.throughput(Throughput::Bytes(line.len() as u64));
        for (name, codec) in &codecs {
            group.bench_with_input(BenchmarkId::new(*name, data_name), &line, |b, line| {
                b.iter(|| codec.compress(black_box(line)))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("codec_roundtrip");
    let line = smooth_line(16);
    for (name, codec) in &codecs {
        let encoded = codec.compress(&line);
        group.bench_with_input(BenchmarkId::new(*name, "decompress"), &encoded, |b, e| {
            b.iter(|| codec.decompress(black_box(e), line.len()))
        });
    }
    group.finish();
}

fn bench_compressed_bits(c: &mut Criterion) {
    let codec = DiffCodec::new();
    let line = smooth_line(16);
    c.bench_function("codec/compressed_bits_only", |b| {
        b.iter(|| codec.compressed_bits(black_box(&line)))
    });
}

criterion_group!(benches, bench_codecs, bench_compressed_bits);
criterion_main!(benches);
