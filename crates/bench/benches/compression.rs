//! Std-only bench for the T2 codecs: throughput of compress/decompress
//! over realistic cache-line payloads. Cases are declared up front and
//! executed through the sweep engine's pool.

use lpmem_bench::benchrun::{options, run_cases, table, BenchCase};
use lpmem_util::bench::black_box;

use lpmem_compress::{DiffCodec, FpcCodec, LineCodec, ZeroRunCodec};

/// Smooth signal-like line (the favourable case).
fn smooth_line(words: usize) -> Vec<u8> {
    (0..words as u32)
        .flat_map(|i| (100_000 + 37 * i).to_le_bytes())
        .collect()
}

/// High-entropy line (the unfavourable case).
fn random_line(words: usize) -> Vec<u8> {
    (0..words as u32)
        .flat_map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7).to_le_bytes())
        .collect()
}

fn compress_case<C: LineCodec + Send + 'static>(
    codec_name: &str,
    codec: C,
    data_name: &str,
    line: Vec<u8>,
) -> BenchCase {
    let bytes = (line.len() as u64, "B");
    BenchCase::new(
        format!("{codec_name}/{data_name}"),
        Some(bytes),
        move || codec.compress(black_box(&line)),
    )
}

fn decompress_case<C: LineCodec + Send + 'static>(
    codec_name: &str,
    codec: C,
    line: &[u8],
) -> BenchCase {
    let encoded = codec.compress(line);
    let len = line.len();
    BenchCase::new(
        format!("{codec_name}/decompress"),
        Some((len as u64, "B")),
        move || codec.decompress(black_box(&encoded), len),
    )
}

fn main() {
    let opts = options();

    let mut compress_cases = Vec::new();
    for (data_name, line) in [("smooth", smooth_line(16)), ("random", random_line(16))] {
        compress_cases.push(compress_case(
            "diff",
            DiffCodec::new(),
            data_name,
            line.clone(),
        ));
        compress_cases.push(compress_case(
            "zero",
            ZeroRunCodec::new(),
            data_name,
            line.clone(),
        ));
        compress_cases.push(compress_case("fpc", FpcCodec::new(), data_name, line));
    }
    let mut compress = table("B2a", "codec_compress");
    run_cases(&mut compress, &opts, compress_cases);
    print!("{compress}");

    let line = smooth_line(16);
    let mut roundtrip_cases = vec![
        decompress_case("diff", DiffCodec::new(), &line),
        decompress_case("zero", ZeroRunCodec::new(), &line),
        decompress_case("fpc", FpcCodec::new(), &line),
    ];
    roundtrip_cases.push(BenchCase::new(
        "diff/compressed_bits_only",
        None,
        move || DiffCodec::new().compressed_bits(black_box(&line)),
    ));
    let mut roundtrip = table("B2b", "codec_roundtrip");
    run_cases(&mut roundtrip, &opts, roundtrip_cases);
    print!("{roundtrip}");
}
