//! Std-only bench for the substrates: TinyRISC execution and cache replay
//! throughput.

use lpmem_bench::benchrun::{options, run_case, table};
use lpmem_util::bench::black_box;

use lpmem_isa::{Kernel, Machine};
use lpmem_mem::{Cache, CacheConfig, FlatMemory};
use lpmem_trace::AccessKind;

fn main() {
    let opts = options();

    let mut t = table("B5a", "tinyrisc");
    for (kernel, scale) in [(Kernel::Fir, 64u32), (Kernel::Crc32, 64), (Kernel::MatMul, 10)] {
        let program = kernel.program(scale, 1);
        let steps = {
            let mut m = Machine::new(&program);
            m.run(10_000_000).expect("halts").steps
        };
        run_case(&mut t, &opts, &format!("run/{}", kernel.name()), Some((steps, "inst")), || {
            let mut m = Machine::new(black_box(&program));
            m.run(10_000_000).expect("halts")
        });
    }
    print!("{t}");

    let run = Kernel::Histogram.run(64, 1).expect("kernel");
    let data: Vec<_> = run.trace.data_only().into_inner();
    let mut c = table("B5b", "cache_replay");
    for (name, line) in [("line16", 16u32), ("line64", 64)] {
        let cfg = CacheConfig::new(4 << 10, line, 2).expect("geometry");
        run_case(&mut c, &opts, name, Some((data.len() as u64, "event")), || {
            let mut cache = Cache::new(cfg);
            let mut mem = FlatMemory::new();
            let mut buf = [0u8; 4];
            for ev in data.iter() {
                match ev.kind {
                    AccessKind::Read => cache.read(ev.addr, &mut buf, &mut mem),
                    AccessKind::Write => cache.write(ev.addr, &ev.value.to_le_bytes(), &mut mem),
                    AccessKind::InstrFetch => {}
                }
            }
            black_box(cache.stats().hits())
        });
    }
    print!("{c}");
}
