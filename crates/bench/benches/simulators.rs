//! Std-only bench for the substrates: TinyRISC execution and cache replay
//! throughput. Cases are declared up front and executed through the sweep
//! engine's pool.

use lpmem_bench::benchrun::{options, run_cases, table, BenchCase};
use lpmem_util::bench::black_box;

use lpmem_isa::{Kernel, Machine};
use lpmem_mem::{Cache, CacheConfig, FlatMemory};
use lpmem_trace::AccessKind;

fn main() {
    let opts = options();

    let mut cpu_cases = Vec::new();
    for (kernel, scale) in [
        (Kernel::Fir, 64u32),
        (Kernel::Crc32, 64),
        (Kernel::MatMul, 10),
    ] {
        let program = kernel.program(scale, 1);
        let steps = {
            let mut m = Machine::new(&program);
            m.run(10_000_000).expect("halts").steps
        };
        cpu_cases.push(BenchCase::new(
            format!("run/{}", kernel.name()),
            Some((steps, "inst")),
            move || {
                let mut m = Machine::new(black_box(&program));
                m.run(10_000_000).expect("halts")
            },
        ));
    }
    let mut t = table("B5a", "tinyrisc");
    run_cases(&mut t, &opts, cpu_cases);
    print!("{t}");

    let run = Kernel::Histogram.run(64, 1).expect("kernel");
    let data: Vec<_> = run.trace.data_only().into_inner();
    let events = (data.len() as u64, "event");
    let mut replay_cases = Vec::new();
    for (name, line) in [("line16", 16u32), ("line64", 64)] {
        let cfg = CacheConfig::new(4 << 10, line, 2).expect("geometry");
        let data = data.clone();
        replay_cases.push(BenchCase::new(name, Some(events), move || {
            let mut cache = Cache::new(cfg);
            let mut mem = FlatMemory::new();
            let mut buf = [0u8; 4];
            for ev in data.iter() {
                match ev.kind {
                    AccessKind::Read => cache.read(ev.addr, &mut buf, &mut mem),
                    AccessKind::Write => cache.write(ev.addr, &ev.value.to_le_bytes(), &mut mem),
                    AccessKind::InstrFetch => {}
                }
            }
            black_box(cache.stats().hits())
        }));
    }
    let mut c = table("B5b", "cache_replay");
    run_cases(&mut c, &opts, replay_cases);
    print!("{c}");
}
