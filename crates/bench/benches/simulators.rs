//! Criterion bench for the substrates: TinyRISC execution and cache replay
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lpmem_isa::{Kernel, Machine};
use lpmem_mem::{Cache, CacheConfig, FlatMemory};
use lpmem_trace::AccessKind;

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("tinyrisc");
    for (kernel, scale) in [(Kernel::Fir, 64u32), (Kernel::Crc32, 64), (Kernel::MatMul, 10)] {
        let program = kernel.program(scale, 1);
        let steps = {
            let mut m = Machine::new(&program);
            m.run(10_000_000).expect("halts").steps
        };
        group.throughput(Throughput::Elements(steps));
        group.bench_with_input(
            BenchmarkId::new("run", kernel.name()),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut m = Machine::new(black_box(program));
                    m.run(10_000_000).expect("halts")
                })
            },
        );
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let run = Kernel::Histogram.run(64, 1).expect("kernel");
    let data: Vec<_> = run.trace.data_only().into_inner();
    let mut group = c.benchmark_group("cache_replay");
    group.throughput(Throughput::Elements(data.len() as u64));
    for (name, line) in [("line16", 16u32), ("line64", 64)] {
        let cfg = CacheConfig::new(4 << 10, line, 2).expect("geometry");
        group.bench_with_input(BenchmarkId::new(name, data.len()), &data, |b, data| {
            b.iter(|| {
                let mut cache = Cache::new(cfg);
                let mut mem = FlatMemory::new();
                let mut buf = [0u8; 4];
                for ev in data.iter() {
                    match ev.kind {
                        AccessKind::Read => cache.read(ev.addr, &mut buf, &mut mem),
                        AccessKind::Write => {
                            cache.write(ev.addr, &ev.value.to_le_bytes(), &mut mem)
                        }
                        AccessKind::InstrFetch => {}
                    }
                }
                black_box(cache.stats().hits())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_machine, bench_cache);
criterion_main!(benches);
