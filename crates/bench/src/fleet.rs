//! Fleet-scale streaming simulation: N device instances, bounded memory,
//! byte-stable reports (DESIGN.md §11, ROADMAP item 2).
//!
//! A [`FleetSpec`] describes a *population* of devices: how many, how many
//! events each produces, and a [`WorkloadMix`] giving the probability of
//! each [`DeviceArchetype`]. Every device draws its class, its parameter
//! *drift*, and its generator seed from coordinates via
//! [`SplitMix64::derive`] — never from execution order — and streams its
//! events straight through the online statistics of `lpmem_trace::stream`.
//! **No trace is ever materialized on this path**: per-device state is
//! `O(footprint + window)` and per-shard state is a few hundred integers,
//! so a million-device sweep runs in tens of megabytes.
//!
//! Aggregation is sharded: devices are grouped into fixed-size shards,
//! shards fan out over [`lpmem_util::pool::parallel_map`], and shard
//! aggregates merge with integer-only, commutative arithmetic. The merged
//! [`FleetReport::jsonl`] is therefore byte-identical at any worker count
//! and under any shard permutation (floats appear only at render time,
//! derived from fully-merged integers). Device-level detail survives as a
//! bottom-k *priority sample*: each device gets a coordinate-derived
//! priority, each shard keeps its own k lowest-priority candidates, and
//! the merge re-selects the k lowest overall. Because every shard retains
//! a full k candidates, the merged sample *equals* the fleet-wide
//! bottom-k — no re-sharding or merge order can change it (pinned by a
//! property test in `tests/properties.rs`). Each sampled device carries a
//! reservoir-sampled address profile.

use std::time::Instant;

use lpmem_core::flows::{
    run_campaign, BankExposure, FaultExposure, FaultSpec, ReliabilityReport, TechNode,
};
use lpmem_core::{DeviceArchetype, WorkloadMix};
use lpmem_trace::{Reservoir, StreamingStackDistance, StreamingWorkingSet};
use lpmem_util::json::JsonObject;
use lpmem_util::pool::parallel_map;
use lpmem_util::{Rng, SplitMix64};

/// Number of device classes (= [`DeviceArchetype::ALL`] length).
pub const NUM_CLASSES: usize = DeviceArchetype::ALL.len();

/// Log2 stack-distance buckets per class: bucket 0 is distance 0, bucket
/// `i >= 1` covers distances in `[2^(i-1), 2^i)`, and the last bucket
/// holds the clamp at `StackDistanceHistogram::MAX_TRACKED`.
pub const DIST_BUCKETS: usize = 18;

/// Derivation tags for the per-device seed tree (`derive(base, [device, TAG])`).
const TAG_PICK: u64 = 0;
const TAG_GEN: u64 = 1;
const TAG_RESERVOIR: u64 = 2;
const TAG_PRIORITY: u64 = 3;

/// Addresses kept in each device's reservoir-sampled profile.
const PROFILE_ADDRS: usize = 4;

/// A fleet population description. All fields are inputs to the report;
/// two equal specs produce byte-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Device instances to simulate.
    pub devices: u64,
    /// Events each device streams.
    pub events_per_device: usize,
    /// Probability mix over device archetypes.
    pub mix: WorkloadMix,
    /// Base seed; every per-device seed is derived from it.
    pub base_seed: u64,
    /// Stack-distance / working-set block granularity (bytes).
    pub block_size: u64,
    /// Spatial-locality window (bytes).
    pub spatial_window: u64,
    /// Working-set window (events).
    pub ws_window: usize,
    /// Devices kept in the bottom-k priority sample.
    pub samples: usize,
    /// Devices per aggregation shard (one pool task each).
    pub shard_devices: u64,
    /// Fault-campaign mode: each device's touched footprint is exposed to
    /// the spec's upset rate under its protection ([`FaultSpec::off`] for
    /// the classic locality-only fleet, whose report bytes are unchanged).
    pub fault: FaultSpec,
    /// Technology node pricing the fault campaign's FIT rate.
    pub tech: TechNode,
}

impl FleetSpec {
    /// A small default fleet (callers override `devices` for real sweeps).
    pub fn new(mix: WorkloadMix) -> Self {
        FleetSpec {
            devices: 1024,
            events_per_device: 256,
            mix,
            base_seed: 2003,
            block_size: 64,
            spatial_window: 64,
            ws_window: 64,
            samples: 8,
            shard_devices: 1024,
            fault: FaultSpec::off(),
            tech: TechNode::T180,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("devices must be > 0".into());
        }
        if self.events_per_device == 0 {
            return Err("events per device must be > 0".into());
        }
        if self.block_size == 0 || !self.block_size.is_power_of_two() {
            return Err(format!(
                "block size {} is not a non-zero power of two",
                self.block_size
            ));
        }
        if self.spatial_window == 0 {
            return Err("spatial window must be > 0".into());
        }
        if self.ws_window == 0 {
            return Err("working-set window must be > 0".into());
        }
        if self.shard_devices == 0 {
            return Err("shard size must be > 0".into());
        }
        Ok(())
    }

    /// Number of aggregation shards the fleet splits into.
    pub fn num_shards(&self) -> u64 {
        self.devices.div_ceil(self.shard_devices)
    }
}

/// Streamed statistics of one simulated device — integers only, so shard
/// folds are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceStats {
    /// Device id (0-based fleet coordinate).
    pub device: u64,
    /// Archetype index (into [`DeviceArchetype::ALL`]).
    pub class: usize,
    /// Parameter drift drawn for this device.
    pub drift: u64,
    /// Events streamed.
    pub events: u64,
    /// First-touch accesses (= block footprint).
    pub cold: u64,
    /// Reuse accesses.
    pub reuses: u64,
    /// Sum of (clamped) stack distances over reuses.
    pub dist_sum: u64,
    /// Log2 stack-distance histogram.
    pub dist_hist: [u64; DIST_BUCKETS],
    /// Consecutive access pairs within the spatial window.
    pub near_pairs: u64,
    /// Consecutive access pairs total (`events - 1`).
    pub pairs: u64,
    /// Complete working-set windows.
    pub ws_windows: u64,
    /// Summed distinct blocks over complete windows.
    pub ws_distinct_sum: u64,
    /// Largest distinct-block count of any window (incl. the tail).
    pub ws_max: u64,
    /// Sampling priority (derived; smallest k devices enter the report).
    pub priority: u64,
    /// Reservoir-sampled event addresses (profile of this device).
    pub profile_addrs: Vec<u64>,
    /// Campaign outcome (all-zero when the spec's fault axis is off).
    pub reliability: ReliabilityReport,
}

fn dist_bucket(d: usize) -> usize {
    if d == 0 {
        0
    } else {
        (DIST_BUCKETS - 1).min(usize::BITS as usize - d.leading_zeros() as usize)
    }
}

/// Simulates one device: derives its class/drift/seed from `(base_seed,
/// device)` and streams its events through the online statistics. Never
/// materializes a trace.
///
/// The spec must be valid (see [`FleetSpec::validate`]); `run_fleet`
/// validates once up front.
pub fn simulate_device(spec: &FleetSpec, device: u64) -> DeviceStats {
    let mut pick_rng = Rng::seed_from_u64(SplitMix64::derive(spec.base_seed, &[device, TAG_PICK]));
    let class = spec.mix.pick(&mut pick_rng);
    let drift = pick_rng.bounded_u64(12);
    let gen_seed = SplitMix64::derive(spec.base_seed, &[device, TAG_GEN]);

    let mut sd = StreamingStackDistance::new(spec.block_size).expect("spec validated by caller");
    let mut ws = StreamingWorkingSet::new(spec.block_size, spec.ws_window)
        .expect("spec validated by caller");
    let mut profile = Reservoir::new(
        PROFILE_ADDRS,
        SplitMix64::derive(spec.base_seed, &[device, TAG_RESERVOIR]),
    );
    let mut near_pairs = 0u64;
    let mut prev_addr: Option<u64> = None;
    for ev in class.events(gen_seed, spec.events_per_device, drift) {
        if let Some(prev) = prev_addr {
            if prev.abs_diff(ev.addr) <= spec.spatial_window {
                near_pairs += 1;
            }
        }
        prev_addr = Some(ev.addr);
        profile.push(ev.addr);
        ws.push(ev);
        sd.push(ev);
    }

    let hist = sd.finish();
    let mut dist_hist = [0u64; DIST_BUCKETS];
    let mut dist_sum = 0u64;
    let mut reuses = 0u64;
    for (d, &count) in hist.buckets().iter().enumerate() {
        if count > 0 {
            dist_hist[dist_bucket(d)] += count;
            dist_sum += d as u64 * count;
            reuses += count;
        }
    }
    let wsr = ws.finish();

    // Fault-campaign mode: the device's touched block footprint is the
    // exposed memory, its stream length the exposure time, its reuses the
    // consuming reads. The campaign seed tree hangs off (base_seed,
    // device-as-domain), so campaigns are coordinate-stable like
    // everything else on this path.
    let reliability = if spec.fault.enabled() {
        let exposure = FaultExposure {
            domain: device,
            banks: vec![BankExposure {
                words: hist.cold_accesses() * (spec.block_size / 4),
                active_ticks: hist.total_accesses(),
                sleep_ticks: 0,
                reads: reuses,
                writes: hist.cold_accesses(),
            }],
        };
        run_campaign(
            &spec.fault,
            &spec.tech.technology(),
            &exposure,
            spec.base_seed,
        )
    } else {
        ReliabilityReport::default()
    };

    DeviceStats {
        device,
        class: class.index(),
        drift,
        events: hist.total_accesses(),
        cold: hist.cold_accesses(),
        reuses,
        dist_sum,
        dist_hist,
        near_pairs,
        pairs: hist.total_accesses().saturating_sub(1),
        ws_windows: wsr.windows,
        ws_distinct_sum: wsr.distinct_sum,
        ws_max: wsr.max_distinct.max(wsr.tail_distinct),
        priority: SplitMix64::derive(spec.base_seed, &[device, TAG_PRIORITY]),
        profile_addrs: profile.into_items(),
        reliability,
    }
}

/// Integer aggregate over all devices of one class. Merging is
/// commutative and associative (sums and maxima of integers), so any
/// shard order produces the same aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassAgg {
    /// Devices of this class.
    pub devices: u64,
    /// Events streamed by this class.
    pub events: u64,
    /// Cold (first-touch) accesses.
    pub cold: u64,
    /// Reuse accesses.
    pub reuses: u64,
    /// Sum of stack distances over reuses.
    pub dist_sum: u64,
    /// Log2 stack-distance histogram.
    pub dist_hist: [u64; DIST_BUCKETS],
    /// Spatially-near consecutive pairs.
    pub near_pairs: u64,
    /// Consecutive pairs total.
    pub pairs: u64,
    /// Complete working-set windows.
    pub ws_windows: u64,
    /// Summed distinct blocks over complete windows.
    pub ws_distinct_sum: u64,
    /// Largest working set seen on any device of the class.
    pub ws_max: u64,
    /// Largest block footprint seen on any device of the class.
    pub max_footprint: u64,
    /// Summed campaign outcomes (all-zero outside fault mode).
    pub reliability: ReliabilityReport,
}

impl Default for ClassAgg {
    fn default() -> Self {
        ClassAgg {
            devices: 0,
            events: 0,
            cold: 0,
            reuses: 0,
            dist_sum: 0,
            dist_hist: [0; DIST_BUCKETS],
            near_pairs: 0,
            pairs: 0,
            ws_windows: 0,
            ws_distinct_sum: 0,
            ws_max: 0,
            max_footprint: 0,
            reliability: ReliabilityReport::default(),
        }
    }
}

impl ClassAgg {
    /// Folds one device into the aggregate.
    pub fn absorb(&mut self, d: &DeviceStats) {
        self.devices += 1;
        self.events += d.events;
        self.cold += d.cold;
        self.reuses += d.reuses;
        self.dist_sum += d.dist_sum;
        for (b, &c) in d.dist_hist.iter().enumerate() {
            self.dist_hist[b] += c;
        }
        self.near_pairs += d.near_pairs;
        self.pairs += d.pairs;
        self.ws_windows += d.ws_windows;
        self.ws_distinct_sum += d.ws_distinct_sum;
        self.ws_max = self.ws_max.max(d.ws_max);
        self.max_footprint = self.max_footprint.max(d.cold);
        self.reliability.merge(&d.reliability);
    }

    /// Merges another aggregate (commutative, associative).
    pub fn merge(&mut self, o: &ClassAgg) {
        self.devices += o.devices;
        self.events += o.events;
        self.cold += o.cold;
        self.reuses += o.reuses;
        self.dist_sum += o.dist_sum;
        for (b, &c) in o.dist_hist.iter().enumerate() {
            self.dist_hist[b] += c;
        }
        self.near_pairs += o.near_pairs;
        self.pairs += o.pairs;
        self.ws_windows += o.ws_windows;
        self.ws_distinct_sum += o.ws_distinct_sum;
        self.ws_max = self.ws_max.max(o.ws_max);
        self.max_footprint = self.max_footprint.max(o.max_footprint);
        self.reliability.merge(&o.reliability);
    }
}

/// One device's record in the bottom-k priority sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRec {
    /// Derived sampling priority (the sort/selection key).
    pub priority: u64,
    /// Device id.
    pub device: u64,
    /// Archetype index.
    pub class: usize,
    /// Parameter drift.
    pub drift: u64,
    /// Cold accesses (footprint).
    pub cold: u64,
    /// Reuse accesses.
    pub reuses: u64,
    /// Sum of stack distances.
    pub dist_sum: u64,
    /// Spatially-near pairs.
    pub near_pairs: u64,
    /// Largest working set.
    pub ws_max: u64,
    /// Reservoir-sampled address profile.
    pub profile_addrs: Vec<u64>,
}

impl SampleRec {
    fn from_device(d: &DeviceStats) -> Self {
        SampleRec {
            priority: d.priority,
            device: d.device,
            class: d.class,
            drift: d.drift,
            cold: d.cold,
            reuses: d.reuses,
            dist_sum: d.dist_sum,
            near_pairs: d.near_pairs,
            ws_max: d.ws_max,
            profile_addrs: d.profile_addrs.clone(),
        }
    }
}

/// One shard's contribution: per-class integer aggregates plus its local
/// bottom-k sample candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetShard {
    /// Per-class aggregates, indexed by archetype.
    pub per_class: [ClassAgg; NUM_CLASSES],
    /// The shard's k lowest-priority devices.
    pub samples: Vec<SampleRec>,
}

/// Simulates one shard of devices (`[start, start + count)` of the fleet
/// coordinate space). Pure function of `(spec, shard index)`.
pub fn simulate_shard(spec: &FleetSpec, shard: u64) -> FleetShard {
    let start = shard * spec.shard_devices;
    let end = (start + spec.shard_devices).min(spec.devices);
    let mut per_class = [ClassAgg::default(); NUM_CLASSES];
    let mut samples: Vec<SampleRec> = Vec::new();
    for device in start..end {
        let stats = simulate_device(spec, device);
        per_class[stats.class].absorb(&stats);
        // Shard-local bottom-k: keep the list sorted and bounded.
        if samples.len() < spec.samples
            || samples.last().is_some_and(|worst| {
                (stats.priority, stats.device) < (worst.priority, worst.device)
            })
        {
            let rec = SampleRec::from_device(&stats);
            let at = samples
                .binary_search_by_key(&(rec.priority, rec.device), |s| (s.priority, s.device))
                .unwrap_or_else(|i| i);
            samples.insert(at, rec);
            samples.truncate(spec.samples);
        }
    }
    FleetShard { per_class, samples }
}

/// The merged fleet report. Everything [`FleetReport::jsonl`] renders is a
/// pure function of the spec — timings live in separate fields and never
/// enter the JSONL.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The spec that produced the report.
    pub spec: FleetSpec,
    /// Per-class merged aggregates, indexed by archetype.
    pub per_class: [ClassAgg; NUM_CLASSES],
    /// Fleet-wide bottom-k priority sample, sorted by (priority, device).
    pub samples: Vec<SampleRec>,
    /// Workers used (reporting only).
    pub workers: usize,
    /// End-to-end wall time in nanoseconds (reporting only).
    pub elapsed_ns: u64,
}

impl FleetReport {
    /// Merges shard results. Class aggregates merge commutatively and the
    /// global sample re-selects the k smallest priorities, so any shard
    /// permutation yields the same report.
    pub fn from_shards(spec: FleetSpec, shards: Vec<FleetShard>) -> FleetReport {
        let mut per_class = [ClassAgg::default(); NUM_CLASSES];
        let mut samples: Vec<SampleRec> = Vec::new();
        for shard in &shards {
            for (c, agg) in shard.per_class.iter().enumerate() {
                per_class[c].merge(agg);
            }
            samples.extend(shard.samples.iter().cloned());
        }
        samples.sort_by_key(|s| (s.priority, s.device));
        samples.truncate(spec.samples);
        FleetReport {
            spec,
            per_class,
            samples,
            workers: 1,
            elapsed_ns: 0,
        }
    }

    /// Total events streamed across the fleet.
    pub fn total_events(&self) -> u64 {
        self.per_class.iter().map(|c| c.events).sum()
    }

    /// Fleet-wide campaign outcome (all-zero outside fault mode).
    pub fn total_reliability(&self) -> ReliabilityReport {
        let mut total = ReliabilityReport::default();
        for c in &self.per_class {
            total.merge(&c.reliability);
        }
        total
    }

    /// The machine-readable report: one `fleet` header line, one `class`
    /// line per archetype (in [`DeviceArchetype::ALL`] order), and one
    /// `sample` line per sampled device. Byte-identical for a given spec
    /// at any worker count; every float is derived from fully-merged
    /// integers at render time.
    pub fn jsonl(&self) -> String {
        let faults = self.spec.fault.enabled();
        let mut out = String::new();
        let mut header = JsonObject::new()
            .str("kind", "fleet")
            .u64("devices", self.spec.devices)
            .u64("events_per_device", self.spec.events_per_device as u64)
            .u64("events", self.total_events())
            .str("mix", self.spec.mix.name())
            .u64("seed", self.spec.base_seed)
            .u64("block_size", self.spec.block_size)
            .u64("spatial_window", self.spec.spatial_window)
            .u64("ws_window", self.spec.ws_window as u64)
            .u64("samples", self.samples.len() as u64);
        // Campaign fields appear only in fault mode, so the classic
        // locality report keeps its historical bytes (golden-pinned).
        if faults {
            header = header
                .str("faults", &self.spec.fault.label())
                .str("tech", self.spec.tech.name());
        }
        out.push_str(&header.finish());
        out.push('\n');
        for (c, agg) in self.per_class.iter().enumerate() {
            let hist = agg
                .dist_hist
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let mut row = JsonObject::new()
                .str("kind", "class")
                .str("class", DeviceArchetype::ALL[c].name())
                .u64("devices", agg.devices)
                .u64("events", agg.events)
                .u64("cold", agg.cold)
                .u64("reuses", agg.reuses)
                .u64("dist_sum", agg.dist_sum)
                .u64("near_pairs", agg.near_pairs)
                .u64("pairs", agg.pairs)
                .u64("ws_windows", agg.ws_windows)
                .u64("ws_distinct_sum", agg.ws_distinct_sum)
                .u64("ws_max", agg.ws_max)
                .u64("max_footprint", agg.max_footprint)
                .f64(
                    "mean_stack_distance",
                    agg.dist_sum as f64 / agg.reuses as f64,
                )
                .f64("spatial_locality", agg.near_pairs as f64 / agg.pairs as f64)
                .f64(
                    "ws_mean",
                    agg.ws_distinct_sum as f64 / agg.ws_windows as f64,
                );
            if faults {
                row = row
                    .u64("injected", agg.reliability.injected)
                    .u64("masked", agg.reliability.masked)
                    .u64("detected", agg.reliability.detected)
                    .u64("corrected", agg.reliability.corrected)
                    .u64("silent", agg.reliability.silent);
            }
            out.push_str(&row.str("dist_hist", &hist).finish());
            out.push('\n');
        }
        for s in &self.samples {
            let addrs = s
                .profile_addrs
                .iter()
                .map(|a| format!("{a:#x}"))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(
                &JsonObject::new()
                    .str("kind", "sample")
                    .u64("priority", s.priority)
                    .u64("device", s.device)
                    .str("class", DeviceArchetype::ALL[s.class].name())
                    .u64("drift", s.drift)
                    .u64("cold", s.cold)
                    .u64("reuses", s.reuses)
                    .u64("dist_sum", s.dist_sum)
                    .u64("near_pairs", s.near_pairs)
                    .u64("ws_max", s.ws_max)
                    .str("profile", &addrs)
                    .finish(),
            );
            out.push('\n');
        }
        out
    }

    /// Devices simulated per second of wall time (0 when untimed).
    pub fn devices_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.spec.devices as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Events streamed per second of wall time (0 when untimed).
    pub fn events_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.total_events() as f64 * 1e9 / self.elapsed_ns as f64
    }
}

/// Runs the fleet: shards fan out over the work-stealing pool, shard
/// aggregates merge into one report. The JSONL body is independent of
/// `workers`.
///
/// # Errors
///
/// Returns the spec validation error, if any.
pub fn run_fleet(spec: &FleetSpec, workers: usize) -> Result<FleetReport, String> {
    spec.validate()?;
    let started = Instant::now();
    let shards: Vec<u64> = (0..spec.num_shards()).collect();
    let results = parallel_map(shards, workers, |shard| simulate_shard(spec, shard));
    let mut report = FleetReport::from_shards(spec.clone(), results);
    report.workers = workers.max(1);
    report.elapsed_ns = started.elapsed().as_nanos() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> FleetSpec {
        let mut spec = FleetSpec::new(WorkloadMix::uniform());
        spec.devices = 96;
        spec.events_per_device = 128;
        spec.shard_devices = 16;
        spec
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = small_spec();
        s.block_size = 48;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.devices = 0;
        assert!(s.validate().is_err());
        let mut s = small_spec();
        s.ws_window = 0;
        assert!(s.validate().is_err());
        assert!(small_spec().validate().is_ok());
    }

    #[test]
    fn dist_buckets_are_log2() {
        assert_eq!(dist_bucket(0), 0);
        assert_eq!(dist_bucket(1), 1);
        assert_eq!(dist_bucket(2), 2);
        assert_eq!(dist_bucket(3), 2);
        assert_eq!(dist_bucket(4), 3);
        assert_eq!(dist_bucket(65_535), 16);
        assert_eq!(dist_bucket(65_536), 17);
    }

    #[test]
    fn device_stats_are_coordinate_stable() {
        let spec = small_spec();
        let a = simulate_device(&spec, 17);
        let b = simulate_device(&spec, 17);
        assert_eq!(a, b);
        // Device identity, not position, drives the stream.
        let c = simulate_device(&spec, 18);
        assert_ne!(
            (a.class, a.drift, a.priority),
            (c.class, c.drift, c.priority)
        );
    }

    #[test]
    fn device_accounting_is_consistent() {
        let spec = small_spec();
        for device in 0..24 {
            let d = simulate_device(&spec, device);
            assert_eq!(d.events, spec.events_per_device as u64);
            assert_eq!(d.cold + d.reuses, d.events, "device {device}");
            assert_eq!(d.dist_hist.iter().sum::<u64>(), d.reuses);
            assert_eq!(d.pairs, d.events - 1);
            assert!(d.near_pairs <= d.pairs);
            assert!(d.profile_addrs.len() <= PROFILE_ADDRS);
        }
    }

    #[test]
    fn shard_merge_equals_flat_aggregation() {
        let spec = small_spec();
        let shards: Vec<FleetShard> = (0..spec.num_shards())
            .map(|s| simulate_shard(&spec, s))
            .collect();
        let merged = FleetReport::from_shards(spec.clone(), shards);
        // Flat single-shard run over the same devices.
        let mut flat_spec = spec.clone();
        flat_spec.shard_devices = spec.devices;
        let flat = FleetReport::from_shards(flat_spec.clone(), vec![simulate_shard(&flat_spec, 0)]);
        assert_eq!(merged.per_class, flat.per_class);
        assert_eq!(merged.samples, flat.samples);
    }

    #[test]
    fn fault_mode_accounts_and_plain_bytes_lack_campaign_fields() {
        use lpmem_core::flows::Protection;
        let plain = run_fleet(&small_spec(), 2).unwrap();
        assert!(plain.total_reliability().is_empty());
        assert!(!plain.jsonl().contains("\"injected\""));
        assert!(!plain.jsonl().contains("\"faults\""));

        // Short streams expose few word-ticks, so accelerate well past
        // the campaign default for a statistically real upset population.
        let mut spec = small_spec();
        spec.fault = FaultSpec {
            rate_scale: FaultSpec::DEFAULT_ACCEL.saturating_mul(10_000),
            protection: Protection::Secded,
        };
        let faulted = run_fleet(&spec, 2).unwrap();
        let total = faulted.total_reliability();
        assert!(total.injected > 0, "accelerated rate must inject");
        assert_eq!(
            total.injected,
            total.masked + total.detected + total.corrected + total.silent,
            "every injected bit lands in exactly one outcome"
        );
        let jsonl = faulted.jsonl();
        assert!(jsonl.contains("\"faults\":\"secded:"));
        assert!(jsonl.contains("\"injected\""));
        // Campaigns are coordinate-derived: worker count changes nothing.
        assert_eq!(jsonl, run_fleet(&spec, 1).unwrap().jsonl());
        assert_eq!(jsonl, run_fleet(&spec, 8).unwrap().jsonl());
        // The locality statistics are untouched by the fault axis.
        for (f, p) in faulted.per_class.iter().zip(plain.per_class.iter()) {
            assert_eq!((f.devices, f.events, f.cold), (p.devices, p.events, p.cold));
        }
    }

    #[test]
    fn report_covers_every_device_exactly_once() {
        let spec = small_spec();
        let report = run_fleet(&spec, 2).unwrap();
        let devices: u64 = report.per_class.iter().map(|c| c.devices).sum();
        assert_eq!(devices, spec.devices);
        assert_eq!(
            report.total_events(),
            spec.devices * spec.events_per_device as u64
        );
        assert_eq!(report.samples.len(), spec.samples);
    }
}
