//! Plain-text result tables.

use std::fmt;

/// A rendered experiment result: header, aligned rows, and summary notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id from `DESIGN.md` §2 (e.g. `"T1"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// What the paper reports for this table/figure (the target shape).
    pub paper_target: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Summary lines (averages, maxima, verdicts).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: &'static str,
        title: impl Into<String>,
        paper_target: impl Into<String>,
        header: Vec<&str>,
    ) -> Self {
        Table {
            id,
            title: title.into(),
            paper_target: paper_target.into(),
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a summary note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Value at `(row, col)` parsed as `f64` (for tests).
    pub fn cell_f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows
            .get(row)?
            .get(col)?
            .trim_end_matches('%')
            .parse()
            .ok()
    }

    /// Parses an entire column as `f64`, skipping unparsable cells.
    pub fn column_f64(&self, col: usize) -> Vec<f64> {
        (0..self.rows.len())
            .filter_map(|r| self.cell_f64(r, col))
            .collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {}", self.id, self.title)?;
        writeln!(f, "   paper: {}", self.paper_target)?;
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "   {}", render(&self.header, &widths))?;
        let total = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "   {}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "   {}", render(row, &widths))?;
        }
        for note in &self.notes {
            writeln!(f, "   >> {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T0", "demo", "n/a", vec!["name", "value"]);
        t.push_row(vec!["a".into(), "1.5".into()]);
        t.push_row(vec!["b".into(), "25.0%".into()]);
        t.note("done");
        t
    }

    #[test]
    fn cells_parse_as_floats() {
        let t = sample();
        assert_eq!(t.cell_f64(0, 1), Some(1.5));
        assert_eq!(t.cell_f64(1, 1), Some(25.0)); // '%' stripped
        assert_eq!(t.cell_f64(0, 0), None);
        assert_eq!(t.column_f64(1), vec![1.5, 25.0]);
    }

    #[test]
    fn display_contains_everything() {
        let s = sample().to_string();
        assert!(s.contains("T0"));
        assert!(s.contains("name"));
        assert!(s.contains("25.0%"));
        assert!(s.contains(">> done"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        sample().push_row(vec!["only-one".into()]);
    }
}
