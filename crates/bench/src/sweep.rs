//! The parallel experiment sweep engine.
//!
//! A [`SweepGrid`] declares the experiment space — flows × kernels ×
//! technology nodes × configuration variants — and [`run_sweep`] fans the
//! expanded task list across a work-stealing pool of `std::thread`
//! workers. Determinism is the design center: every task's PRNG seed is
//! derived from its *grid coordinates* (via [`SplitMix64::derive`]), never
//! from execution order, so the [JSON-lines report](SweepReport::jsonl)
//! is byte-identical regardless of worker count or interleaving. Timing
//! lives only in the human-facing [`Metrics`] tables, which are allowed
//! to vary run to run.
//!
//! The pool is intentionally std-only (no rayon/crossbeam — the build is
//! hermetic): a shared injector deque feeds per-worker local deques;
//! workers grab small batches from the injector and steal half a victim's
//! local queue when both run dry. Results land in per-task slots indexed
//! by grid position, so collection order never matters.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use lpmem_core::flows::{FlowSpec, FlowSummary, TechNode, VariantSpec};
use lpmem_isa::Kernel;
use lpmem_util::SplitMix64;

use crate::metrics::{JsonObject, Metrics};
use crate::table::Table;

/// Tasks a worker takes from the injector in one lock acquisition.
const INJECTOR_BATCH: usize = 4;

/// The declarative sweep space: the cartesian product of four axes plus a
/// base seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Flow axis.
    pub flows: Vec<FlowSpec>,
    /// Kernel axis: each kernel with the scale to run it at.
    pub kernels: Vec<(Kernel, u32)>,
    /// Technology axis.
    pub techs: Vec<TechNode>,
    /// Configuration-variant axis.
    pub variants: Vec<VariantSpec>,
    /// Base seed every task seed is derived from.
    pub base_seed: u64,
}

impl SweepGrid {
    /// The full default grid: every flow × every kernel (at default or
    /// quick scale) × every technology node × the `default` and `tight`
    /// variants.
    pub fn default_grid(quick: bool) -> SweepGrid {
        let scale = |k: Kernel| {
            if quick {
                (k.default_scale() / 4).max(4)
            } else {
                k.default_scale()
            }
        };
        SweepGrid {
            flows: FlowSpec::ALL.to_vec(),
            kernels: Kernel::ALL.iter().map(|&k| (k, scale(k))).collect(),
            techs: TechNode::ALL.to_vec(),
            variants: vec![VariantSpec::default(), VariantSpec::tight()],
            base_seed: crate::experiments::SEED,
        }
    }

    /// Expands the grid into its task list, in deterministic grid order
    /// (flow-major, then kernel, technology, variant).
    pub fn tasks(&self) -> Vec<SweepTask> {
        let mut out = Vec::with_capacity(self.len());
        let mut index = 0;
        for (fi, &flow) in self.flows.iter().enumerate() {
            for (ki, &(kernel, scale)) in self.kernels.iter().enumerate() {
                for (ti, &tech) in self.techs.iter().enumerate() {
                    for (vi, variant) in self.variants.iter().enumerate() {
                        // Seeds hang off grid coordinates — not off `index`,
                        // so filtering one axis never reseeds another.
                        let seed = SplitMix64::derive(
                            self.base_seed,
                            &[fi as u64, ki as u64, ti as u64, vi as u64],
                        );
                        out.push(SweepTask {
                            index,
                            flow,
                            kernel,
                            scale,
                            tech,
                            variant: variant.clone(),
                            seed,
                        });
                        index += 1;
                    }
                }
            }
        }
        out
    }

    /// Number of tasks the grid expands to.
    pub fn len(&self) -> usize {
        self.flows.len() * self.kernels.len() * self.techs.len() * self.variants.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One grid point, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTask {
    /// Position in grid order (stable result index).
    pub index: usize,
    /// Flow to run.
    pub flow: FlowSpec,
    /// Kernel input.
    pub kernel: Kernel,
    /// Kernel scale.
    pub scale: u32,
    /// Technology node.
    pub tech: TechNode,
    /// Configuration variant.
    pub variant: VariantSpec,
    /// Derived per-task seed (a pure function of grid coordinates).
    pub seed: u64,
}

impl SweepTask {
    /// Runs the task's flow.
    fn run(&self) -> Result<FlowSummary, String> {
        self.flow
            .run(self.kernel, self.scale, self.seed, self.tech, &self.variant)
            .map_err(|e| e.to_string())
    }
}

/// The outcome of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// The task that ran.
    pub task: SweepTask,
    /// The flow summary, or the flow error rendered to text.
    pub outcome: Result<FlowSummary, String>,
    /// Wall time of this task on its worker, in nanoseconds.
    pub wall_ns: u64,
}

impl TaskResult {
    /// One JSON-lines record for this result. Contains only fields that
    /// are a pure function of the grid — never timings — so the full
    /// report is byte-identical at any worker count.
    pub fn json_line(&self) -> String {
        let obj = JsonObject::new()
            .u64("task", self.task.index as u64)
            .str("flow", self.task.flow.name())
            .str("kernel", self.task.kernel.name())
            .u64("scale", u64::from(self.task.scale))
            .str("tech", self.task.tech.name())
            .str("variant", &self.task.variant.name)
            .u64("seed", self.task.seed);
        match &self.outcome {
            Ok(s) => obj
                .str("workload", &s.workload)
                .u64("events", s.events)
                .f64("baseline_pj", s.baseline.as_pj())
                .f64("optimized_pj", s.optimized.as_pj())
                .f64("saving", s.saving())
                .finish(),
            Err(e) => obj.str("error", e).finish(),
        }
    }
}

/// A finished sweep: per-task results in grid order plus run metrics.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Results, sorted by task index (grid order).
    pub results: Vec<TaskResult>,
    /// Aggregated run metrics (merged across workers).
    pub metrics: Metrics,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time of the sweep, in nanoseconds.
    pub elapsed_ns: u64,
}

impl SweepReport {
    /// The machine-readable report: one JSON object per task, in grid
    /// order, each line terminated by `\n`. Byte-identical for a given
    /// grid at any worker count.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.json_line());
            out.push('\n');
        }
        out
    }

    /// The human-facing tables: per-flow aggregates and the latency
    /// histogram.
    pub fn tables(&self) -> Vec<Table> {
        vec![self.metrics.flow_table(self.elapsed_ns, self.workers), self.metrics.latency_table()]
    }
}

/// Worker count for a sweep: `LPMEM_SWEEP_THREADS` when set (clamped to
/// ≥ 1), otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("LPMEM_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs every task of `grid` on `workers` threads and aggregates the
/// report. Results come back in grid order and all result fields except
/// timings are independent of `workers`.
pub fn run_sweep(grid: &SweepGrid, workers: usize) -> SweepReport {
    let started = Instant::now();
    let tasks = grid.tasks();
    let per_worker: Vec<(Vec<(usize, TaskResult)>, Metrics)> = parallel_map_workers(
        tasks,
        workers,
        |task| {
            let t0 = Instant::now();
            let outcome = task.run();
            let wall_ns = t0.elapsed().as_nanos() as u64;
            TaskResult { task, outcome, wall_ns }
        },
        |state: &mut Metrics, result: &TaskResult| {
            state.record(result.task.flow.name(), result.wall_ns, result.outcome.as_ref().ok());
        },
    );

    let mut results: Vec<TaskResult> = Vec::new();
    let mut metrics = Metrics::new();
    for (chunk, local) in per_worker {
        results.extend(chunk.into_iter().map(|(_, r)| r));
        metrics.merge(&local);
    }
    results.sort_by_key(|r| r.task.index);
    SweepReport {
        results,
        metrics,
        workers: workers.max(1),
        elapsed_ns: started.elapsed().as_nanos() as u64,
    }
}

/// Applies `f` to every item on a work-stealing pool of `workers`
/// threads, preserving input order in the output. `workers <= 1` runs
/// inline with no threads.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let per_worker = parallel_map_workers(items, workers, f, |_: &mut (), _: &R| {});
    let mut indexed: Vec<(usize, R)> =
        per_worker.into_iter().flat_map(|(chunk, ())| chunk).collect();
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The engine under [`parallel_map`] and [`run_sweep`]: maps `f` over the
/// items on a work-stealing pool and additionally folds every result into
/// a per-worker state `S` via `observe`. Returns each worker's
/// `(indexed results, state)`; when `R` already carries its index (as
/// `TaskResult` does) callers can drop the tuple index.
fn parallel_map_workers<T, R, S, F, O>(
    items: Vec<T>,
    workers: usize,
    f: F,
    observe: O,
) -> Vec<(Vec<(usize, R)>, S)>
where
    T: Send,
    R: Send,
    S: Default + Send,
    F: Fn(T) -> R + Sync,
    O: Fn(&mut S, &R) + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = S::default();
        let chunk: Vec<(usize, R)> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(item);
                observe(&mut state, &r);
                (i, r)
            })
            .collect();
        return vec![(chunk, state)];
    }

    // Task storage: items move out of their slots as workers claim them.
    let slots: Vec<Mutex<Option<(usize, T)>>> =
        items.into_iter().enumerate().map(|p| Mutex::new(Some(p))).collect();
    let injector: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let locals: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();

    let next_task = |me: usize| -> Option<usize> {
        // 1. Own local queue (LIFO for locality).
        if let Some(i) = lock(&locals[me]).pop_back() {
            return Some(i);
        }
        // 2. A batch from the injector: keep one, queue the rest locally.
        {
            let mut inj = lock(&injector);
            if let Some(first) = inj.pop_front() {
                let mut mine = lock(&locals[me]);
                for _ in 1..INJECTOR_BATCH {
                    match inj.pop_front() {
                        Some(i) => mine.push_back(i),
                        None => break,
                    }
                }
                return Some(first);
            }
        }
        // 3. Steal the front half of the fullest victim's queue.
        let victim = (0..workers)
            .filter(|&w| w != me)
            .max_by_key(|&w| lock(&locals[w]).len())?;
        let stolen: Vec<usize> = {
            let mut theirs = lock(&locals[victim]);
            let take = theirs.len().div_ceil(2);
            theirs.drain(..take).collect()
        };
        let mut iter = stolen.into_iter();
        let first = iter.next()?;
        lock(&locals[me]).extend(iter);
        Some(first)
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let next_task = &next_task;
                let slots = &slots;
                let f = &f;
                let observe = &observe;
                scope.spawn(move || {
                    let mut chunk: Vec<(usize, R)> = Vec::new();
                    let mut state = S::default();
                    let mut idle_spins = 0u32;
                    loop {
                        match next_task(me) {
                            Some(slot) => {
                                idle_spins = 0;
                                // A claimed index is owned by exactly one
                                // worker, so the slot is always full here.
                                let (index, item) =
                                    lock(&slots[slot]).take().expect("task claimed twice");
                                let r = f(item);
                                observe(&mut state, &r);
                                chunk.push((index, r));
                            }
                            None => {
                                // Queues drained — but a peer may still
                                // publish stealable work; yield a few times
                                // before concluding the pool is dry.
                                idle_spins += 1;
                                if idle_spins > 32 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    (chunk, state)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn grid_expansion_covers_the_product_in_order() {
        let grid = SweepGrid::default_grid(true);
        let tasks = grid.tasks();
        assert_eq!(tasks.len(), 5 * 9 * 3 * 2);
        assert_eq!(tasks.len(), grid.len());
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.index, i);
        }
        // Flow-major order: the first kernel×tech×variant block is all
        // partitioning.
        assert!(tasks[..9 * 3 * 2].iter().all(|t| t.flow == FlowSpec::Partitioning));
    }

    #[test]
    fn task_seeds_are_distinct_and_coordinate_stable() {
        let grid = SweepGrid::default_grid(true);
        let tasks = grid.tasks();
        let seeds: BTreeSet<u64> = tasks.iter().map(|t| t.seed).collect();
        assert_eq!(seeds.len(), tasks.len(), "seed collision in grid");

        // Seeds are functions of coordinates, not of the expanded list:
        // dropping an entire axis value leaves other tasks' seeds alone.
        let mut narrowed = grid.clone();
        narrowed.flows = vec![FlowSpec::Compression];
        let narrowed_tasks = narrowed.tasks();
        let full_compression: Vec<u64> = tasks
            .iter()
            .filter(|t| t.flow == FlowSpec::Compression)
            .map(|t| t.seed)
            .collect();
        // Compression is flow index 1 in the full grid but 0 in the
        // narrowed grid, so seeds differ — but within each grid they are
        // stable per coordinate, which re-expansion shows:
        assert_eq!(narrowed.tasks(), narrowed_tasks);
        assert_eq!(full_compression.len(), narrowed_tasks.len());
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_every_item() {
        let items: Vec<u64> = (0..500).collect();
        let calls = AtomicUsize::new(0);
        let out = parallel_map(items.clone(), 8, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 3 + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_edge_worker_counts() {
        for workers in [0, 1, 2, 64] {
            let out = parallel_map(vec![10u32, 20, 30], workers, |x| x + 1);
            assert_eq!(out, vec![11, 21, 31], "workers={workers}");
        }
        let empty: Vec<u32> = parallel_map(Vec::new(), 4, |x: u32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_states_partition_the_work() {
        // Each worker folds item count into its local state; the merged
        // states must account for every item exactly once.
        let per_worker = parallel_map_workers(
            (0..300u32).collect::<Vec<_>>(),
            4,
            |x| x,
            |count: &mut u64, _| *count += 1,
        );
        let total: u64 = per_worker.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 300);
        let items: usize = per_worker.iter().map(|(chunk, _)| chunk.len()).sum();
        assert_eq!(items, 300);
    }
}
