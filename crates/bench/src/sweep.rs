//! The parallel experiment sweep engine.
//!
//! A [`SweepGrid`] declares the experiment space — flows × kernels ×
//! technology nodes × configuration variants — and [`run_sweep`] fans the
//! expanded task list across a work-stealing pool of `std::thread`
//! workers. Determinism is the design center: every task's PRNG seed is
//! derived from its *grid coordinates* (via [`SplitMix64::derive`]), never
//! from execution order, so the [JSON-lines report](SweepReport::jsonl)
//! is byte-identical regardless of worker count or interleaving. Timing
//! lives only in the human-facing [`Metrics`] tables, which are allowed
//! to vary run to run.
//!
//! The worker pool itself lives in [`lpmem_util::pool`] (promoted there so
//! the design-space explorer shares it); this module re-exports
//! [`parallel_map`] for its original callers.

use std::time::Instant;

use lpmem_core::flows::{CmpSpec, FaultSpec, FlowSpec, FlowSummary, TechNode, VariantSpec};
use lpmem_isa::Kernel;
pub use lpmem_util::pool::parallel_map;
use lpmem_util::pool::parallel_map_workers;
use lpmem_util::SplitMix64;

use crate::metrics::{JsonObject, Metrics};
use crate::table::Table;

/// The declarative sweep space: the cartesian product of four axes plus a
/// base seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Flow axis.
    pub flows: Vec<FlowSpec>,
    /// Kernel axis: each kernel with the scale to run it at.
    pub kernels: Vec<(Kernel, u32)>,
    /// Technology axis.
    pub techs: Vec<TechNode>,
    /// Configuration-variant axis.
    pub variants: Vec<VariantSpec>,
    /// Reliability axis: fault/protection configurations each grid point
    /// runs under. The default single `FaultSpec::off()` entry reproduces
    /// the pre-fault grid (and its reports) exactly.
    pub faults: Vec<FaultSpec>,
    /// Chip-multiprocessor axis: CMP scenarios each grid point runs
    /// under. The default single `CmpSpec::off()` entry reproduces the
    /// pre-CMP grid (and its reports) exactly.
    pub cmps: Vec<CmpSpec>,
    /// Base seed every task seed is derived from.
    pub base_seed: u64,
}

impl SweepGrid {
    /// The full default grid: every flow × every kernel (at default or
    /// quick scale) × every technology node × the `default` and `tight`
    /// variants.
    pub fn default_grid(quick: bool) -> SweepGrid {
        let scale = |k: Kernel| {
            if quick {
                (k.default_scale() / 4).max(4)
            } else {
                k.default_scale()
            }
        };
        SweepGrid {
            flows: FlowSpec::ALL.to_vec(),
            kernels: Kernel::ALL.iter().map(|&k| (k, scale(k))).collect(),
            techs: TechNode::ALL.to_vec(),
            variants: vec![VariantSpec::default(), VariantSpec::tight()],
            faults: vec![FaultSpec::off()],
            cmps: vec![CmpSpec::off()],
            base_seed: crate::experiments::SEED,
        }
    }

    /// Expands the grid into its task list, in deterministic grid order
    /// (flow-major, then kernel, technology, variant, fault).
    pub fn tasks(&self) -> Vec<SweepTask> {
        let mut out = Vec::with_capacity(self.len());
        let mut index = 0;
        for (fi, &flow) in self.flows.iter().enumerate() {
            for (ki, &(kernel, scale)) in self.kernels.iter().enumerate() {
                for (ti, &tech) in self.techs.iter().enumerate() {
                    for (vi, variant) in self.variants.iter().enumerate() {
                        // Seeds hang off grid coordinates — not off `index`,
                        // so filtering one axis never reseeds another. The
                        // fault and CMP axes deliberately stay out of the
                        // path: every protection and chip topology is
                        // judged on the *same* workload draw, and their
                        // own draws decorrelate through the TAG_FAULT and
                        // TAG_CMP derivation domains.
                        let seed = SplitMix64::derive(
                            self.base_seed,
                            &[fi as u64, ki as u64, ti as u64, vi as u64],
                        );
                        for &fault in &self.faults {
                            for cmp in &self.cmps {
                                out.push(SweepTask {
                                    index,
                                    flow,
                                    kernel,
                                    scale,
                                    tech,
                                    variant: variant.clone(),
                                    fault,
                                    cmp: cmp.clone(),
                                    seed,
                                });
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of tasks the grid expands to.
    pub fn len(&self) -> usize {
        self.flows.len()
            * self.kernels.len()
            * self.techs.len()
            * self.variants.len()
            * self.faults.len()
            * self.cmps.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One grid point, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTask {
    /// Position in grid order (stable result index).
    pub index: usize,
    /// Flow to run.
    pub flow: FlowSpec,
    /// Kernel input.
    pub kernel: Kernel,
    /// Kernel scale.
    pub scale: u32,
    /// Technology node.
    pub tech: TechNode,
    /// Configuration variant.
    pub variant: VariantSpec,
    /// Reliability configuration.
    pub fault: FaultSpec,
    /// Chip-multiprocessor scenario.
    pub cmp: CmpSpec,
    /// Derived per-task seed (a pure function of grid coordinates).
    pub seed: u64,
}

impl SweepTask {
    /// Runs the task's flow.
    fn run(&self) -> Result<FlowSummary, String> {
        self.flow
            .run_with_cmp(
                self.kernel,
                self.scale,
                self.seed,
                self.tech,
                &self.variant,
                &self.fault,
                &self.cmp,
            )
            .map_err(|e| e.to_string())
    }
}

/// The outcome of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskResult {
    /// The task that ran.
    pub task: SweepTask,
    /// The flow summary, or the flow error rendered to text.
    pub outcome: Result<FlowSummary, String>,
    /// Wall time of this task on its worker, in nanoseconds.
    pub wall_ns: u64,
}

impl TaskResult {
    /// One JSON-lines record for this result. Contains only fields that
    /// are a pure function of the grid — never timings — so the full
    /// report is byte-identical at any worker count. Reliability fields
    /// appear only on fault-enabled tasks, keeping default-grid reports
    /// byte-identical to the pre-fault schema.
    pub fn json_line(&self) -> String {
        let mut obj = JsonObject::new()
            .u64("task", self.task.index as u64)
            .str("flow", self.task.flow.name())
            .str("kernel", self.task.kernel.name())
            .u64("scale", u64::from(self.task.scale))
            .str("tech", self.task.tech.name())
            .str("variant", &self.task.variant.name)
            .u64("seed", self.task.seed);
        if self.task.fault.enabled() {
            obj = obj.str("fault", &self.task.fault.label());
        }
        if self.task.cmp.enabled() {
            obj = obj.str("cmp", &self.task.cmp.label());
        }
        match &self.outcome {
            Ok(s) => {
                obj = obj
                    .str("workload", &s.workload)
                    .u64("events", s.events)
                    .f64("baseline_pj", s.baseline.as_pj())
                    .f64("optimized_pj", s.optimized.as_pj())
                    .f64("saving", s.saving());
                if let Some(r) = &s.reliability {
                    obj = obj
                        .u64("injected", r.injected)
                        .u64("masked", r.masked)
                        .u64("detected", r.detected)
                        .u64("corrected", r.corrected)
                        .u64("silent", r.silent);
                }
                if let Some(c) = &s.cmp {
                    obj = obj
                        .u64("cores", u64::from(c.cores))
                        .u64("llc_banks", u64::from(c.llc_banks))
                        .u64("dark_banks", u64::from(c.dark_banks))
                        .u64("llc_lookups", c.llc_lookups)
                        .u64("llc_hits", c.llc_hits)
                        .u64("llc_lines", c.llc_lines)
                        .u64("llc_compressed", c.llc_compressed_lines)
                        .u64("offchip_beats", c.offchip_beats)
                        .u64("cmp_cycles", c.cycles);
                }
                obj.finish()
            }
            Err(e) => obj.str("error", e).finish(),
        }
    }
}

/// A finished sweep: per-task results in grid order plus run metrics.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Results, sorted by task index (grid order).
    pub results: Vec<TaskResult>,
    /// Aggregated run metrics (merged across workers).
    pub metrics: Metrics,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time of the sweep, in nanoseconds.
    pub elapsed_ns: u64,
}

impl SweepReport {
    /// The machine-readable report: one JSON object per task, in grid
    /// order, each line terminated by `\n`. Byte-identical for a given
    /// grid at any worker count.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.json_line());
            out.push('\n');
        }
        out
    }

    /// The human-facing tables: per-flow aggregates and the latency
    /// histogram.
    pub fn tables(&self) -> Vec<Table> {
        vec![
            self.metrics.flow_table(self.elapsed_ns, self.workers),
            self.metrics.latency_table(),
        ]
    }
}

/// Worker count for a sweep: `LPMEM_SWEEP_THREADS` when set (clamped to
/// ≥ 1), otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("LPMEM_SWEEP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs every task of `grid` on `workers` threads and aggregates the
/// report. Results come back in grid order and all result fields except
/// timings are independent of `workers`.
///
/// A task that *panics* (a model bug, not a modeled flow error) does not
/// abort the sweep: the pool isolates it with `catch_unwind` and the
/// report carries a deterministic `panic: …` error record in that task's
/// slot — byte-identical at any worker count, since the record is keyed
/// by the task's grid index, not by which worker hit it.
pub fn run_sweep(grid: &SweepGrid, workers: usize) -> SweepReport {
    let started = Instant::now();
    let tasks = grid.tasks();
    let per_worker = parallel_map_workers(
        tasks,
        workers,
        |task: SweepTask| {
            let t0 = Instant::now();
            let outcome = task.run();
            let wall_ns = t0.elapsed().as_nanos() as u64;
            TaskResult {
                task,
                outcome,
                wall_ns,
            }
        },
        |state: &mut Metrics, result: &TaskResult| {
            state.record(
                result.task.flow.name(),
                result.wall_ns,
                result.outcome.as_ref().ok(),
            );
        },
    );

    let mut results: Vec<TaskResult> = Vec::new();
    let mut metrics = Metrics::new();
    let mut panicked: Vec<lpmem_util::TaskPanic> = Vec::new();
    for (chunk, local, panics) in per_worker {
        results.extend(chunk.into_iter().map(|(_, r)| r));
        metrics.merge(&local);
        panicked.extend(panics);
    }
    // Rebuild a deterministic error record for every poisoned task from
    // its grid coordinates (the expansion is pure, so re-deriving the
    // task is exact). Zero wall time: the measurement died with the task.
    if !panicked.is_empty() {
        let all = grid.tasks();
        for p in panicked {
            let task = all[p.index].clone();
            metrics.record(task.flow.name(), 0, None);
            results.push(TaskResult {
                task,
                outcome: Err(format!("panic: {}", p.message)),
                wall_ns: 0,
            });
        }
    }
    results.sort_by_key(|r| r.task.index);
    SweepReport {
        results,
        metrics,
        workers: workers.max(1),
        elapsed_ns: started.elapsed().as_nanos() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn grid_expansion_covers_the_product_in_order() {
        let grid = SweepGrid::default_grid(true);
        let tasks = grid.tasks();
        assert_eq!(tasks.len(), 5 * 9 * 3 * 2);
        assert_eq!(tasks.len(), grid.len());
        for (i, t) in tasks.iter().enumerate() {
            assert_eq!(t.index, i);
        }
        // Flow-major order: the first kernel×tech×variant block is all
        // partitioning.
        assert!(tasks[..9 * 3 * 2]
            .iter()
            .all(|t| t.flow == FlowSpec::Partitioning));
    }

    #[test]
    fn task_seeds_are_distinct_and_coordinate_stable() {
        let grid = SweepGrid::default_grid(true);
        let tasks = grid.tasks();
        let seeds: BTreeSet<u64> = tasks.iter().map(|t| t.seed).collect();
        assert_eq!(seeds.len(), tasks.len(), "seed collision in grid");

        // Seeds are functions of coordinates, not of the expanded list:
        // dropping an entire axis value leaves other tasks' seeds alone.
        let mut narrowed = grid.clone();
        narrowed.flows = vec![FlowSpec::Compression];
        let narrowed_tasks = narrowed.tasks();
        let full_compression: Vec<u64> = tasks
            .iter()
            .filter(|t| t.flow == FlowSpec::Compression)
            .map(|t| t.seed)
            .collect();
        // Compression is flow index 1 in the full grid but 0 in the
        // narrowed grid, so seeds differ — but within each grid they are
        // stable per coordinate, which re-expansion shows:
        assert_eq!(narrowed.tasks(), narrowed_tasks);
        assert_eq!(full_compression.len(), narrowed_tasks.len());
    }

    #[test]
    fn cmp_axis_expands_innermost_and_keeps_seeds() {
        let mut grid = SweepGrid::default_grid(true);
        grid.flows = vec![FlowSpec::System];
        grid.kernels.truncate(2);
        grid.techs = vec![TechNode::T180];
        grid.variants.truncate(1);
        grid.cmps = vec![CmpSpec::off(), CmpSpec::quad()];
        let tasks = grid.tasks();
        assert_eq!(tasks.len(), grid.len());
        assert_eq!(tasks.len(), 2 * 2);
        // Innermost axis: adjacent tasks differ only in the CMP spec and
        // share the workload seed.
        assert_eq!(tasks[0].seed, tasks[1].seed);
        assert!(!tasks[0].cmp.enabled());
        assert!(tasks[1].cmp.enabled());
        // The JSONL gains the CMP fields only on enabled tasks, and the
        // report bytes are worker-count independent.
        let one = run_sweep(&grid, 1).jsonl();
        let four = run_sweep(&grid, 4).jsonl();
        assert_eq!(one, four);
        let lines: Vec<&str> = one.lines().collect();
        assert!(!lines[0].contains("\"cmp\""));
        assert!(lines[1].contains("\"cmp\":\"c4b8x32w4-zrun-t180+t90-p600\""));
        assert!(lines[1].contains("\"llc_lookups\""));
        assert!(lines[1].contains("\"dark_banks\""));
    }

    #[test]
    fn reexported_parallel_map_still_serves_old_callers() {
        // The pool moved to `lpmem_util::pool`; the `sweep::parallel_map`
        // path must keep working for benches and downstream users.
        let out = parallel_map((0..50u64).collect(), 4, |x| x * 2);
        assert_eq!(out, (0..50u64).map(|x| x * 2).collect::<Vec<_>>());
    }
}
