//! Shared plumbing for the std-only benches.
//!
//! Every bench target under `benches/` is a plain binary (`harness =
//! false`) that measures with [`lpmem_util::bench`] and renders a
//! [`Table`]. No external bench framework, no network, no registry:
//! `cargo bench -p lpmem-bench` works fully offline.
//!
//! Set `LPMEM_BENCH_QUICK=1` for a fast smoke pass (used by CI to check
//! the benches still run without paying for full sampling).

use lpmem_util::bench::{benchmark, format_ns, Measurement, Options};

use crate::table::Table;

/// Sampling options: full by default, smoke-sized when
/// `LPMEM_BENCH_QUICK` is set.
pub fn options() -> Options {
    if std::env::var_os("LPMEM_BENCH_QUICK").is_some() {
        Options::quick()
    } else {
        Options::default()
    }
}

/// A results table with the standard bench header.
pub fn table(id: &'static str, title: impl Into<String>) -> Table {
    Table::new(
        id,
        title,
        "n/a (microbenchmark)",
        vec!["case", "median", "min", "max", "thrpt"],
    )
}

/// Measures `f` and appends a row. `throughput` is the number of
/// `unit`-elements one iteration processes (e.g. events, bytes); pass
/// `None` to report iterations/second instead.
pub fn run_case<R>(
    table: &mut Table,
    opts: &Options,
    name: &str,
    throughput: Option<(u64, &str)>,
    f: impl FnMut() -> R,
) {
    let m = benchmark(name, opts, f);
    table.push_row(measurement_row(&m, throughput));
}

/// One bench case for [`run_cases`]: a named closure with an optional
/// throughput annotation, boxed so a bench binary can build its whole
/// suite up front and hand it to the sweep engine.
pub struct BenchCase {
    /// Row label.
    pub name: String,
    /// `(elements, unit)` one iteration processes; `None` reports
    /// iterations/second.
    pub throughput: Option<(u64, &'static str)>,
    /// The workload to measure.
    pub run: Box<dyn FnMut() + Send>,
}

impl BenchCase {
    /// Builds a case. The closure's return value is black-boxed by the
    /// timer, so `f` can return its result directly.
    pub fn new<R>(
        name: impl Into<String>,
        throughput: Option<(u64, &'static str)>,
        mut f: impl FnMut() -> R + Send + 'static,
    ) -> Self {
        BenchCase {
            name: name.into(),
            throughput,
            run: Box::new(move || {
                lpmem_util::bench::black_box(f());
            }),
        }
    }
}

/// Measures every case through the sweep engine's worker pool and appends
/// the rows in suite order.
///
/// Microbenchmark timing wants an unloaded machine, so this defaults to
/// one worker; set `LPMEM_SWEEP_THREADS` above 1 only for smoke runs
/// where wall-clock matters more than measurement fidelity.
pub fn run_cases(table: &mut Table, opts: &Options, cases: Vec<BenchCase>) {
    let workers = match std::env::var("LPMEM_SWEEP_THREADS") {
        Ok(v) => v.trim().parse::<usize>().map_or(1, |n| n.max(1)),
        Err(_) => 1,
    };
    let rows = crate::sweep::parallel_map(cases, workers, |mut case| {
        let m = benchmark(&case.name, opts, &mut case.run);
        measurement_row(&m, case.throughput)
    });
    for row in rows {
        table.push_row(row);
    }
}

fn measurement_row(m: &Measurement, throughput: Option<(u64, &str)>) -> Vec<String> {
    let thrpt = match throughput {
        Some((elements, unit)) => format_rate(m.elems_per_sec(elements), unit),
        None => format_rate(m.iters_per_sec(), "iter"),
    };
    vec![
        m.name.clone(),
        m.human_median(),
        format_ns(m.min_ns),
        format_ns(m.max_ns),
        thrpt,
    ]
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_pick_sensible_units() {
        assert_eq!(format_rate(2.5e9, "elem"), "2.50 Gelem/s");
        assert_eq!(format_rate(2.5e6, "B"), "2.50 MB/s");
        assert_eq!(format_rate(2.5e3, "iter"), "2.50 Kiter/s");
        assert_eq!(format_rate(12.0, "iter"), "12.0 iter/s");
    }

    #[test]
    fn run_case_appends_well_formed_rows() {
        let mut t = table("B0", "demo");
        let opts = Options::quick();
        run_case(&mut t, &opts, "noop", None, || 1u32 + 1);
        run_case(&mut t, &opts, "bytes", Some((64, "B")), || 1u32 + 1);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0][4].contains("iter/s"));
        assert!(t.rows[1][4].contains("B/s"));
    }

    #[test]
    fn run_cases_keeps_suite_order() {
        let mut t = table("B0", "demo");
        let opts = Options::quick();
        let cases = vec![
            BenchCase::new("first", None, || 1u32 + 1),
            BenchCase::new("second", Some((32, "B")), || 2u32 * 2),
            BenchCase::new("third", None, || 3u32 - 1),
        ];
        run_cases(&mut t, &opts, cases);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], "first");
        assert_eq!(t.rows[1][0], "second");
        assert_eq!(t.rows[2][0], "third");
        assert!(t.rows[1][4].contains("B/s"));
    }
}
