//! Fleet-scale streaming simulation sweep (DESIGN.md §11).
//!
//! ```text
//! fleet                                   # 1M devices, uniform mix
//! fleet --devices 200000 --threads 4      # smaller fleet, fixed workers
//! fleet --mix media --events 512          # population profile / stream length
//! fleet --faults secded --tech t90        # fault-campaign mode (DESIGN.md §12)
//! fleet --jsonl fleet.jsonl               # write the byte-stable report
//! fleet --bench-json BENCH_fleet.json     # write the throughput report
//! fleet --assert-peak-rss-mb 192          # fail if peak RSS exceeds bound
//! fleet --list                            # list mix presets
//! ```
//!
//! Every device streams its events through the online statistics of
//! `lpmem_trace::stream` — no trace is ever materialized — so memory stays
//! bounded by the per-device footprint regardless of fleet size, which
//! `--assert-peak-rss-mb` turns into a hard gate. The JSONL body is a pure
//! function of the spec: byte-identical at any `--threads` value.

use std::io::Write as _;

use lpmem_bench::fleet::{run_fleet, FleetReport, FleetSpec};
use lpmem_bench::sweep::worker_count;
use lpmem_core::flows::{FaultSpec, TechNode};
use lpmem_core::{DeviceArchetype, WorkloadMix};
use lpmem_util::json::JsonObject;

fn fail(msg: &str) -> ! {
    eprintln!("fleet: {msg}");
    std::process::exit(2);
}

/// Peak resident set size of this process in kB (`VmHWM` from
/// `/proc/self/status`), when the platform exposes it.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn bench_json(report: &FleetReport) -> String {
    let faults = report.spec.fault.enabled();
    let mut summary = JsonObject::new()
        .str(
            "schema",
            if faults {
                "lpmem-fault-bench-v1"
            } else {
                "lpmem-fleet-bench-v1"
            },
        )
        .u64("devices", report.spec.devices)
        .u64("events_per_device", report.spec.events_per_device as u64)
        .u64("events", report.total_events())
        .str("mix", report.spec.mix.name())
        .u64("seed", report.spec.base_seed)
        .u64("workers", report.workers as u64)
        .f64("elapsed_s", report.elapsed_ns as f64 / 1e9)
        .f64("devices_per_sec", report.devices_per_sec())
        .f64("events_per_sec", report.events_per_sec());
    if faults {
        let rel = report.total_reliability();
        summary = summary
            .str("faults", &report.spec.fault.label())
            .str("tech", report.spec.tech.name())
            .u64("injected", rel.injected)
            .u64("masked", rel.masked)
            .u64("detected", rel.detected)
            .u64("corrected", rel.corrected)
            .u64("silent", rel.silent)
            .f64(
                "campaigns_per_sec",
                if report.elapsed_ns == 0 {
                    0.0
                } else {
                    report.spec.devices as f64 * 1e9 / report.elapsed_ns as f64
                },
            );
    }
    let summary = summary.finish();
    let classes: Vec<String> = report
        .per_class
        .iter()
        .enumerate()
        .map(|(c, agg)| {
            JsonObject::new()
                .str("class", DeviceArchetype::ALL[c].name())
                .u64("devices", agg.devices)
                .u64("events", agg.events)
                .f64(
                    "mean_stack_distance",
                    agg.dist_sum as f64 / agg.reuses as f64,
                )
                .f64("spatial_locality", agg.near_pairs as f64 / agg.pairs as f64)
                .finish()
        })
        .collect();
    format!(
        "{{\"summary\":{summary},\"classes\":[{}]}}\n",
        classes.join(",")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut spec = FleetSpec::new(WorkloadMix::uniform());
    spec.devices = 1_000_000;
    let mut threads = worker_count();
    let mut jsonl_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut max_rss_mb: Option<u64> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        let parse_u64 = |name: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| fail(&format!("{name} needs an unsigned integer")))
        };
        match arg.as_str() {
            "--devices" => spec.devices = parse_u64("--devices", value("--devices")),
            "--events" => {
                spec.events_per_device = parse_u64("--events", value("--events")) as usize
            }
            "--threads" => threads = parse_u64("--threads", value("--threads")).max(1) as usize,
            "--mix" => {
                let v = value("--mix");
                spec.mix = WorkloadMix::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown mix {v:?} (try --list)")));
            }
            "--seed" => spec.base_seed = parse_u64("--seed", value("--seed")),
            "--shard" => spec.shard_devices = parse_u64("--shard", value("--shard")),
            "--samples" => spec.samples = parse_u64("--samples", value("--samples")) as usize,
            "--ws-window" => {
                spec.ws_window = parse_u64("--ws-window", value("--ws-window")) as usize
            }
            "--faults" => {
                let v = value("--faults");
                spec.fault = FaultSpec::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown fault spec {v:?}")));
            }
            "--tech" => {
                let v = value("--tech");
                spec.tech = TechNode::parse(&v)
                    .unwrap_or_else(|| fail(&format!("unknown tech node {v:?}")));
            }
            "--jsonl" => jsonl_path = Some(value("--jsonl")),
            "--bench-json" => bench_path = Some(value("--bench-json")),
            "--assert-peak-rss-mb" => {
                max_rss_mb = Some(parse_u64(
                    "--assert-peak-rss-mb",
                    value("--assert-peak-rss-mb"),
                ))
            }
            "--list" => {
                println!("mix presets: uniform, embedded, media, chase");
                println!("custom mixes: 5 comma-separated weights in archetype order:");
                for a in DeviceArchetype::ALL {
                    println!("  {}", a.name());
                }
                return;
            }
            _ => fail(&format!("unknown argument {arg:?} (see the module docs)")),
        }
    }

    let report = run_fleet(&spec, threads).unwrap_or_else(|e| fail(&e));

    println!(
        "== fleet: {} devices x {} events, mix {}, {} workers ==",
        spec.devices,
        spec.events_per_device,
        spec.mix.name(),
        report.workers
    );
    println!(
        "  {:<14} {:>9} {:>12} {:>10} {:>10} {:>8}",
        "class", "devices", "events", "mean dist", "spatial", "ws max"
    );
    for (c, agg) in report.per_class.iter().enumerate() {
        let mean_dist = if agg.reuses > 0 {
            agg.dist_sum as f64 / agg.reuses as f64
        } else {
            0.0
        };
        let spatial = if agg.pairs > 0 {
            agg.near_pairs as f64 / agg.pairs as f64
        } else {
            0.0
        };
        println!(
            "  {:<14} {:>9} {:>12} {:>10.1} {:>10.3} {:>8}",
            DeviceArchetype::ALL[c].name(),
            agg.devices,
            agg.events,
            mean_dist,
            spatial,
            agg.ws_max
        );
    }
    if spec.fault.enabled() {
        let rel = report.total_reliability();
        println!(
            "  faults {} at {}: {} injected = {} masked + {} detected + {} corrected + {} silent",
            spec.fault.label(),
            spec.tech.name(),
            rel.injected,
            rel.masked,
            rel.detected,
            rel.corrected,
            rel.silent
        );
    }
    let elapsed_s = report.elapsed_ns as f64 / 1e9;
    println!(
        "  {:.2}s wall: {:.0} devices/sec, {:.2e} events/sec",
        elapsed_s,
        report.devices_per_sec(),
        report.events_per_sec()
    );
    if let Some(kb) = peak_rss_kb() {
        println!("  peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }

    if let Some(path) = jsonl_path {
        match std::fs::write(&path, report.jsonl()) {
            Ok(()) => println!("  jsonl written to {path}"),
            Err(e) => fail(&format!("cannot write {path}: {e}")),
        }
    }
    if let Some(path) = bench_path {
        match std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(bench_json(&report).as_bytes()))
        {
            Ok(()) => println!("  bench report written to {path}"),
            Err(e) => fail(&format!("cannot write {path}: {e}")),
        }
    }
    if let Some(limit_mb) = max_rss_mb {
        match peak_rss_kb() {
            Some(kb) if kb > limit_mb * 1024 => fail(&format!(
                "peak RSS {:.1} MiB exceeds the {limit_mb} MiB bound",
                kb as f64 / 1024.0
            )),
            Some(kb) => println!(
                "  peak-RSS gate passed: {:.1} MiB <= {limit_mb} MiB",
                kb as f64 / 1024.0
            ),
            None => println!("  peak-RSS gate skipped (no /proc/self/status)"),
        }
    }
}
