//! Cores × banks scaling bench for the chip-multiprocessor flow
//! (DESIGN.md §13).
//!
//! ```text
//! cmp-bench                               # full sampling, writes BENCH_cmp.json
//! cmp-bench --quick                       # quick sampling (CI smoke)
//! cmp-bench --json path.json              # report path (default BENCH_cmp.json)
//! cmp-bench --seed 7                      # workload seed
//! ```
//!
//! Every cell runs [`run_cmp`] on the Fir-rooted multi-programmed
//! workload with the headline LLC recipe (32 KiB × 4-way banks, zrun
//! compression, a t180+t90 technology split under a 600 µW budget) at a
//! given core and bank count, reports the scenario's deterministic
//! outcome counters, and times the full flow. The counters are a pure
//! function of the spec — only the timings vary run to run.
//! `LPMEM_BENCH_QUICK=1` implies `--quick`.

use std::io::Write as _;

use lpmem_core::flows::cmp::run_cmp;
use lpmem_core::flows::{CmpSpec, FaultSpec, FlowSummary, LlcCodec, TechNode, VariantSpec};
use lpmem_isa::Kernel;
use lpmem_util::bench::{benchmark, format_ns, Measurement, Options};
use lpmem_util::json::JsonObject;

/// Core counts on the scaling axis.
const CORES: [u32; 4] = [1, 2, 4, 8];
/// Bank counts on the scaling axis.
const BANKS: [u32; 3] = [2, 4, 8];
/// Workload scale every cell runs at (the harness default for Fir).
const SCALE: u32 = 48;

fn fail(msg: &str) -> ! {
    eprintln!("cmp-bench: {msg}");
    std::process::exit(2);
}

/// The headline LLC recipe at a given chip geometry.
fn spec_at(cores: u32, banks: u32) -> CmpSpec {
    CmpSpec {
        cores,
        banks,
        bank_kib: 32,
        ways: 4,
        codec: LlcCodec::Zrun,
        techs: vec![TechNode::T180, TechNode::T90],
        budget_uw: 600,
        ..CmpSpec::off()
    }
}

/// One cell's deterministic outcome plus its timing.
struct Cell {
    spec: CmpSpec,
    summary: FlowSummary,
    timing: Measurement,
}

impl Cell {
    fn to_json(&self) -> String {
        let report = self.summary.cmp.as_ref().expect("CMP runs carry a report");
        JsonObject::new()
            .u64("cores", u64::from(self.spec.cores))
            .u64("banks", u64::from(self.spec.banks))
            .str("spec", &self.spec.label())
            .u64("events", self.summary.events)
            .f64("baseline_pj", self.summary.baseline.as_pj())
            .f64("optimized_pj", self.summary.optimized.as_pj())
            .u64("llc_lookups", report.llc_lookups)
            .u64("llc_hits", report.llc_hits)
            .u64("llc_compressed", report.llc_compressed_lines)
            .u64("offchip_beats", report.offchip_beats)
            .u64("dark_banks", u64::from(report.dark_banks))
            .u64("cmp_cycles", report.cycles)
            .f64("median_ns", self.timing.median_ns)
            .f64(
                "events_per_sec",
                self.timing.elems_per_sec(self.summary.events),
            )
            .finish()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var_os("LPMEM_BENCH_QUICK").is_some();
    let mut json_path = "BENCH_cmp.json".to_owned();
    let mut seed = 2003u64;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--json" => json_path = value("--json"),
            "--seed" => match value("--seed").parse() {
                Ok(s) => seed = s,
                Err(_) => fail("--seed needs an unsigned integer"),
            },
            _ => fail(&format!("unknown argument {arg:?} (see the module docs)")),
        }
    }

    let opts = if quick {
        Options::quick()
    } else {
        Options::default()
    };
    let variant = VariantSpec::default();
    let fault = FaultSpec::off();

    println!(
        "== cmp-bench: {} x {} chips, fir workload at scale {}, seed {} ==",
        CORES.len(),
        BANKS.len(),
        SCALE,
        seed
    );
    println!(
        "  {:<8} {:>6} {:>9} {:>8} {:>9} {:>6} {:>12} {:>11}",
        "chip", "events", "lookups", "beats", "dark", "save%", "median", "events/s"
    );
    let mut cells = Vec::new();
    for cores in CORES {
        for banks in BANKS {
            let spec = spec_at(cores, banks);
            let run = || {
                run_cmp(
                    Kernel::Fir,
                    SCALE,
                    seed,
                    TechNode::T180,
                    &variant,
                    &fault,
                    &spec,
                )
                .unwrap_or_else(|e| fail(&format!("{}: {e}", spec.label())))
            };
            let summary = run();
            let timing = benchmark(&spec.label(), &opts, run);
            let report = summary.cmp.as_ref().expect("CMP runs carry a report");
            let save = 100.0 * (1.0 - summary.optimized.as_pj() / summary.baseline.as_pj());
            println!(
                "  c{:<7} {:>6} {:>9} {:>8} {:>9} {:>5.1} {:>12} {:>11.2e}",
                format!("{cores}b{banks}"),
                summary.events,
                report.llc_lookups,
                report.offchip_beats,
                report.dark_banks,
                save,
                format_ns(timing.median_ns),
                timing.elems_per_sec(summary.events),
            );
            cells.push(Cell {
                spec,
                summary,
                timing,
            });
        }
    }

    let summary = JsonObject::new()
        .str("schema", "lpmem-cmp-bench-v1")
        .u64("seed", seed)
        .str("kernel", Kernel::Fir.name())
        .u64("scale", u64::from(SCALE))
        .u64("cells", cells.len() as u64)
        .finish();
    let rows: Vec<String> = cells.iter().map(Cell::to_json).collect();
    let json = format!("{{\"summary\":{summary},\"cells\":[{}]}}\n", rows.join(","));
    match std::fs::File::create(&json_path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("cmp-bench: wrote {json_path}"),
        Err(e) => fail(&format!("cannot write {json_path}: {e}")),
    }
}
