//! Regenerates every table and figure of the reproduced evaluations.
//!
//! ```text
//! repro             # everything
//! repro all         # everything
//! repro t1 t3       # selected experiments
//! repro --list      # available ids
//! ```

use lpmem_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments: {}", experiments::ALL_IDS.join(" "));
        return;
    }
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    println!("lpmem reproduction harness (seed {})", experiments::SEED);
    println!("targets are the DATE 2003 Session 1B headline claims; see EXPERIMENTS.md\n");
    let mut unknown = Vec::new();
    for id in &ids {
        match experiments::by_id(id) {
            Some(table) => println!("{table}"),
            None => unknown.push(id.clone()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} (try --list)",
            unknown.join(", ")
        );
        std::process::exit(2);
    }
}
