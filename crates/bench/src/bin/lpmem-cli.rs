//! `lpmem-cli` — command-line front end for the lpmem toolchain.
//!
//! ```text
//! lpmem-cli kernels                          list the benchmark kernels
//! lpmem-cli run <kernel> [opts]              run a kernel, print stats
//!     --scale N --seed S --trace FILE        (dump the trace as text)
//! lpmem-cli disasm <kernel> [--scale N]      disassemble a kernel's text
//! lpmem-cli stats <trace.txt>                locality report for a trace
//! lpmem-cli partition <trace.txt> [opts]     the 1B.1 flow on a trace file
//!     --banks K --block BYTES
//! lpmem-cli compress <kernel> [opts]         the 1B.2 flow on a kernel
//!     --scale N --platform vliw|risc --codec diff|zero|fpc
//! lpmem-cli buscode <kernel> [--regions R]   the 1B.3 flow on a kernel
//! ```

use std::process::ExitCode;

use lpmem_compress::{DiffCodec, FpcCodec, LineCodec, ZeroRunCodec};
use lpmem_core::flows::buscoding::run_buscoding;
use lpmem_core::flows::compression::{run_compression_kernel, PlatformKind};
use lpmem_core::flows::partitioning::{run_partitioning, PartitioningConfig};
use lpmem_energy::Technology;
use lpmem_isa::{disassemble, Kernel};
use lpmem_trace::{LocalityReport, Trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print_usage();
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "kernels" => cmd_kernels(),
        "run" => cmd_run(rest),
        "disasm" => cmd_disasm(rest),
        "stats" => cmd_stats(rest),
        "partition" => cmd_partition(rest),
        "compress" => cmd_compress(rest),
        "buscode" => cmd_buscode(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try --help)")),
    }
}

fn print_usage() {
    println!(
        "lpmem-cli — energy-efficient memory-system toolchain\n\n\
         commands:\n  \
         kernels                         list benchmark kernels\n  \
         run <kernel> [--scale N] [--seed S] [--trace FILE]\n  \
         disasm <kernel> [--scale N]\n  \
         stats <trace.txt>\n  \
         partition <trace.txt> [--banks K] [--block BYTES]\n  \
         compress <kernel> [--scale N] [--platform vliw|risc] [--codec diff|zero|fpc]\n  \
         buscode <kernel> [--regions R]"
    );
}

/// Pulls `--name value` out of an argument list.
fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn opt_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match opt(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} expects a number, got `{v}`")),
    }
}

fn kernel_by_name(name: &str) -> Result<Kernel, String> {
    Kernel::ALL
        .iter()
        .copied()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown kernel `{name}` (see `lpmem-cli kernels`)"))
}

fn positional(args: &[String], what: &str) -> Result<String, String> {
    args.iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .ok_or_else(|| format!("missing {what}"))
}

fn cmd_kernels() -> Result<(), String> {
    println!("{:<12} {:>6}  description", "name", "scale");
    for k in Kernel::ALL {
        let desc = match k {
            Kernel::MatMul => "dense integer matrix multiply",
            Kernel::Fir => "FIR filter over a waveform",
            Kernel::Dct8 => "8-point integer DCT over pixel blocks",
            Kernel::Histogram => "256-bin byte histogram",
            Kernel::Crc32 => "table-driven CRC-32",
            Kernel::BubbleSort => "bubble sort of unsigned words",
            Kernel::StrSearch => "naive substring search",
            Kernel::RleEncode => "run-length encoder",
            Kernel::Conv2d => "3x3 integer image convolution",
        };
        println!("{:<12} {:>6}  {desc}", k.name(), k.default_scale());
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let kernel = kernel_by_name(&positional(args, "kernel name")?)?;
    let scale = opt_num(args, "--scale", kernel.default_scale())?;
    let seed = opt_num(args, "--seed", 1u64)?;
    let run = kernel.run(scale, seed).map_err(|e| e.to_string())?;
    let (f, r, w) = run.trace.kind_counts();
    println!(
        "kernel     : {} (scale {scale}, seed {seed})",
        kernel.name()
    );
    println!("instructions: {}", run.steps);
    println!(
        "trace      : {} events ({f} fetches, {r} reads, {w} writes)",
        run.trace.len()
    );
    println!("verified   : yes (output matches the Rust reference)");
    if let Some(path) = opt(args, "--trace") {
        std::fs::write(&path, lpmem_trace::io::to_text(&run.trace))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace written to {path}");
    }
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let kernel = kernel_by_name(&positional(args, "kernel name")?)?;
    let scale = opt_num(args, "--scale", kernel.default_scale())?;
    let program = kernel.program(scale, 1);
    for (i, line) in disassemble(program.entry(), &program.text_words())
        .iter()
        .enumerate()
    {
        println!("{:#07x}  {line}", program.entry() as usize + 4 * i);
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = positional(args, "trace file")?;
    let trace = load_trace(&path)?;
    let report = LocalityReport::from_trace(&trace, 64).map_err(|e| e.to_string())?;
    println!("events             : {}", report.events);
    println!(
        "spatial locality   : {:.1}% (within 64 B)",
        100.0 * report.spatial_locality
    );
    println!(
        "footprint          : {} x 64 B blocks",
        report.footprint_blocks
    );
    match report.mean_stack_distance {
        Some(d) => println!("mean stack distance: {d:.1} blocks"),
        None => println!("mean stack distance: n/a (no reuse)"),
    }
    Ok(())
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let path = positional(args, "trace file")?;
    let trace = load_trace(&path)?;
    let cfg = PartitioningConfig {
        max_banks: opt_num(args, "--banks", 8usize)?,
        block_size: opt_num(args, "--block", 2048u64)?,
        ..Default::default()
    };
    let out =
        run_partitioning(&path, &trace, &cfg, &Technology::tech180()).map_err(|e| e.to_string())?;
    println!("blocks     : {} x {} B", out.blocks, cfg.block_size);
    println!("monolithic : {}", out.monolithic);
    println!(
        "partitioned: {} ({} banks, {:.1}% saved)",
        out.partitioned,
        out.partitioned_banks,
        100.0 * out.partitioning_gain()
    );
    println!(
        "clustered  : {} ({} banks, {:.1}% vs partitioned, {})",
        out.clustered,
        out.clustered_banks,
        100.0 * out.reduction_vs_partitioned(),
        if out.clustering_adopted {
            "adopted"
        } else {
            "not adopted"
        }
    );
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let kernel = kernel_by_name(&positional(args, "kernel name")?)?;
    let scale = opt_num(args, "--scale", kernel.default_scale() * 4)?;
    let platform = match opt(args, "--platform").as_deref() {
        None | Some("vliw") => PlatformKind::VliwLike,
        Some("risc") => PlatformKind::RiscLike,
        Some(other) => return Err(format!("unknown platform `{other}`")),
    };
    let codec: Box<dyn LineCodec> = match opt(args, "--codec").as_deref() {
        None | Some("diff") => Box::new(DiffCodec::new()),
        Some("zero") => Box::new(ZeroRunCodec::new()),
        Some("fpc") => Box::new(FpcCodec::new()),
        Some(other) => return Err(format!("unknown codec `{other}`")),
    };
    let out = run_compression_kernel(kernel, scale, 1, platform, codec.as_ref())
        .map_err(|e| e.to_string())?;
    println!(
        "kernel    : {} (scale {scale}) on {}",
        kernel.name(),
        platform.name()
    );
    println!("codec     : {}", out.codec);
    println!(
        "wb lines  : {} ({} compressed)",
        out.lines, out.compressed_lines
    );
    println!("beats     : {} -> {}", out.raw_beats, out.actual_beats);
    println!("hit ratio : {:.1}%", 100.0 * out.hit_ratio);
    println!("baseline  :\n{}", out.baseline);
    println!("compressed:\n{}", out.compressed);
    println!("saving    : {:.1}%", 100.0 * out.energy_saving());
    Ok(())
}

fn cmd_buscode(args: &[String]) -> Result<(), String> {
    let kernel = kernel_by_name(&positional(args, "kernel name")?)?;
    let regions = opt_num(args, "--regions", 4usize)?;
    let run = kernel
        .run(kernel.default_scale(), 1)
        .map_err(|e| e.to_string())?;
    let out = run_buscoding(kernel.name(), &run.trace, regions, &Technology::tech180())
        .map_err(|e| e.to_string())?;
    println!("kernel     : {} ({} fetches)", kernel.name(), out.fetches);
    println!(
        "raw        : {} transitions ({})",
        out.raw_transitions, out.raw_energy
    );
    println!(
        "encoded    : {} transitions ({}) with {} regions, {} gates",
        out.encoded_transitions, out.encoded_energy, out.regions, out.gates
    );
    println!("bus-invert : {} transitions", out.businvert_transitions);
    println!(
        "reduction  : {:.1}% (bus-invert {:.1}%)",
        100.0 * out.reduction(),
        100.0 * out.businvert_reduction()
    );
    Ok(())
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    lpmem_trace::io::from_text(&text).map_err(|e| e.to_string())
}
