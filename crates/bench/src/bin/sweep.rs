//! Runs a declarative experiment sweep across a worker pool.
//!
//! ```text
//! sweep                                   # full default grid
//! sweep --quick                           # quick scales (CI smoke)
//! sweep --threads 8                       # explicit worker count
//! sweep --flows compression,system        # filter an axis
//! sweep --kernels fir,dct8 --techs t90    # filter more axes
//! sweep --variants tight --seed 7         # variant axis + base seed
//! sweep --faults off,secded,parity        # reliability axis (campaigns)
//! sweep --cmp off,c4b8x32w4-zrun-t180+t90-p600   # CMP scenario axis
//! sweep --jsonl results.jsonl             # machine-readable report
//! sweep --list                            # grid axes and task count
//! ```
//!
//! Worker count comes from `--threads`, else `LPMEM_SWEEP_THREADS`, else
//! the machine's available parallelism. `LPMEM_BENCH_QUICK=1` implies
//! `--quick`. The JSON-lines report is byte-identical for a given grid at
//! any worker count.

use std::io::Write as _;

use lpmem_bench::sweep::{run_sweep, worker_count, SweepGrid};
use lpmem_core::flows::{CmpSpec, FaultSpec, FlowSpec, TechNode, VariantSpec};
use lpmem_isa::Kernel;

fn fail(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}

/// Splits a comma-separated axis filter and parses every element.
fn parse_list<T>(arg: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    arg.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse(s).unwrap_or_else(|| fail(&format!("unknown {what} {s:?}"))))
        .collect()
}

fn parse_kernel(s: &str) -> Option<Kernel> {
    let key = s.trim().to_ascii_lowercase();
    Kernel::ALL.into_iter().find(|k| k.name() == key)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick_env = std::env::var_os("LPMEM_BENCH_QUICK").is_some();
    let mut quick = quick_env;
    let mut threads: Option<usize> = None;
    let mut jsonl_path: Option<String> = None;
    let mut list = false;
    let mut grid = SweepGrid::default_grid(quick_env);

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--quick" | "-q" => {
                quick = true;
                grid.kernels = SweepGrid::default_grid(true).kernels;
            }
            "--threads" | "-t" => match value("--threads").parse::<usize>() {
                Ok(n) if n >= 1 => threads = Some(n),
                _ => fail("--threads needs a positive integer"),
            },
            "--jsonl" => jsonl_path = Some(value("--jsonl")),
            "--seed" => match value("--seed").parse::<u64>() {
                Ok(s) => grid.base_seed = s,
                Err(_) => fail("--seed needs an unsigned integer"),
            },
            "--flows" => grid.flows = parse_list(&value("--flows"), "flow", FlowSpec::parse),
            "--kernels" => {
                let kernels = parse_list(&value("--kernels"), "kernel", parse_kernel);
                let scale = |k: Kernel| {
                    if quick {
                        (k.default_scale() / 4).max(4)
                    } else {
                        k.default_scale()
                    }
                };
                grid.kernels = kernels.into_iter().map(|k| (k, scale(k))).collect();
            }
            "--techs" => grid.techs = parse_list(&value("--techs"), "tech", TechNode::parse),
            "--variants" => {
                grid.variants = parse_list(&value("--variants"), "variant", VariantSpec::parse);
            }
            "--faults" => {
                grid.faults = parse_list(&value("--faults"), "fault spec", FaultSpec::parse);
            }
            "--cmp" => {
                grid.cmps = parse_list(&value("--cmp"), "cmp spec", CmpSpec::parse);
            }
            "--list" | "-l" => list = true,
            other => fail(&format!(
                "unknown argument {other:?} (see src/bin/sweep.rs)"
            )),
        }
    }

    if list {
        println!("flows:    {}", join(grid.flows.iter().map(|f| f.name())));
        println!(
            "kernels:  {}",
            join(
                grid.kernels
                    .iter()
                    .map(|&(k, s)| format!("{}@{s}", k.name()))
            )
        );
        println!("techs:    {}", join(grid.techs.iter().map(|t| t.name())));
        println!(
            "variants: {}",
            join(grid.variants.iter().map(|v| v.name.clone()))
        );
        println!("faults:   {}", join(grid.faults.iter().map(|f| f.label())));
        println!("cmp:      {}", join(grid.cmps.iter().map(|c| c.label())));
        println!("seed:     {}", grid.base_seed);
        println!("tasks:    {}", grid.len());
        return;
    }
    if grid.is_empty() {
        fail("the grid is empty (an axis filter removed every value)");
    }

    let workers = threads.unwrap_or_else(worker_count);
    println!(
        "sweep: {} tasks ({} flows x {} kernels x {} techs x {} variants x {} faults x {} cmp), {} workers{}",
        grid.len(),
        grid.flows.len(),
        grid.kernels.len(),
        grid.techs.len(),
        grid.variants.len(),
        grid.faults.len(),
        grid.cmps.len(),
        workers,
        if quick { ", quick scales" } else { "" },
    );
    let report = run_sweep(&grid, workers);

    if let Some(path) = jsonl_path {
        let jsonl = report.jsonl();
        if path == "-" {
            print!("{jsonl}");
        } else {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
            f.write_all(jsonl.as_bytes())
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!(
                "sweep: wrote {} JSONL records to {path}",
                report.results.len()
            );
        }
    }
    for table in report.tables() {
        print!("{table}");
    }
    if report.metrics.errors > 0 {
        eprintln!("sweep: {} task(s) failed", report.metrics.errors);
        std::process::exit(1);
    }
}

fn join(items: impl Iterator<Item = impl Into<String>>) -> String {
    items.map(Into::into).collect::<Vec<_>>().join(",")
}
