//! Multi-objective design-space exploration: emits the Pareto frontier
//! over (energy, area, cycles) for the cross-flow configuration space.
//!
//! ```text
//! explore                                  # full axes, auto strategy
//! explore --axes small                     # the 32-point DSE-2 space
//! explore --axes cmp                       # + the CMP scenario axis (≥10⁷ points)
//! explore --axes banks,codec               # explore two axes, pin the rest
//! explore --strategy exhaustive            # or evolutionary / auto
//! explore --budget 512 --seed 7            # evaluation budget and seed
//! explore --threads 8                      # worker pool size
//! explore --faults secded                  # fault campaign + 4th objective
//! explore --jsonl frontier.jsonl           # frontier dump ('-' = stdout)
//! explore --list                           # axes and space size
//! ```
//!
//! The search is seeded with the sweep grid's variant embeddings, so no
//! frontier point is ever dominated by a configuration the existing
//! experiments run. Frontier dumps are byte-identical for a given
//! `(--axes, --strategy, --budget, --seed)` at any `--threads` count.

use std::io::Write as _;

use lpmem_bench::sweep::worker_count;
use lpmem_core::flows::{FaultSpec, VariantSpec};
use lpmem_explore::{parse_strategy, DesignPoint, DesignSpace, Evaluator, SearchConfig, Workload};

fn fail(msg: &str) -> ! {
    eprintln!("explore: {msg}");
    std::process::exit(2);
}

/// Builds the space from an `--axes` value: `full`, `small`, or a comma
/// list of axis names — the listed axes keep their full breadth, the rest
/// collapse to the default sweep variant's embedding.
fn parse_axes(arg: &str) -> DesignSpace {
    match arg.trim().to_ascii_lowercase().as_str() {
        "full" => return DesignSpace::full(),
        "small" => return DesignSpace::small(),
        "cmp" => return DesignSpace::cmp(),
        _ => {}
    }
    let full = DesignSpace::cmp();
    let pin = DesignPoint::from_variant(&VariantSpec::default());
    let mut space = DesignSpace {
        banks: vec![pin.banks],
        blocks: vec![pin.block],
        caches: vec![pin.cache],
        codecs: vec![pin.codec],
        buses: vec![pin.bus],
        l0s: vec![pin.l0],
        cmps: vec![None],
    };
    for name in arg.split(',').filter(|s| !s.trim().is_empty()) {
        match name.trim().to_ascii_lowercase().as_str() {
            "banks" => space.banks = full.banks.clone(),
            "block" | "blocks" => space.blocks = full.blocks.clone(),
            "cache" | "caches" => space.caches = full.caches.clone(),
            "codec" | "codecs" => space.codecs = full.codecs.clone(),
            "bus" | "buses" => space.buses = full.buses.clone(),
            "l0" | "l0s" => space.l0s = full.l0s.clone(),
            "cmp" | "cmps" => space.cmps = full.cmps.clone(),
            other => fail(&format!(
                "unknown axis {other:?} (banks, block, cache, codec, bus, l0, cmp, full, small)"
            )),
        }
    }
    space
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut space = DesignSpace::full();
    let mut strategy_name = "auto".to_owned();
    let mut budget = 256usize;
    let mut seed = 2003u64;
    let mut threads: Option<usize> = None;
    let mut jsonl_path: Option<String> = None;
    let mut fault = FaultSpec::off();
    let mut list = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--axes" | "-a" => space = parse_axes(&value("--axes")),
            "--strategy" | "-s" => strategy_name = value("--strategy"),
            "--budget" | "-b" => match value("--budget").parse::<usize>() {
                Ok(n) if n >= 1 => budget = n,
                _ => fail("--budget needs a positive integer"),
            },
            "--seed" => match value("--seed").parse::<u64>() {
                Ok(s) => seed = s,
                Err(_) => fail("--seed needs an unsigned integer"),
            },
            "--threads" | "-t" => match value("--threads").parse::<usize>() {
                Ok(n) if n >= 1 => threads = Some(n),
                _ => fail("--threads needs a positive integer"),
            },
            "--jsonl" => jsonl_path = Some(value("--jsonl")),
            "--faults" | "-f" => {
                let spec = value("--faults");
                fault = FaultSpec::parse(&spec)
                    .unwrap_or_else(|| fail(&format!("unknown fault spec {spec:?}")));
            }
            "--list" | "-l" => list = true,
            other => fail(&format!(
                "unknown argument {other:?} (see src/bin/explore.rs)"
            )),
        }
    }

    if let Err(e) = space.validate() {
        fail(&format!("invalid design space: {e}"));
    }
    if list {
        println!(
            "banks:  {}",
            join(space.banks.iter().map(|b| b.to_string()))
        );
        println!(
            "blocks: {}",
            join(space.blocks.iter().map(|b| b.to_string()))
        );
        println!(
            "caches: {}",
            join(space.caches.iter().map(|c| c.to_string()))
        );
        println!(
            "codecs: {}",
            join(space.codecs.iter().map(|c| c.name().to_owned()))
        );
        println!("buses:  {}", join(space.buses.iter().map(|b| b.name())));
        println!("l0s:    {}", join(space.l0s.iter().map(|b| b.to_string())));
        // The CMP axis can hold over a thousand scenarios: print the
        // count, not the labels.
        let active = space.cmps.iter().filter(|c| c.is_some()).count();
        println!(
            "cmps:   {} scenario(s){}",
            active,
            if space.cmps.contains(&None) {
                " + single-core"
            } else {
                ""
            }
        );
        println!("points: {}", space.len());
        return;
    }

    let strategy = parse_strategy(&strategy_name, &space, budget)
        .unwrap_or_else(|| fail("--strategy must be exhaustive, evolutionary, or auto"));
    let workers = threads.unwrap_or_else(worker_count);
    // Seed the search with the sweep grid's embeddings so the frontier
    // provably covers the configurations the experiments already run.
    let seeds: Vec<DesignPoint> = [VariantSpec::default(), VariantSpec::tight()]
        .iter()
        .map(DesignPoint::from_variant)
        .filter(|p| space.contains(p))
        .collect();
    let cfg = SearchConfig {
        budget,
        seed,
        workers,
        seeds,
    };

    println!(
        "explore: {} of {} points, {} search, seed {}, {} workers{}",
        budget.min(space.len()),
        space.len(),
        strategy.name(),
        seed,
        workers,
        if fault.enabled() {
            format!(", faults {}", fault.label())
        } else {
            String::new()
        },
    );
    let workload = Workload::default();
    let evaluator =
        Evaluator::with_faults(workload, fault).unwrap_or_else(|e| fail(&format!("workload: {e}")));
    let out = strategy
        .search(&space, &evaluator, &cfg)
        .unwrap_or_else(|e| fail(&format!("search failed: {e}")));

    println!(
        "explore: {} evaluated, {} on the frontier",
        out.evaluated,
        out.frontier.len()
    );
    if fault.enabled() {
        println!(
            "{:<42} {:>14} {:>10} {:>10} {:>8}",
            "key", "energy_pj", "area_mm2", "cycles", "silent"
        );
    } else {
        println!(
            "{:<42} {:>14} {:>10} {:>10}",
            "key", "energy_pj", "area_mm2", "cycles"
        );
    }
    for p in out.frontier.points() {
        if fault.enabled() {
            println!(
                "{:<42} {:>14.1} {:>10.4} {:>10} {:>8}",
                p.point.key(),
                p.objectives.energy_pj,
                p.objectives.area_mm2,
                p.objectives.cycles,
                p.objectives.silent
            );
        } else {
            println!(
                "{:<42} {:>14.1} {:>10.4} {:>10}",
                p.point.key(),
                p.objectives.energy_pj,
                p.objectives.area_mm2,
                p.objectives.cycles
            );
        }
    }

    if let Some(path) = jsonl_path {
        let jsonl = out.frontier.to_jsonl();
        if path == "-" {
            print!("{jsonl}");
        } else {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
            f.write_all(jsonl.as_bytes())
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!(
                "explore: wrote {} frontier rows to {path}",
                out.frontier.len()
            );
        }
    }
}

fn join(items: impl Iterator<Item = impl Into<String>>) -> String {
    items.map(Into::into).collect::<Vec<_>>().join(",")
}
