//! Differential smoke test and per-kernel throughput bench for the two
//! TinyRISC execution backends (DESIGN.md §10).
//!
//! ```text
//! isa-bench                               # smoke + bench, writes BENCH_isa.json
//! isa-bench --quick                       # quick sampling (CI smoke)
//! isa-bench --json path.json              # report path (default BENCH_isa.json)
//! isa-bench --check-speedup 5             # fail unless geomean speedup >= 5
//! isa-bench --seed 7 --kernels fir,dct8   # input seed / kernel filter
//! ```
//!
//! Every invocation first runs the **differential smoke**: each kernel
//! executes on both backends and the run is rejected unless the traces
//! are byte-identical (and steps/registers agree) — only then is anything
//! timed. `LPMEM_BENCH_QUICK=1` implies `--quick`. The `--check-speedup`
//! gate is skipped on single-CPU machines (or when
//! `LPMEM_SKIP_TIMING_GATE=1`), where wall-clock ratios are unreliable.

use std::io::Write as _;

use lpmem_isa::{Backend, Kernel, Machine, Reg};
use lpmem_util::bench::{benchmark_paired, format_ns, Measurement, Options, PairedMeasurement};
use lpmem_util::json::JsonObject;

/// The kernel library's step budget (`lpmem_isa::kernels::MAX_STEPS`).
const MAX_STEPS: u64 = 50_000_000;

fn fail(msg: &str) -> ! {
    eprintln!("isa-bench: {msg}");
    std::process::exit(2);
}

fn parse_kernel(s: &str) -> Option<Kernel> {
    let key = s.trim().to_ascii_lowercase();
    Kernel::ALL.into_iter().find(|k| k.name() == key)
}

/// One kernel's smoke + timing result.
struct KernelReport {
    kernel: Kernel,
    scale: u32,
    instret: u64,
    interp: Measurement,
    compiled: Measurement,
    /// Median of per-sample interp/compiled time ratios (drift-immune;
    /// see [`PairedMeasurement`]).
    speedup: f64,
}

impl KernelReport {
    fn mips(&self, m: &Measurement) -> f64 {
        self.instret as f64 / m.median_ns * 1e3
    }

    fn to_json(&self) -> String {
        JsonObject::new()
            .str("kernel", self.kernel.name())
            .u64("scale", u64::from(self.scale))
            .u64("instret", self.instret)
            .f64("interp_ns", self.interp.median_ns)
            .f64("interp_mips", self.mips(&self.interp))
            .f64("compiled_ns", self.compiled.median_ns)
            .f64("compiled_mips", self.mips(&self.compiled))
            .f64("speedup", self.speedup)
            .finish()
    }
}

/// Runs the kernel on both backends, asserts byte-identical behaviour,
/// and returns the instruction count.
fn differential_smoke(kernel: Kernel, scale: u32, seed: u64) -> u64 {
    let program = kernel.program(scale, seed);
    let mut interp = Machine::new(&program);
    let interp_run = interp
        .run(MAX_STEPS)
        .unwrap_or_else(|e| fail(&format!("{}: interpreter failed: {e}", kernel.name())));
    let mut compiled = Machine::new(&program);
    let compiled_run = compiled
        .run_with(Backend::Compiled, MAX_STEPS)
        .unwrap_or_else(|e| fail(&format!("{}: compiled backend failed: {e}", kernel.name())));
    if compiled_run.steps != interp_run.steps {
        fail(&format!(
            "{}: step divergence: interp {} vs compiled {}",
            kernel.name(),
            interp_run.steps,
            compiled_run.steps
        ));
    }
    if compiled_run.trace != interp_run.trace {
        fail(&format!(
            "{}: trace divergence over {} events",
            kernel.name(),
            interp_run.trace.len()
        ));
    }
    for i in 0..16u8 {
        let r = Reg::new(i).unwrap_or_else(|| fail("register index"));
        if compiled.reg(r) != interp.reg(r) {
            fail(&format!("{}: register r{i} diverged", kernel.name()));
        }
    }
    // The kernel library's own verification (machine vs Rust reference).
    kernel
        .run_with(Backend::Compiled, scale, seed)
        .unwrap_or_else(|e| fail(&format!("{}: verified run failed: {e}", kernel.name())));
    interp_run.steps
}

/// Times both backends with paired samples so machine-load drift cancels
/// out of the speedup ratio.
fn time_backends(kernel: Kernel, scale: u32, seed: u64, opts: &Options) -> PairedMeasurement {
    let program = kernel.program(scale, seed);
    let run = |backend: Backend| {
        let program = program.clone();
        move || {
            let mut m = Machine::new(&program);
            m.run_with(backend, MAX_STEPS)
                .unwrap_or_else(|e| fail(&format!("{}: {e}", kernel.name())))
                .steps
        }
    };
    benchmark_paired(
        &format!("{}/{}", kernel.name(), Backend::Interpret.name()),
        &format!("{}/{}", kernel.name(), Backend::Compiled.name()),
        opts,
        run(Backend::Interpret),
        run(Backend::Compiled),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = std::env::var_os("LPMEM_BENCH_QUICK").is_some();
    let mut json_path = String::from("BENCH_isa.json");
    let mut min_speedup: Option<f64> = None;
    let mut seed: u64 = 2003;
    let mut kernels: Vec<Kernel> = Kernel::ALL.to_vec();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .cloned()
                .unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--json" => json_path = value("--json"),
            "--check-speedup" => match value("--check-speedup").parse::<f64>() {
                Ok(x) if x > 0.0 => min_speedup = Some(x),
                _ => fail("--check-speedup needs a positive number"),
            },
            "--seed" => match value("--seed").parse::<u64>() {
                Ok(s) => seed = s,
                Err(_) => fail("--seed needs an unsigned integer"),
            },
            "--kernels" => {
                kernels = value("--kernels")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| {
                        parse_kernel(s).unwrap_or_else(|| fail(&format!("unknown kernel {s:?}")))
                    })
                    .collect();
            }
            _ => fail(&format!("unknown argument {arg:?} (see the module docs)")),
        }
    }

    let opts = if quick {
        Options::quick()
    } else {
        // Kernel runs are milliseconds each; moderate sampling keeps the
        // full suite under a minute while staying stable.
        Options {
            warmup_ns: 50_000_000,
            samples: 9,
            sample_ns: 25_000_000,
        }
    };

    println!("== differential smoke: compiled vs interpreter ==");
    let mut reports: Vec<KernelReport> = Vec::new();
    for &kernel in &kernels {
        let scale = kernel.default_scale();
        let instret = differential_smoke(kernel, scale, seed);
        println!(
            "  {:<10} scale {:<4} instret {:>9}  traces byte-identical",
            kernel.name(),
            scale,
            instret
        );
        let paired = time_backends(kernel, scale, seed, &opts);
        reports.push(KernelReport {
            kernel,
            scale,
            instret,
            interp: paired.a,
            compiled: paired.b,
            speedup: paired.ratio,
        });
    }

    println!("\n== throughput (median of {} samples) ==", opts.samples);
    println!(
        "  {:<10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "kernel", "instret", "interp", "interp MIPS", "compiled", "comp MIPS", "speedup"
    );
    for r in &reports {
        println!(
            "  {:<10} {:>10} {:>12} {:>12.1} {:>12} {:>12.1} {:>7.2}x",
            r.kernel.name(),
            r.instret,
            format_ns(r.interp.median_ns),
            r.mips(&r.interp),
            format_ns(r.compiled.median_ns),
            r.mips(&r.compiled),
            r.speedup
        );
    }
    let geomean =
        (reports.iter().map(|r| r.speedup.ln()).sum::<f64>() / reports.len() as f64).exp();
    println!("  geomean speedup: {geomean:.2}x");

    let body: Vec<String> = reports.iter().map(KernelReport::to_json).collect();
    let summary = JsonObject::new()
        .str("schema", "lpmem-isa-bench-v1")
        .u64("seed", seed)
        .u64("kernels", reports.len() as u64)
        .f64("geomean_speedup", geomean)
        .finish();
    let report = format!(
        "{{\"summary\":{summary},\"kernels\":[{}]}}\n",
        body.join(",")
    );
    match std::fs::File::create(&json_path).and_then(|mut f| f.write_all(report.as_bytes())) {
        Ok(()) => println!("  report written to {json_path}"),
        Err(e) => fail(&format!("cannot write {json_path}: {e}")),
    }

    if let Some(min) = min_speedup {
        let single_cpu = std::thread::available_parallelism()
            .map(|n| n.get() <= 1)
            .unwrap_or(true);
        if single_cpu || std::env::var_os("LPMEM_SKIP_TIMING_GATE").is_some() {
            println!("  timing gate skipped (single CPU or LPMEM_SKIP_TIMING_GATE)");
        } else if geomean < min {
            fail(&format!(
                "geomean speedup {geomean:.2}x is below the required {min:.2}x"
            ));
        } else {
            println!("  timing gate passed: {geomean:.2}x >= {min:.2}x");
        }
    }
}
