//! Run metrics for the sweep engine: per-flow aggregates and a
//! fixed-bucket latency histogram. The JSON serializer the report is built
//! with lives in [`lpmem_util::json`] and is re-exported here for its
//! original callers.
//!
//! Workers record into their own [`Metrics`] while they drain the queue;
//! the engine [merges](Metrics::merge) them afterwards. Every counter is
//! defined so that merging worker-local metrics in any grouping yields the
//! same integer fields as a single-threaded aggregate (energy sums are
//! floating-point and agree to rounding) — the property suite pins this.

use std::collections::BTreeMap;

use lpmem_core::flows::FlowSummary;
pub use lpmem_util::json::JsonObject;

use crate::table::Table;

/// Upper bounds (exclusive, in nanoseconds) of the latency buckets; the
/// last bucket is open-ended. A 1–3–10 ladder from 0.1 ms to 100 ms —
/// fixed so histograms from different runs and workers are always
/// mergeable bucket-by-bucket.
pub const BUCKET_BOUNDS_NS: [u64; 7] = [
    100_000,     // < 0.1 ms
    300_000,     // < 0.3 ms
    1_000_000,   // < 1 ms
    3_000_000,   // < 3 ms
    10_000_000,  // < 10 ms
    30_000_000,  // < 30 ms
    100_000_000, // < 100 ms
];

/// Number of histogram buckets (the bounds plus the open-ended tail).
pub const NUM_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket histogram of per-task wall times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; NUM_BUCKETS],
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket index a latency falls into.
    pub fn bucket_of(ns: u64) -> usize {
        BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns < b)
            .unwrap_or(NUM_BUCKETS - 1)
    }

    /// Human-readable label of a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= NUM_BUCKETS`.
    pub fn label(bucket: usize) -> String {
        assert!(bucket < NUM_BUCKETS, "bucket {bucket} out of range");
        let ms = |ns: u64| {
            let v = ns as f64 / 1e6;
            if v < 1.0 {
                format!("{v:.1}ms")
            } else {
                format!("{v:.0}ms")
            }
        };
        if bucket < BUCKET_BOUNDS_NS.len() {
            format!("<{}", ms(BUCKET_BOUNDS_NS[bucket]))
        } else {
            format!(
                ">={}",
                ms(*BUCKET_BOUNDS_NS.last().expect("non-empty bounds"))
            )
        }
    }

    /// Records one task latency.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Total recorded tasks.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Aggregates for one flow across every task the sweep ran for it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowMetrics {
    /// Tasks completed (including failed ones).
    pub tasks: u64,
    /// Tasks whose flow returned an error.
    pub errors: u64,
    /// Summed wall time of this flow's tasks, in nanoseconds.
    pub wall_ns: u64,
    /// Summed baseline energy in pJ.
    pub baseline_pj: f64,
    /// Summed optimized energy in pJ.
    pub optimized_pj: f64,
}

impl FlowMetrics {
    /// Aggregate fractional saving over all this flow's tasks.
    pub fn saving(&self) -> f64 {
        if self.baseline_pj == 0.0 {
            0.0
        } else {
            1.0 - self.optimized_pj / self.baseline_pj
        }
    }
}

/// The sweep's run metrics: task counts, per-flow aggregates, summed busy
/// time, and the task-latency histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Tasks completed.
    pub tasks: u64,
    /// Tasks whose flow errored.
    pub errors: u64,
    /// Summed per-task wall time across all workers ("CPU busy" time),
    /// in nanoseconds.
    pub busy_ns: u64,
    /// Per-flow aggregates, keyed by flow name.
    pub per_flow: BTreeMap<String, FlowMetrics>,
    /// Task-latency histogram.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished task: its flow, wall time, and outcome
    /// (`None` when the flow errored).
    pub fn record(&mut self, flow: &str, wall_ns: u64, outcome: Option<&FlowSummary>) {
        self.tasks += 1;
        self.busy_ns += wall_ns;
        self.latency.record(wall_ns);
        let fm = self.per_flow.entry(flow.to_owned()).or_default();
        fm.tasks += 1;
        fm.wall_ns += wall_ns;
        match outcome {
            Some(s) => {
                fm.baseline_pj += s.baseline.as_pj();
                fm.optimized_pj += s.optimized.as_pj();
            }
            None => {
                self.errors += 1;
                fm.errors += 1;
            }
        }
    }

    /// Merges another worker's metrics into this one.
    pub fn merge(&mut self, other: &Metrics) {
        self.tasks += other.tasks;
        self.errors += other.errors;
        self.busy_ns += other.busy_ns;
        self.latency.merge(&other.latency);
        for (flow, fm) in &other.per_flow {
            let mine = self.per_flow.entry(flow.clone()).or_default();
            mine.tasks += fm.tasks;
            mine.errors += fm.errors;
            mine.wall_ns += fm.wall_ns;
            mine.baseline_pj += fm.baseline_pj;
            mine.optimized_pj += fm.optimized_pj;
        }
    }

    /// Renders the per-flow aggregate table (the sweep's headline output).
    pub fn flow_table(&self, elapsed_ns: u64, workers: usize) -> Table {
        let mut t = Table::new(
            "SWEEP",
            format!("sweep run metrics ({workers} workers)"),
            "n/a (run instrumentation)",
            vec![
                "flow",
                "tasks",
                "errors",
                "busy",
                "avg task",
                "energy saved",
                "saving",
            ],
        );
        for (flow, fm) in &self.per_flow {
            let avg_ns = if fm.tasks == 0 {
                0.0
            } else {
                fm.wall_ns as f64 / fm.tasks as f64
            };
            let saved = lpmem_energy::Energy::from_pj(fm.baseline_pj - fm.optimized_pj);
            t.push_row(vec![
                flow.clone(),
                fm.tasks.to_string(),
                fm.errors.to_string(),
                format_ms(fm.wall_ns),
                format_ms(avg_ns as u64),
                saved.to_string(),
                format!("{:.1}%", 100.0 * fm.saving()),
            ]);
        }
        let elapsed_s = elapsed_ns as f64 / 1e9;
        let busy_s = self.busy_ns as f64 / 1e9;
        let speedup = if elapsed_s > 0.0 {
            busy_s / elapsed_s
        } else {
            0.0
        };
        t.note(format!(
            "{} tasks ({} errors) | wall {:.2} s | busy {:.2} s | parallel speedup {:.2}x",
            self.tasks, self.errors, elapsed_s, busy_s, speedup
        ));
        t
    }

    /// Renders the latency histogram as a table.
    pub fn latency_table(&self) -> Table {
        let mut t = Table::new(
            "SWEEP-LAT",
            "task latency histogram",
            "n/a (run instrumentation)",
            vec!["bucket", "tasks", "share"],
        );
        let total = self.latency.total().max(1);
        for (i, &count) in self.latency.counts().iter().enumerate() {
            t.push_row(vec![
                LatencyHistogram::label(i),
                count.to_string(),
                format!("{:.1}%", 100.0 * count as f64 / total as f64),
            ]);
        }
        t
    }
}

fn format_ms(ns: u64) -> String {
    let ms = ns as f64 / 1e6;
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else {
        format!("{ms:.1} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_core::flows::FlowSpec;
    use lpmem_energy::Energy;
    use lpmem_util::Props;

    fn summary(flow: FlowSpec, baseline_pj: f64, optimized_pj: f64) -> FlowSummary {
        FlowSummary {
            flow,
            workload: "w".into(),
            baseline: Energy::from_pj(baseline_pj),
            optimized: Energy::from_pj(optimized_pj),
            events: 1,
            reliability: None,
            cmp: None,
        }
    }

    #[test]
    fn bucket_bounds_are_sorted_and_cover_everything() {
        assert!(BUCKET_BOUNDS_NS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(99_999), 0);
        assert_eq!(LatencyHistogram::bucket_of(100_000), 1);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), NUM_BUCKETS - 1);
        for i in 0..NUM_BUCKETS {
            assert!(!LatencyHistogram::label(i).is_empty());
        }
    }

    #[test]
    fn record_tracks_errors_and_flows() {
        let mut m = Metrics::new();
        let s = summary(FlowSpec::Partitioning, 100.0, 75.0);
        m.record("partitioning", 1_000, Some(&s));
        m.record("partitioning", 2_000, None);
        m.record(
            "buscoding",
            500,
            Some(&summary(FlowSpec::BusCoding, 10.0, 5.0)),
        );
        assert_eq!(m.tasks, 3);
        assert_eq!(m.errors, 1);
        assert_eq!(m.busy_ns, 3_500);
        assert_eq!(m.latency.total(), 3);
        let p = &m.per_flow["partitioning"];
        assert_eq!((p.tasks, p.errors), (2, 1));
        assert!((p.saving() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tables_render_all_flows_and_buckets() {
        let mut m = Metrics::new();
        m.record(
            "system",
            50_000_000,
            Some(&summary(FlowSpec::System, 4.0, 3.0)),
        );
        let ft = m.flow_table(100_000_000, 2);
        assert_eq!(ft.rows.len(), 1);
        assert!(ft.to_string().contains("system"));
        let lt = m.latency_table();
        assert_eq!(lt.rows.len(), NUM_BUCKETS);
        let counted: u64 = lt.column_f64(1).iter().map(|&v| v as u64).sum();
        assert_eq!(counted, 1);
    }

    // Property: histogram bucket counts always sum to the task count, for
    // any latency stream.
    #[test]
    fn prop_histogram_counts_sum_to_task_count() {
        Props::new("histogram sums to task count")
            .cases(128)
            .run(|rng| {
                let mut m = Metrics::new();
                let n = rng.gen_range(0..200usize);
                for _ in 0..n {
                    // Latencies spanning every bucket, ns to minutes.
                    let ns = rng.gen_range(0..200_000_000_000u64);
                    let ok = rng.gen_bool(0.9);
                    let s = summary(FlowSpec::Compression, 2.0, 1.0);
                    m.record("compression", ns, if ok { Some(&s) } else { None });
                }
                assert_eq!(m.latency.total(), n as u64);
                assert_eq!(m.tasks, n as u64);
                let per_flow_tasks: u64 = m.per_flow.values().map(|f| f.tasks).sum();
                assert_eq!(per_flow_tasks, n as u64);
            });
    }

    // Property: merging worker-local metrics equals the single-threaded
    // aggregate — exact on every integer field, to rounding on the energy
    // sums — for any split of the task stream across any worker count.
    #[test]
    fn prop_merged_worker_metrics_equal_single_threaded_aggregate() {
        const FLOWS: [&str; 3] = ["partitioning", "compression", "system"];
        Props::new("metrics merge equals aggregate")
            .cases(96)
            .run(|rng| {
                let n = rng.gen_range(1..120usize);
                let workers = rng.gen_range(1..9usize);
                let events: Vec<(usize, u64, bool, f64, f64)> = (0..n)
                    .map(|_| {
                        (
                            rng.gen_range(0..FLOWS.len()),
                            rng.gen_range(0..50_000_000u64),
                            rng.gen_bool(0.85),
                            rng.gen_f64() * 1e6,
                            rng.gen_f64() * 1e6,
                        )
                    })
                    .collect();

                let mut aggregate = Metrics::new();
                let mut locals = vec![Metrics::new(); workers];
                for (i, &(f, ns, ok, base, opt)) in events.iter().enumerate() {
                    let s = summary(FlowSpec::Partitioning, base, opt);
                    let outcome = if ok { Some(&s) } else { None };
                    aggregate.record(FLOWS[f], ns, outcome);
                    // Any assignment of tasks to workers must merge to the same
                    // totals; use a rotating assignment perturbed by the rng.
                    let w = (i + rng.gen_range(0..workers)) % workers;
                    locals[w].record(FLOWS[f], ns, outcome);
                }
                let mut merged = Metrics::new();
                for local in &locals {
                    merged.merge(local);
                }
                assert_eq!(merged.tasks, aggregate.tasks);
                assert_eq!(merged.errors, aggregate.errors);
                assert_eq!(merged.busy_ns, aggregate.busy_ns);
                assert_eq!(merged.latency, aggregate.latency);
                assert_eq!(
                    merged.per_flow.keys().collect::<Vec<_>>(),
                    aggregate.per_flow.keys().collect::<Vec<_>>()
                );
                for (flow, fm) in &merged.per_flow {
                    let afm = &aggregate.per_flow[flow];
                    assert_eq!(fm.tasks, afm.tasks, "{flow}");
                    assert_eq!(fm.errors, afm.errors, "{flow}");
                    assert_eq!(fm.wall_ns, afm.wall_ns, "{flow}");
                    let tol = 1e-9 * afm.baseline_pj.abs().max(1.0);
                    assert!((fm.baseline_pj - afm.baseline_pj).abs() < tol, "{flow}");
                    assert!((fm.optimized_pj - afm.optimized_pj).abs() < tol, "{flow}");
                }
            });
    }

    #[test]
    fn json_escapes_and_formats_deterministically() {
        let line = JsonObject::new()
            .str("name", "he said \"hi\"\n\\end\t")
            .u64("count", 42)
            .f64("pi", 3.25)
            .f64("bad", f64::NAN)
            .finish();
        assert_eq!(
            line,
            r#"{"name":"he said \"hi\"\n\\end\t","count":42,"pi":3.25,"bad":null}"#
        );
        // Control characters get \u escapes.
        let ctl = JsonObject::new().str("c", "\u{1}").finish();
        assert_eq!(ctl, "{\"c\":\"\\u0001\"}");
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
