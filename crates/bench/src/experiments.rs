//! One function per reproduced table/figure (ids match `DESIGN.md` §2).

use std::time::Instant;

use lpmem_cluster::{cluster_blocks, ClusterConfig, Objective};
use lpmem_compress::{analyze_writebacks, DiffCodec, FpcCodec, LineCodec, ZeroRunCodec};
use lpmem_core::flows::buscoding::run_buscoding;
use lpmem_core::flows::compression::{
    run_compression_kernel, run_compression_trace, CompressionConfig, PlatformKind,
};
use lpmem_core::flows::partitioning::{
    run_partitioning, run_partitioning_sleep, PartitioningConfig,
};
use lpmem_core::flows::scheduling::{default_platform, dsp_pipeline_app, run_scheduling};
use lpmem_core::flows::system::run_system;
use lpmem_core::workloads::{composite_suite, kernel_trace_and_image, scattered_suite};
use lpmem_energy::Technology;
use lpmem_isa::Kernel;
use lpmem_mem::{Cache, RecordingBacking};
use lpmem_partition::{greedy_partition, optimal_partition, Partition, PartitionCost};
use lpmem_sched::SchedPlatform;
use lpmem_trace::{AccessKind, BlockProfile, Trace};

use crate::Table;

/// Seed shared by all experiments (results are fully deterministic).
pub const SEED: u64 = 2003;

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// T1 workloads: composite embedded applications (kernel phases with a
/// linker-interleaved object layout) plus the scattered synthetic
/// profiles — the workload class of the 1B.1 evaluation.
fn t1_workloads() -> Vec<(String, Trace)> {
    let mut out = composite_suite(SEED).expect("kernels are self-verifying");
    out.extend(scattered_suite(SEED));
    out
}

/// Kernel scales used by the compression experiments: large enough that
/// the working set exceeds the 4 KiB D-cache and produces capacity
/// write-back traffic (the regime the 1B.2 paper evaluates).
fn t2_kernels() -> Vec<(Kernel, u32)> {
    vec![
        (Kernel::MatMul, 24),
        (Kernel::Fir, 640),
        (Kernel::Dct8, 160),
        (Kernel::Histogram, 320),
        (Kernel::BubbleSort, 512),
        (Kernel::RleEncode, 320),
        (Kernel::Conv2d, 48),
    ]
}

/// **T1** — 1B.1 headline: energy of monolithic vs. partitioned vs.
/// partitioned-with-clustering data memory.
pub fn t1() -> Table {
    let tech = Technology::tech180();
    let cfg = PartitioningConfig::default();
    let mut table = Table::new(
        "T1",
        "memory partitioning with address clustering (0.18um, <=8 banks, 2 KiB blocks)",
        "avg 25% (max 57%) energy reduction vs partitioning without clustering",
        vec![
            "workload",
            "monolithic",
            "partitioned",
            "clustered",
            "banks",
            "reduction",
        ],
    );
    let mut reductions = Vec::new();
    for (name, trace) in t1_workloads() {
        let out = run_partitioning(&name, &trace, &cfg, &tech).expect("flow");
        reductions.push(out.reduction_vs_partitioned());
        table.push_row(vec![
            name,
            out.monolithic.to_string(),
            out.partitioned.to_string(),
            out.clustered.to_string(),
            format!("{}", out.clustered_banks),
            pct(out.reduction_vs_partitioned()),
        ]);
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().cloned().fold(0.0, f64::max);
    table.note(format!(
        "average reduction {} | maximum {}",
        pct(avg),
        pct(max)
    ));
    table
}

/// **F1a** — energy vs. maximum bank count, with and without clustering.
pub fn f1a() -> Table {
    let tech = Technology::tech180();
    let mut table = Table::new(
        "F1a",
        "energy vs max bank count (scatter-medium workload)",
        "partitioning saturates with bank count; clustering shifts the whole curve down",
        vec!["max_banks", "partitioned", "clustered", "reduction"],
    );
    let (_, trace) = scattered_suite(SEED).remove(1);
    for max_banks in [1usize, 2, 4, 6, 8, 12, 16] {
        let cfg = PartitioningConfig {
            max_banks,
            ..Default::default()
        };
        let out = run_partitioning("scatter-medium", &trace, &cfg, &tech).expect("flow");
        table.push_row(vec![
            max_banks.to_string(),
            out.partitioned.to_string(),
            out.clustered.to_string(),
            pct(out.reduction_vs_partitioned()),
        ]);
    }
    table
}

/// **F1b** — clustering gain vs. profile block granularity.
pub fn f1b() -> Table {
    let tech = Technology::tech180();
    let mut table = Table::new(
        "F1b",
        "clustering gain vs block granularity (scatter-medium workload)",
        "finer blocks expose more scatter for clustering, until table overhead bites",
        vec![
            "block_bytes",
            "blocks",
            "partitioned",
            "clustered",
            "reduction",
        ],
    );
    let (_, trace) = scattered_suite(SEED).remove(1);
    for block_size in [256u64, 512, 1024, 2048, 4096, 8192, 16384] {
        let cfg = PartitioningConfig {
            block_size,
            ..Default::default()
        };
        let out = run_partitioning("scatter-medium", &trace, &cfg, &tech).expect("flow");
        table.push_row(vec![
            block_size.to_string(),
            out.blocks.to_string(),
            out.partitioned.to_string(),
            out.clustered.to_string(),
            pct(out.reduction_vs_partitioned()),
        ]);
    }
    table
}

/// **T2** — 1B.2 headline: total memory-system energy saving from
/// write-back compression on the two platform presets.
pub fn t2() -> Table {
    let mut table = Table::new(
        "T2",
        "write-back data compression (diff codec, 4 KiB write-back D-cache)",
        "energy savings 10-22% on the VLIW (Lx) platform, 11-14% on the RISC (MIPS) platform",
        vec![
            "workload",
            "platform",
            "wb lines",
            "compressed",
            "beats raw",
            "beats",
            "saving",
        ],
    );
    let mut per_platform: Vec<(String, Vec<f64>)> = vec![
        ("vliw-lx".to_owned(), Vec::new()),
        ("risc-mips".to_owned(), Vec::new()),
    ];
    let codec = DiffCodec::new();
    for (kernel, scale) in t2_kernels() {
        for (pi, platform) in [PlatformKind::VliwLike, PlatformKind::RiscLike]
            .into_iter()
            .enumerate()
        {
            let out = run_compression_kernel(kernel, scale, SEED, platform, &codec).expect("flow");
            per_platform[pi].1.push(out.energy_saving());
            table.push_row(vec![
                kernel.name().to_owned(),
                platform.name().to_owned(),
                out.lines.to_string(),
                out.compressed_lines.to_string(),
                out.raw_beats.to_string(),
                out.actual_beats.to_string(),
                pct(out.energy_saving()),
            ]);
        }
    }
    for (name, savings) in per_platform {
        let avg = savings.iter().sum::<f64>() / savings.len() as f64;
        let lo = savings.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = savings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        table.note(format!(
            "{name}: savings {}..{} (avg {})",
            pct(lo),
            pct(hi),
            pct(avg)
        ));
    }
    table
}

/// **F2a** — compression saving vs. D-cache capacity (VLIW platform).
pub fn f2a() -> Table {
    let mut table = Table::new(
        "F2a",
        "compression saving vs D-cache capacity (fir, dct8; vliw platform)",
        "smaller caches -> more write-back traffic -> larger savings",
        vec!["cache KiB", "fir saving", "dct8 saving"],
    );
    let codec = DiffCodec::new();
    let tech = PlatformKind::VliwLike.technology();
    for kib in [1u64, 2, 4, 8, 16, 32] {
        let mut row = vec![kib.to_string()];
        for (kernel, scale) in [(Kernel::Fir, 640u32), (Kernel::Dct8, 160)] {
            let (trace, image) = kernel_trace_and_image(kernel, scale, SEED).expect("kernel");
            let mut cfg = CompressionConfig::for_platform(PlatformKind::VliwLike);
            cfg.cache = lpmem_mem::CacheConfig::new(kib << 10, 64, 2).expect("geometry");
            let out =
                run_compression_trace(kernel.name(), "vliw-lx", &trace, image, &codec, &cfg, &tech)
                    .expect("flow");
            row.push(pct(out.energy_saving()));
        }
        table.push_row(row);
    }
    table
}

/// **F2b** — distribution of stored write-back sizes (beats) per kernel.
pub fn f2b() -> Table {
    let mut table = Table::new(
        "F2b",
        "stored write-back size distribution (vliw platform, 16-beat lines)",
        "compressible kernels concentrate well below the 16-beat raw line size",
        vec!["workload", "<=4", "5-8", "9-12", "13-15", "16 (raw)"],
    );
    let codec = DiffCodec::new();
    for (kernel, scale) in t2_kernels() {
        let out = run_compression_kernel(kernel, scale, SEED, PlatformKind::VliwLike, &codec)
            .expect("flow");
        let h = &out.size_histogram;
        let bucket = |lo: usize, hi: usize| -> u64 {
            (lo..=hi).map(|b| h.get(b).copied().unwrap_or(0)).sum()
        };
        table.push_row(vec![
            kernel.name().to_owned(),
            bucket(0, 4).to_string(),
            bucket(5, 8).to_string(),
            bucket(9, 12).to_string(),
            bucket(13, 15).to_string(),
            bucket(16, h.len().saturating_sub(1).max(16)).to_string(),
        ]);
    }
    table
}

/// **T3** — 1B.3 headline: instruction-bus transition reduction.
pub fn t3() -> Table {
    let tech = Technology::tech180();
    let mut table = Table::new(
        "T3",
        "instruction-bus functional encoding (4 reprogrammable regions)",
        "transition reductions up to ~50% (\"up to half of the original transitions\")",
        vec![
            "workload",
            "fetches",
            "raw",
            "encoded",
            "businvert",
            "xor red.",
            "bi red.",
        ],
    );
    let mut reductions = Vec::new();
    for &kernel in &Kernel::ALL {
        let run = kernel.run(kernel.default_scale(), SEED).expect("kernel");
        let out = run_buscoding(kernel.name(), &run.trace, 4, &tech).expect("flow");
        reductions.push(out.reduction());
        table.push_row(vec![
            kernel.name().to_owned(),
            out.fetches.to_string(),
            out.raw_transitions.to_string(),
            out.encoded_transitions.to_string(),
            out.businvert_transitions.to_string(),
            pct(out.reduction()),
            pct(out.businvert_reduction()),
        ]);
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().cloned().fold(0.0, f64::max);
    table.note(format!(
        "average reduction {} | maximum {}",
        pct(avg),
        pct(max)
    ));
    table
}

/// **F3a** — transition reduction vs. number of reprogrammable regions.
pub fn f3a() -> Table {
    let tech = Technology::tech180();
    let mut table = Table::new(
        "F3a",
        "transition reduction vs number of regions (matmul, crc32)",
        "more regions track code phases better, with diminishing returns",
        vec!["regions", "matmul red.", "crc32 red."],
    );
    let runs: Vec<_> = [Kernel::MatMul, Kernel::Crc32]
        .iter()
        .map(|&k| k.run(k.default_scale(), SEED).expect("kernel"))
        .collect();
    for regions in [1usize, 2, 4, 8, 16] {
        let mut row = vec![regions.to_string()];
        for run in &runs {
            let out = run_buscoding(run.kernel.name(), &run.trace, regions, &tech).expect("flow");
            row.push(pct(out.reduction()));
        }
        table.push_row(row);
    }
    table
}

/// **F3b** — address-bus encodings on the instruction fetch address
/// stream: binary vs Gray vs T0 (the classic low-power address codes, as
/// baselines for the data-bus study).
pub fn f3b() -> Table {
    let mut table = Table::new(
        "F3b",
        "instruction ADDRESS bus (word addresses): binary vs gray vs T0",
        "gray cuts sequential-run transitions; T0 nearly eliminates them",
        vec!["workload", "binary", "gray", "t0", "gray red.", "t0 red."],
    );
    for &kernel in &Kernel::ALL {
        let run = kernel.run(kernel.default_scale(), SEED).expect("kernel");
        // The fetch bus drives word addresses (instructions are aligned).
        let addrs: Vec<u32> = run
            .trace
            .fetches_only()
            .iter()
            .map(|e| (e.addr >> 2) as u32)
            .collect();
        let bin = lpmem_buscode::addrbus::binary_transitions(&addrs);
        let gray = lpmem_buscode::addrbus::gray_transitions(&addrs);
        let t0 = lpmem_buscode::addrbus::T0Encoder::transitions(1, &addrs);
        let red = |x: u64| {
            if bin == 0 {
                0.0
            } else {
                1.0 - x as f64 / bin as f64
            }
        };
        table.push_row(vec![
            kernel.name().to_owned(),
            bin.to_string(),
            gray.to_string(),
            t0.to_string(),
            pct(red(gray)),
            pct(red(t0)),
        ]);
    }
    table
}

/// **T4** — 1B.4 headline: two-level data scheduling energy.
pub fn t4() -> Table {
    let tech = Technology::tech180();
    let platform = default_platform(&tech);
    let mut table = Table::new(
        "T4",
        "two-level data scheduling (1 KiB L0 + 16 KiB L1, 32-frame loop)",
        "scheduler cuts application energy incl. reconfiguration energy vs naive placement",
        vec![
            "app",
            "external",
            "naive",
            "greedy",
            "saving",
            "reconfig saving",
        ],
    );
    let mut savings = Vec::new();
    for seed in 0..6u64 {
        let app = dsp_pipeline_app(4, 32, seed).expect("builder");
        let out = run_scheduling(&format!("dsp-{seed}"), &app, &platform).expect("flow");
        savings.push(out.saving_vs_naive());
        table.push_row(vec![
            out.name.clone(),
            out.external_only.to_string(),
            out.naive.to_string(),
            out.greedy.to_string(),
            pct(out.saving_vs_naive()),
            pct(out.reconfig_saving()),
        ]);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    table.note(format!("average saving vs naive {}", pct(avg)));
    table
}

/// **F4a** — scheduling energy vs. L0 capacity.
pub fn f4a() -> Table {
    let tech = Technology::tech180();
    let mut table = Table::new(
        "F4a",
        "greedy scheduling energy vs L0 capacity (dsp-1 app)",
        "larger L0 captures more hot arrays until the working set is covered",
        vec!["L0 bytes", "greedy", "saving vs naive"],
    );
    let app = dsp_pipeline_app(4, 32, 1).expect("builder");
    for l0 in [256u64, 512, 1024, 2048, 4096] {
        let platform = SchedPlatform::new(&tech, l0, 16 << 10);
        let out = run_scheduling("dsp-1", &app, &platform).expect("flow");
        table.push_row(vec![
            l0.to_string(),
            out.greedy.to_string(),
            pct(out.saving_vs_naive()),
        ]);
    }
    table
}

/// **A1** — ablation: clustering objective (frequency-only vs.
/// frequency+affinity).
pub fn a1() -> Table {
    let tech = Technology::tech180();
    let mut table = Table::new(
        "A1",
        "clustering objective ablation (reduction vs plain partitioning, raw objectives)",
        "under the profile-only model the affinity chain can cost a little dynamic \
energy (it buys sleep instead, see A4); the T1 flow keeps the cheaper of the two",
        vec!["workload", "freq-only", "freq+affinity"],
    );
    for (name, trace) in t1_workloads() {
        let mut row = vec![name.clone()];
        for objective in [Objective::FrequencyOnly, Objective::FrequencyAffinity] {
            let cfg = PartitioningConfig {
                cluster: ClusterConfig {
                    objective,
                    ..Default::default()
                },
                ..Default::default()
            };
            let out = run_partitioning(&name, &trace, &cfg, &tech).expect("flow");
            row.push(pct(out.reduction_vs_partitioned()));
        }
        table.push_row(row);
    }
    table
}

/// **A2** — ablation: codec comparison on write-back streams.
pub fn a2() -> Table {
    let mut table = Table::new(
        "A2",
        "codec ablation: fraction of write-back beats eliminated (vliw platform)",
        "the differential codec should dominate zero-elimination and FPC on signal data",
        vec!["workload", "diff", "zero", "fpc"],
    );
    let codecs: [&dyn LineCodec; 3] = [&DiffCodec::new(), &ZeroRunCodec::new(), &FpcCodec::new()];
    for (kernel, scale) in t2_kernels() {
        let (trace, image) = kernel_trace_and_image(kernel, scale, SEED).expect("kernel");
        // Collect the write-back stream once, then analyze per codec.
        let cfg = CompressionConfig::for_platform(PlatformKind::VliwLike);
        let mut cache = Cache::new(cfg.cache);
        let mut mem = RecordingBacking::new(image);
        let mut buf = [0u8; 4];
        for ev in &trace {
            match ev.kind {
                AccessKind::InstrFetch => {}
                AccessKind::Read => {
                    let n = (ev.size as usize).min(4);
                    cache.read(ev.addr, &mut buf[..n], &mut mem);
                }
                AccessKind::Write => {
                    let n = (ev.size as usize).min(4);
                    let bytes = ev.value.to_le_bytes();
                    cache.write(ev.addr, &bytes[..n], &mut mem);
                }
            }
        }
        cache.flush(&mut mem);
        let mut row = vec![kernel.name().to_owned()];
        for codec in codecs {
            let analysis = analyze_writebacks(codec, mem.write_backs(), cfg.threshold);
            row.push(pct(analysis.beats_saved_frac()));
        }
        table.push_row(row);
    }
    table
}

/// **A3** — ablation: DP-optimal vs. greedy partitioning (quality and
/// runtime).
pub fn a3() -> Table {
    let tech = Technology::tech180();
    let cost = PartitionCost::new(&tech);
    let mut table = Table::new(
        "A3",
        "partitioning algorithm ablation (energy; wall time in µs)",
        "DP is exact; greedy should be close but never better",
        vec![
            "workload",
            "monolithic",
            "greedy",
            "optimal",
            "greedy µs",
            "optimal µs",
        ],
    );
    for (name, trace) in t1_workloads() {
        let data = trace.data_only();
        let profile = BlockProfile::from_trace(&data, 2048).expect("profile");
        let mono = cost.evaluate(&profile, &Partition::monolithic(profile.num_blocks()));
        let t0 = Instant::now();
        let (_, greedy) = greedy_partition(&profile, 8, &cost);
        let t_greedy = t0.elapsed().as_micros();
        let t0 = Instant::now();
        let (_, optimal) = optimal_partition(&profile, 8, &cost);
        let t_optimal = t0.elapsed().as_micros();
        assert!(optimal.total().as_pj() <= greedy.total().as_pj() + 1e-6);
        table.push_row(vec![
            name,
            mono.total().to_string(),
            greedy.total().to_string(),
            optimal.total().to_string(),
            t_greedy.to_string(),
            t_optimal.to_string(),
        ]);
    }
    table
}

/// **F2c** — compression saving vs. hardware threshold (fraction of a line
/// an encoding must fit in to be stored compressed).
pub fn f2c() -> Table {
    let mut table = Table::new(
        "F2c",
        "compression saving vs threshold (dct8, vliw platform)",
        "strict half-line slots (0.5, the paper's layout) trade saving for simplicity",
        vec!["threshold", "compressed lines", "beats", "saving"],
    );
    let codec = DiffCodec::new();
    let tech = PlatformKind::VliwLike.technology();
    let (trace, image) = kernel_trace_and_image(Kernel::Dct8, 160, SEED).expect("kernel");
    for threshold in [0.25f64, 0.5, 0.625, 0.75, 0.875, 1.0] {
        let mut cfg = CompressionConfig::for_platform(PlatformKind::VliwLike);
        cfg.threshold = threshold;
        let out = run_compression_trace(
            "dct8",
            "vliw-lx",
            &trace,
            image.clone(),
            &codec,
            &cfg,
            &tech,
        )
        .expect("flow");
        table.push_row(vec![
            format!("{threshold:.3}"),
            out.compressed_lines.to_string(),
            out.actual_beats.to_string(),
            pct(out.energy_saving()),
        ]);
    }
    table
}

/// **A4** — sleep-aware clustering comparison at the leakage-dominated
/// 90 nm node: with bank power gating, the *temporal* affinity objective
/// matters (it is invisible to the profile-only model of T1/A1).
pub fn a4() -> Table {
    let tech = Technology::tech90();
    let cfg = PartitioningConfig::default();
    let mut table = Table::new(
        "A4",
        "sleep-aware evaluation at 90nm: plain vs freq-only vs affinity clustering (timeout 64)",
        "with power gating, grouping co-accessed blocks lets other banks sleep; \
affinity must beat frequency-only on phase-scattered, heat-uniform workloads",
        vec![
            "workload",
            "partitioned",
            "freq-only",
            "affinity",
            "freq red.",
            "affinity red.",
            "sleep frac",
        ],
    );
    // Phase-scattered workloads: uniform heat, phase-local working sets.
    let mut workloads: Vec<(String, Trace)> = [(4usize, 4usize), (6, 3), (3, 6)]
        .iter()
        .map(|&(phases, bpp)| {
            let t: Trace = lpmem_trace::gen::PhaseScatterGen::new(phases, bpp, 2_000)
                .seed(SEED)
                .events(80_000)
                .collect();
            (format!("phase-scatter-{phases}x{bpp}"), t)
        })
        .collect();
    workloads.extend(t1_workloads().into_iter().take(4)); // composite apps
    for (name, trace) in workloads {
        let out = run_partitioning_sleep(&name, &trace, &cfg, &tech, 64).expect("flow");
        table.push_row(vec![
            name,
            out.partitioned.to_string(),
            out.freq_only.to_string(),
            out.affinity.to_string(),
            pct(out.freq_only_reduction()),
            pct(out.affinity_reduction()),
            format!("{:.2}", out.sleep_fractions[2]),
        ]);
    }
    table
}

/// **A5** — the silicon cost of the energy savings: area of the monolith
/// vs. the partitioned design vs. the clustered design (banks + relocation
/// table).
pub fn a5() -> Table {
    let tech = Technology::tech180();
    let cfg = PartitioningConfig::default();
    let cost = PartitionCost::new(&tech);
    let mut table = Table::new(
        "A5",
        "area cost of partitioning + clustering (mm², 0.18um)",
        "banking multiplies periphery; the relocation table is negligible next to the banks",
        vec![
            "workload",
            "mono mm2",
            "banked mm2",
            "+table mm2",
            "area ovhd",
            "energy red.",
        ],
    );
    for (name, trace) in t1_workloads() {
        let data = trace.data_only();
        let profile = BlockProfile::from_trace(&data, cfg.block_size).expect("profile");
        let mono = cost
            .area_report(&profile, &Partition::monolithic(profile.num_blocks()))
            .total_mm2();
        let map = cluster_blocks(&profile, Some(&data), &cfg.cluster);
        let remapped = map.apply(&profile).expect("bijection");
        let (part, _) = optimal_partition(&remapped, cfg.max_banks, &cost);
        let mut clustered_area = cost.area_report(&remapped, &part);
        let banked = clustered_area.total_mm2();
        clustered_area.add("relocation.table", map.table_area_mm2(&tech));
        let with_table = clustered_area.total_mm2();
        let out = run_partitioning(&name, &trace, &cfg, &tech).expect("flow");
        table.push_row(vec![
            name,
            format!("{mono:.3}"),
            format!("{banked:.3}"),
            format!("{with_table:.4}"),
            pct(with_table / mono - 1.0),
            pct(out.reduction_vs_monolithic()),
        ]);
    }
    table
}

/// **SYS** — capstone: instruction-bus encoding and write-back
/// compression applied to the same platform, per kernel.
pub fn sys() -> Table {
    let mut table = Table::new(
        "SYS",
        "whole-system capstone: bus encoding + write-back compression together (vliw)",
        "the session's techniques compose: combined saving exceeds either alone",
        vec![
            "workload",
            "baseline",
            "optimized",
            "ibus red.",
            "combined saving",
        ],
    );
    let codec = DiffCodec::new();
    let mut savings = Vec::new();
    for (kernel, scale) in t2_kernels() {
        let out = run_system(kernel, scale, SEED, PlatformKind::VliwLike, &codec, 4).expect("flow");
        savings.push(out.saving());
        table.push_row(vec![
            kernel.name().to_owned(),
            out.baseline.total().to_string(),
            out.optimized.total().to_string(),
            pct(out.ibus_saving()),
            pct(out.saving()),
        ]);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    table.note(format!(
        "average combined memory-system saving {}",
        pct(avg)
    ));
    table
}

/// All experiments in `DESIGN.md` order, fanned across the sweep
/// engine's worker pool (each experiment is deterministic, so parallel
/// execution changes only the wall-clock, never a table).
pub fn all() -> Vec<Table> {
    let tables = crate::sweep::parallel_map(ALL_IDS.to_vec(), crate::sweep::worker_count(), |id| {
        by_id(id).expect("ALL_IDS entries are known")
    });
    debug_assert_eq!(tables.len(), ALL_IDS.len());
    tables
}

/// Looks up one experiment by id (case-insensitive).
pub fn by_id(id: &str) -> Option<Table> {
    match id.to_ascii_lowercase().as_str() {
        "t1" => Some(t1()),
        "f1a" => Some(f1a()),
        "f1b" => Some(f1b()),
        "t2" => Some(t2()),
        "f2a" => Some(f2a()),
        "f2b" => Some(f2b()),
        "f2c" => Some(f2c()),
        "t3" => Some(t3()),
        "f3a" => Some(f3a()),
        "f3b" => Some(f3b()),
        "t4" => Some(t4()),
        "f4a" => Some(f4a()),
        "a1" => Some(a1()),
        "a2" => Some(a2()),
        "a3" => Some(a3()),
        "a4" => Some(a4()),
        "a5" => Some(a5()),
        "sys" => Some(sys()),
        _ => None,
    }
}

/// Ids accepted by [`by_id`].
pub const ALL_IDS: [&str; 18] = [
    "t1", "f1a", "f1b", "t2", "f2a", "f2b", "f2c", "t3", "f3a", "f3b", "t4", "f4a", "a1", "a2",
    "a3", "a4", "a5", "sys",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_are_unique_and_known() {
        let set: std::collections::HashSet<_> = ALL_IDS.iter().collect();
        assert_eq!(set.len(), ALL_IDS.len());
        assert!(by_id("nonsense").is_none());
        assert!(by_id("T4").is_some(), "lookup is case-insensitive");
    }

    #[test]
    fn t4_table_is_well_formed() {
        let t = t4();
        assert_eq!(t.id, "T4");
        assert_eq!(t.rows.len(), 6);
        assert!(t.rows.iter().all(|r| r.len() == t.header.len()));
        assert!(!t.notes.is_empty());
        // Savings column parses as percentages.
        assert!(!t.column_f64(4).is_empty());
    }

    #[test]
    fn f4a_sweeps_l0_capacity() {
        let t = f4a();
        assert_eq!(t.rows.len(), 5);
        let l0: Vec<f64> = t.column_f64(0);
        assert!(l0.windows(2).all(|w| w[0] < w[1]), "L0 column ascends");
    }
}
