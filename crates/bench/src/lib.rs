//! Experiment harness: one function per table/figure of the reproduced
//! evaluations (see `DESIGN.md` §2 for the experiment index).
//!
//! Every experiment returns a [`Table`] whose `Display` rendering is what
//! the `repro` binary prints and what `EXPERIMENTS.md` records. The same
//! functions back the std-only benches, so "the benchmark suite" and "the
//! reproduction harness" cannot drift apart.

pub mod benchrun;
pub mod experiments;
pub mod fleet;
pub mod metrics;
pub mod sweep;
pub mod table;

pub use fleet::{run_fleet, FleetReport, FleetSpec};
pub use metrics::Metrics;
pub use sweep::{run_sweep, SweepGrid, SweepReport};
pub use table::Table;
