//! Std-only micro-benchmark timing harness.
//!
//! A deliberately small replacement for `criterion`: no statistics beyond
//! warmup + median-of-N (plus min/max spread), no plotting, no external
//! dependencies — just [`std::time::Instant`] and a calibrated inner loop,
//! runnable as a plain binary so benches work offline.
//!
//! ```
//! use lpmem_util::bench::{benchmark, black_box, Options};
//!
//! let m = benchmark("sum", &Options::quick(), || {
//!     black_box((0..1000u64).sum::<u64>())
//! });
//! assert!(m.median_ns > 0.0);
//! ```

use std::time::Instant;

pub use std::hint::black_box;

/// Sampling configuration for [`benchmark`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Target wall-clock time spent warming up, in nanoseconds.
    pub warmup_ns: u64,
    /// Number of timed samples; the reported time is their median.
    pub samples: u32,
    /// Target wall-clock time per sample, in nanoseconds (the inner
    /// iteration count is calibrated to hit this).
    pub sample_ns: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            warmup_ns: 200_000_000,
            samples: 15,
            sample_ns: 50_000_000,
        }
    }
}

impl Options {
    /// A fast configuration for smoke runs and tests (~a few ms total).
    pub fn quick() -> Self {
        Options {
            warmup_ns: 1_000_000,
            samples: 5,
            sample_ns: 1_000_000,
        }
    }
}

/// One benchmark's timing summary. All times are per-iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Median per-iteration time over the samples, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time, in nanoseconds.
    pub max_ns: f64,
    /// Iterations per timed sample (after calibration).
    pub iters_per_sample: u64,
    /// Total iterations across warmup and sampling.
    pub total_iters: u64,
}

impl Measurement {
    /// Median throughput in iterations per second.
    pub fn iters_per_sec(&self) -> f64 {
        if self.median_ns > 0.0 {
            1e9 / self.median_ns
        } else {
            f64::INFINITY
        }
    }

    /// Median throughput in `elements`-per-second units, for a benchmark
    /// whose one iteration processes `elements` items.
    pub fn elems_per_sec(&self, elements: u64) -> f64 {
        self.iters_per_sec() * elements as f64
    }

    /// Human-readable per-iteration median, e.g. `"12.3 µs"`.
    pub fn human_median(&self) -> String {
        format_ns(self.median_ns)
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Calibration: double the iteration count until one batch is long
/// enough to time reliably, then report the per-iteration cost and how
/// many iterations calibration burned.
fn calibrate<R>(f: &mut impl FnMut() -> R) -> (u64, u64) {
    let mut iters: u64 = 1;
    let mut calib_ns;
    let mut total_iters = 0u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        calib_ns = start.elapsed().as_nanos() as u64;
        total_iters += iters;
        if calib_ns >= 1_000_000 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    ((calib_ns / iters).max(1), total_iters)
}

/// Runs `f` under the given options and returns the timing summary.
///
/// The harness first calibrates an inner iteration count so each sample
/// takes roughly `opts.sample_ns`, then warms up for `opts.warmup_ns`,
/// then records `opts.samples` timed samples and reports their median.
pub fn benchmark<R>(name: &str, opts: &Options, mut f: impl FnMut() -> R) -> Measurement {
    let (per_iter, mut total_iters) = calibrate(&mut f);
    let iters_per_sample = (opts.sample_ns / per_iter).clamp(1, 100_000_000);

    // Warmup.
    let warm_start = Instant::now();
    while (warm_start.elapsed().as_nanos() as u64) < opts.warmup_ns {
        for _ in 0..iters_per_sample.min(1024) {
            black_box(f());
            total_iters += 1;
        }
    }

    // Timed samples.
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(opts.samples as usize);
    for _ in 0..opts.samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64;
        total_iters += iters_per_sample;
        per_iter_ns.push(ns / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median_ns = median_of_sorted(&per_iter_ns);

    Measurement {
        name: name.to_string(),
        median_ns,
        min_ns: per_iter_ns[0],
        max_ns: *per_iter_ns.last().expect("at least one sample"),
        iters_per_sample,
        total_iters,
    }
}

/// The result of a paired A/B comparison: each side's timing summary plus
/// the median of the **per-sample** `A / B` time ratios.
///
/// On a machine with slow load drift (thermal throttling, noisy
/// neighbours), timing all of A and then all of B puts the drift entirely
/// into the ratio of their medians. Pairing times both sides back-to-back
/// inside every sample, so each ratio sees the same weather and the
/// median ratio is what survives.
#[derive(Debug, Clone)]
pub struct PairedMeasurement {
    /// Side A's summary (medians are still per-side, for reporting).
    pub a: Measurement,
    /// Side B's summary.
    pub b: Measurement,
    /// Median over samples of `per_iter_a / per_iter_b`.
    pub ratio: f64,
}

/// Benchmarks `fa` against `fb` with paired samples; see
/// [`PairedMeasurement`] for why this beats two independent
/// [`benchmark`] calls when the quantity of interest is the ratio.
pub fn benchmark_paired<RA, RB>(
    name_a: &str,
    name_b: &str,
    opts: &Options,
    mut fa: impl FnMut() -> RA,
    mut fb: impl FnMut() -> RB,
) -> PairedMeasurement {
    let (per_a, mut total_a) = calibrate(&mut fa);
    let (per_b, mut total_b) = calibrate(&mut fb);
    // Each side gets half the per-sample budget.
    let iters_a = (opts.sample_ns / 2 / per_a).clamp(1, 100_000_000);
    let iters_b = (opts.sample_ns / 2 / per_b).clamp(1, 100_000_000);

    // Warm both sides together so they reach steady state under the same
    // conditions.
    let warm_start = Instant::now();
    while (warm_start.elapsed().as_nanos() as u64) < opts.warmup_ns {
        for _ in 0..iters_a.min(512) {
            black_box(fa());
            total_a += 1;
        }
        for _ in 0..iters_b.min(512) {
            black_box(fb());
            total_b += 1;
        }
    }

    let samples = opts.samples.max(1) as usize;
    let mut ns_a: Vec<f64> = Vec::with_capacity(samples);
    let mut ns_b: Vec<f64> = Vec::with_capacity(samples);
    let mut ratios: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters_a {
            black_box(fa());
        }
        let a = start.elapsed().as_nanos() as f64 / iters_a as f64;
        let start = Instant::now();
        for _ in 0..iters_b {
            black_box(fb());
        }
        let b = start.elapsed().as_nanos() as f64 / iters_b as f64;
        total_a += iters_a;
        total_b += iters_b;
        ns_a.push(a);
        ns_b.push(b);
        ratios.push(a / b);
    }
    ns_a.sort_by(|x, y| x.total_cmp(y));
    ns_b.sort_by(|x, y| x.total_cmp(y));
    ratios.sort_by(|x, y| x.total_cmp(y));

    let side = |name: &str, sorted: &[f64], iters: u64, total: u64| Measurement {
        name: name.to_string(),
        median_ns: median_of_sorted(sorted),
        min_ns: sorted[0],
        max_ns: *sorted.last().expect("at least one sample"),
        iters_per_sample: iters,
        total_iters: total,
    };
    PairedMeasurement {
        a: side(name_a, &ns_a, iters_a, total_a),
        b: side(name_b, &ns_b, iters_b, total_b),
        ratio: median_of_sorted(&ratios),
    }
}

fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let m = benchmark("noop", &Options::quick(), || black_box(1u32 + 1));
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.iters_per_sample >= 1);
        assert!(m.total_iters >= u64::from(Options::quick().samples));
    }

    #[test]
    fn slower_work_reports_larger_times() {
        let opts = Options::quick();
        let fast = benchmark("fast", &opts, || black_box((0..10u64).sum::<u64>()));
        let slow = benchmark("slow", &opts, || black_box((0..10_000u64).sum::<u64>()));
        assert!(
            slow.median_ns > fast.median_ns,
            "slow {} vs fast {}",
            slow.median_ns,
            fast.median_ns
        );
    }

    #[test]
    fn paired_ratio_tracks_relative_cost() {
        let m = benchmark_paired(
            "slow",
            "fast",
            &Options::quick(),
            || black_box((0..20_000u64).sum::<u64>()),
            || black_box((0..1_000u64).sum::<u64>()),
        );
        assert!(
            m.ratio > 1.0,
            "20x the work should time slower: ratio {}",
            m.ratio
        );
        assert!(m.a.median_ns > m.b.median_ns);
    }

    #[test]
    fn throughput_conversions_are_consistent() {
        let m = Measurement {
            name: "x".into(),
            median_ns: 1000.0,
            min_ns: 900.0,
            max_ns: 1100.0,
            iters_per_sample: 10,
            total_iters: 100,
        };
        assert!((m.iters_per_sec() - 1e6).abs() < 1e-6);
        assert!((m.elems_per_sec(64) - 64e6).abs() < 1e-3);
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_300.0), "12.30 µs");
        assert_eq!(format_ns(12_300_000.0), "12.30 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn median_handles_even_and_odd_counts() {
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median_of_sorted(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
