//! Deterministic pseudo-random number generation.
//!
//! Two generators, both tiny, fast, and dependency-free:
//!
//! * [`SplitMix64`] — a 64-bit state-increment generator. Used to expand
//!   seeds (its successive outputs are well-distributed even for adjacent
//!   seeds) and for cheap auxiliary streams.
//! * [`Rng`] — xoshiro256++, seeded through SplitMix64. The workhorse
//!   generator behind every synthetic workload and property test in the
//!   workspace.
//!
//! Determinism is a hard guarantee: the same seed always produces the same
//! stream, on every platform, forever. Trace generators, kernels, and
//! property tests all lean on this for reproducibility.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: the seed-expansion PRNG (Steele, Lea & Flood).
///
/// Every output is a bijective mix of a counter, so even seeds 0, 1, 2, …
/// yield decorrelated streams — exactly what seeding needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives a decorrelated child seed from a base seed and a coordinate
    /// path (e.g. the axes of a sweep grid).
    ///
    /// Each coordinate is folded through a full SplitMix64 round, so the
    /// derivation is order-sensitive (`[1, 2]` and `[2, 1]` yield different
    /// seeds), collision-resistant for adjacent coordinates, and depends
    /// only on `(base, path)` — never on evaluation order. This is the
    /// per-task seeding scheme of the experiment sweep engine: a task's
    /// stream is pinned by its grid coordinates alone, so results are
    /// bit-identical regardless of worker count or interleaving.
    pub fn derive(base: u64, path: &[u64]) -> u64 {
        let mut seed = SplitMix64::new(base).next_u64();
        for &coord in path {
            seed = SplitMix64::new(seed ^ coord.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        }
        seed
    }
}

/// xoshiro256++ (Blackman & Vigna): 256-bit state, 64-bit output,
/// period 2²⁵⁶ − 1, excellent statistical quality for simulation work.
///
/// Seeded via [`SplitMix64`] so that *any* `u64` seed — including 0 —
/// yields a valid, decorrelated state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` with
    /// [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, n)` via Lemire's unbiased multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded_u64 needs a non-empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.gen_f64() < p
    }

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// Index drawn with probability proportional to `weights[i]`.
    ///
    /// Returns `None` if `weights` is empty, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last non-zero weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Element drawn with probability proportional to its paired weight.
    ///
    /// Returns `None` under the same conditions as [`Rng::weighted_index`].
    pub fn choose_weighted<'a, T>(&mut self, items: &'a [(T, f64)]) -> Option<&'a T> {
        let weights: Vec<f64> = items.iter().map(|(_, w)| *w).collect();
        self.weighted_index(&weights).map(|i| &items[i].0)
    }

    /// Fills a byte slice with uniform random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(width) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full 64-bit domain: every output is in range.
                    rng.next_u64() as $t
                } else {
                    (start as i128 + rng.bounded_u64(span as u64) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn derive_is_deterministic_and_path_sensitive() {
        // Same (base, path) -> same seed, forever.
        assert_eq!(
            SplitMix64::derive(7, &[1, 2, 3]),
            SplitMix64::derive(7, &[1, 2, 3])
        );
        // Any coordinate change, base change, or reordering changes the seed.
        assert_ne!(
            SplitMix64::derive(7, &[1, 2, 3]),
            SplitMix64::derive(8, &[1, 2, 3])
        );
        assert_ne!(
            SplitMix64::derive(7, &[1, 2, 3]),
            SplitMix64::derive(7, &[1, 2, 4])
        );
        assert_ne!(
            SplitMix64::derive(7, &[1, 2]),
            SplitMix64::derive(7, &[2, 1])
        );
        // The empty path still decorrelates from the raw base.
        assert_ne!(SplitMix64::derive(7, &[]), 7);
    }

    #[test]
    fn derive_spreads_adjacent_coordinates() {
        // Adjacent grid coordinates must yield well-spread seeds: all
        // distinct, and no seed sharing its low 32 bits with another.
        let mut seeds = Vec::new();
        for flow in 0..4u64 {
            for kernel in 0..8u64 {
                seeds.push(SplitMix64::derive(2003, &[flow, kernel]));
            }
        }
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
        let low: std::collections::HashSet<u32> = seeds.iter().map(|&s| s as u32).collect();
        assert_eq!(low.len(), seeds.len(), "low halves must not collide");
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(99);
        let mut b = Rng::seed_from_u64(99);
        let mut c = Rng::seed_from_u64(100);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-100..100);
            assert!((-100..100).contains(&v));
            let u: u8 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&u));
            let w = rng.gen_range(0..1u64);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = Rng::seed_from_u64(8);
        let mut seen_min = false;
        let mut seen_max = false;
        for _ in 0..2_000 {
            match rng.gen_range(0..=7u32) {
                0 => seen_min = true,
                7 => seen_max = true,
                _ => {}
            }
        }
        assert!(seen_min && seen_max);
        // The full-domain inclusive range must not panic.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut bins = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            bins[rng.gen_range(0..8usize)] += 1;
        }
        let expect = n as f64 / 8.0;
        for (i, &count) in bins.iter().enumerate() {
            let dev = (f64::from(count) - expect).abs() / expect;
            assert!(dev < 0.05, "bin {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        let ratio = hits as f64 / 50_000.0;
        assert!((ratio - 0.3).abs() < 0.02, "ratio = {ratio}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        Rng::seed_from_u64(17).shuffle(&mut a);
        Rng::seed_from_u64(17).shuffle(&mut b);
        assert_eq!(a, b, "same seed, same shuffle");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..50).collect::<Vec<u32>>(),
            "must stay a permutation"
        );
        assert_ne!(a, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn shuffle_positions_are_roughly_uniform() {
        // Where does element 0 land? Over many seeds, every slot should be
        // hit approximately equally often.
        let n = 8;
        let trials = 16_000;
        let mut slots = vec![0u32; n];
        for seed in 0..trials {
            let mut v: Vec<usize> = (0..n).collect();
            Rng::seed_from_u64(seed).shuffle(&mut v);
            slots[v.iter().position(|&x| x == 0).unwrap()] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &count) in slots.iter().enumerate() {
            let dev = (f64::from(count) - expect).abs() / expect;
            assert!(dev < 0.10, "slot {i} deviates {dev:.3}");
        }
    }

    #[test]
    fn choose_and_weighted_choice() {
        let mut rng = Rng::seed_from_u64(23);
        assert_eq!(rng.choose::<u32>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));

        // A dominant weight must dominate the draw.
        let items = [("rare", 1.0), ("common", 99.0)];
        let common = (0..5_000)
            .filter(|_| *rng.choose_weighted(&items).unwrap() == "common")
            .count();
        assert!(common > 4_700, "common drawn {common}/5000");

        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[0.0, 1.0, 0.0]), Some(1));
        assert_eq!(rng.weighted_index(&[1.0, f64::NAN]), None);
        assert_eq!(rng.weighted_index(&[-1.0, 2.0]), None);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Rng::seed_from_u64(31);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(
            buf.iter().any(|&b| b != 0),
            "13 random bytes are never all zero"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5u32);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_panics() {
        Rng::seed_from_u64(0).gen_bool(1.5);
    }
}
