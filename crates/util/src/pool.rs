//! A std-only work-stealing thread pool for deterministic fan-out.
//!
//! Promoted out of the sweep engine (`lpmem-bench`) so any crate — the
//! sweep, the design-space explorer, tests — can fan pure tasks across
//! worker threads without a dependency on the harness crate (or on
//! rayon/crossbeam: the build is hermetic).
//!
//! The pool is deliberately simple: a shared injector deque feeds
//! per-worker local deques; workers grab small batches from the injector
//! and steal half a victim's local queue when both run dry. Results land
//! in per-task slots indexed by input position, so **collection order
//! never depends on scheduling** — [`parallel_map`] returns its output in
//! input order at any worker count, which is the substrate every
//! byte-identical report in the workspace builds on.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Tasks a worker takes from the injector in one lock acquisition.
const INJECTOR_BATCH: usize = 4;

/// Applies `f` to every item on a work-stealing pool of `workers`
/// threads, preserving input order in the output. `workers <= 1` runs
/// inline with no threads.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let per_worker = parallel_map_workers(items, workers, f, |_: &mut (), _: &R| {});
    let mut indexed: Vec<(usize, R)> = per_worker
        .into_iter()
        .flat_map(|(chunk, ())| chunk)
        .collect();
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The engine under [`parallel_map`]: maps `f` over the items on a
/// work-stealing pool and additionally folds every result into a
/// per-worker state `S` via `observe`. Returns each worker's
/// `(indexed results, state)`; callers that need global order sort by the
/// index, callers that need global state merge the per-worker states.
pub fn parallel_map_workers<T, R, S, F, O>(
    items: Vec<T>,
    workers: usize,
    f: F,
    observe: O,
) -> Vec<(Vec<(usize, R)>, S)>
where
    T: Send,
    R: Send,
    S: Default + Send,
    F: Fn(T) -> R + Sync,
    O: Fn(&mut S, &R) + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = S::default();
        let chunk: Vec<(usize, R)> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(item);
                observe(&mut state, &r);
                (i, r)
            })
            .collect();
        return vec![(chunk, state)];
    }

    // Task storage: items move out of their slots as workers claim them.
    let slots: Vec<Mutex<Option<(usize, T)>>> = items
        .into_iter()
        .enumerate()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let injector: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let locals: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();

    let next_task = |me: usize| -> Option<usize> {
        // 1. Own local queue (LIFO for locality).
        if let Some(i) = lock(&locals[me]).pop_back() {
            return Some(i);
        }
        // 2. A batch from the injector: keep one, queue the rest locally.
        {
            let mut inj = lock(&injector);
            if let Some(first) = inj.pop_front() {
                let mut mine = lock(&locals[me]);
                for _ in 1..INJECTOR_BATCH {
                    match inj.pop_front() {
                        Some(i) => mine.push_back(i),
                        None => break,
                    }
                }
                return Some(first);
            }
        }
        // 3. Steal the front half of the fullest victim's queue.
        let victim = (0..workers)
            .filter(|&w| w != me)
            .max_by_key(|&w| lock(&locals[w]).len())?;
        let stolen: Vec<usize> = {
            let mut theirs = lock(&locals[victim]);
            let take = theirs.len().div_ceil(2);
            theirs.drain(..take).collect()
        };
        let mut iter = stolen.into_iter();
        let first = iter.next()?;
        lock(&locals[me]).extend(iter);
        Some(first)
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let next_task = &next_task;
                let slots = &slots;
                let f = &f;
                let observe = &observe;
                scope.spawn(move || {
                    let mut chunk: Vec<(usize, R)> = Vec::new();
                    let mut state = S::default();
                    let mut idle_spins = 0u32;
                    loop {
                        match next_task(me) {
                            Some(slot) => {
                                idle_spins = 0;
                                // A claimed index is owned by exactly one
                                // worker, so the slot is always full here.
                                let (index, item) =
                                    lock(&slots[slot]).take().expect("task claimed twice");
                                let r = f(item);
                                observe(&mut state, &r);
                                chunk.push((index, r));
                            }
                            None => {
                                // Queues drained — but a peer may still
                                // publish stealable work; yield a few times
                                // before concluding the pool is dry.
                                idle_spins += 1;
                                if idle_spins > 32 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    (chunk, state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order_and_runs_every_item() {
        let items: Vec<u64> = (0..500).collect();
        let calls = AtomicUsize::new(0);
        let out = parallel_map(items.clone(), 8, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 3 + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_edge_worker_counts() {
        for workers in [0, 1, 2, 64] {
            let out = parallel_map(vec![10u32, 20, 30], workers, |x| x + 1);
            assert_eq!(out, vec![11, 21, 31], "workers={workers}");
        }
        let empty: Vec<u32> = parallel_map(Vec::new(), 4, |x: u32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_states_partition_the_work() {
        // Each worker folds item count into its local state; the merged
        // states must account for every item exactly once.
        let per_worker = parallel_map_workers(
            (0..300u32).collect::<Vec<_>>(),
            4,
            |x| x,
            |count: &mut u64, _| *count += 1,
        );
        let total: u64 = per_worker.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 300);
        let items: usize = per_worker.iter().map(|(chunk, _)| chunk.len()).sum();
        assert_eq!(items, 300);
    }
}
