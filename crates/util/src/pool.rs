//! A std-only work-stealing thread pool for deterministic fan-out.
//!
//! Promoted out of the sweep engine (`lpmem-bench`) so any crate — the
//! sweep, the design-space explorer, tests — can fan pure tasks across
//! worker threads without a dependency on the harness crate (or on
//! rayon/crossbeam: the build is hermetic).
//!
//! The pool is deliberately simple: a shared injector deque feeds
//! per-worker local deques; workers grab small batches from the injector
//! and steal half a victim's local queue when both run dry. Results land
//! in per-task slots indexed by input position, so **collection order
//! never depends on scheduling** — [`parallel_map`] returns its output in
//! input order at any worker count, which is the substrate every
//! byte-identical report in the workspace builds on.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::Mutex;

/// Tasks a worker takes from the injector in one lock acquisition.
const INJECTOR_BATCH: usize = 4;

/// A task body that panicked instead of returning a result.
///
/// The pool catches per-task panics with `catch_unwind` so one poisoned
/// task cannot abort a whole campaign. The record carries the input
/// `index` of the task and the rendered panic payload, so reports built
/// from it are byte-identical at any worker count (index order is a
/// property of the input, not of scheduling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input position of the task that panicked.
    pub index: usize,
    /// Rendered panic payload (`&str`/`String` payloads verbatim).
    pub message: String,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Applies `f` to every item on a work-stealing pool of `workers`
/// threads, preserving input order in the output. `workers <= 1` runs
/// inline with no threads.
///
/// If any task panics, the panic is re-raised *deterministically*: every
/// remaining task still runs, and the panic with the lowest input index
/// is the one propagated, regardless of worker count or scheduling. Use
/// [`try_parallel_map`] to receive panics as values instead.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let per_worker = parallel_map_workers(items, workers, f, |_: &mut (), _: &R| {});
    let mut first_panic: Option<TaskPanic> = None;
    let mut indexed: Vec<(usize, R)> = Vec::new();
    for (chunk, (), panics) in per_worker {
        indexed.extend(chunk);
        for p in panics {
            if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                first_panic = Some(p);
            }
        }
    }
    if let Some(p) = first_panic {
        panic!("task {} panicked: {}", p.index, p.message);
    }
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Like [`parallel_map`], but surfaces each task's outcome as a value:
/// `Ok(result)` for tasks that returned, `Err(TaskPanic)` for tasks that
/// panicked. Output is in input order at any worker count.
pub fn try_parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let per_worker = parallel_map_workers(items, workers, f, |_: &mut (), _: &R| {});
    let mut out: Vec<Option<Result<R, TaskPanic>>> = (0..n).map(|_| None).collect();
    for (chunk, (), panics) in per_worker {
        for (i, r) in chunk {
            out[i] = Some(Ok(r));
        }
        for p in panics {
            let i = p.index;
            out[i] = Some(Err(p));
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every task resolves to a result or a panic"))
        .collect()
}

/// One worker's contribution from [`parallel_map_workers`]: its indexed
/// results, its folded observer state, and the panics it caught.
pub type WorkerYield<R, S> = (Vec<(usize, R)>, S, Vec<TaskPanic>);

/// The engine under [`parallel_map`]: maps `f` over the items on a
/// work-stealing pool and additionally folds every result into a
/// per-worker state `S` via `observe`. Returns each worker's
/// `(indexed results, state, panics)`; callers that need global order
/// sort by the index, callers that need global state merge the
/// per-worker states. Task bodies run under `catch_unwind`: a panicking
/// task yields a [`TaskPanic`] record (and no result) instead of
/// poisoning the pool, and never reaches `observe`.
pub fn parallel_map_workers<T, R, S, F, O>(
    items: Vec<T>,
    workers: usize,
    f: F,
    observe: O,
) -> Vec<WorkerYield<R, S>>
where
    T: Send,
    R: Send,
    S: Default + Send,
    F: Fn(T) -> R + Sync,
    O: Fn(&mut S, &R) + Sync,
{
    run_pool(items, workers, |state: &mut S, item| {
        let r = f(item);
        observe(state, &r);
        r
    })
}

/// Maps `f` over the items with a **mutable per-worker state** threaded
/// through every call — the shape a sharded memo table needs: each worker
/// accumulates into its own shard with no cross-thread locking, and the
/// caller merges the shards deterministically afterwards.
///
/// Returns `(results, states)`: results in **input order** (independent
/// of scheduling, like [`parallel_map`]) and one state per worker in
/// **worker-index order** — also scheduling-independent, though *which*
/// entries land in which state is not. Any deterministic merge of the
/// states (e.g. folding maps whose values are pure functions of their
/// keys) therefore yields a scheduling-independent aggregate.
///
/// Panic semantics match [`parallel_map`]: every remaining task still
/// runs, then the panic with the lowest input index is re-raised.
pub fn parallel_map_with<T, R, S, F>(items: Vec<T>, workers: usize, f: F) -> (Vec<R>, Vec<S>)
where
    T: Send,
    R: Send,
    S: Default + Send,
    F: Fn(&mut S, T) -> R + Sync,
{
    let per_worker = run_pool(items, workers, f);
    let mut first_panic: Option<TaskPanic> = None;
    let mut indexed: Vec<(usize, R)> = Vec::new();
    let mut states: Vec<S> = Vec::with_capacity(per_worker.len());
    for (chunk, state, panics) in per_worker {
        indexed.extend(chunk);
        states.push(state);
        for p in panics {
            if first_panic.as_ref().is_none_or(|q| p.index < q.index) {
                first_panic = Some(p);
            }
        }
    }
    if let Some(p) = first_panic {
        panic!("task {} panicked: {}", p.index, p.message);
    }
    indexed.sort_by_key(|&(i, _)| i);
    (indexed.into_iter().map(|(_, r)| r).collect(), states)
}

/// The shared work-stealing engine: `f` gets the worker's own state and
/// the item. Everything public above is a wrapper over this.
fn run_pool<T, R, S, F>(items: Vec<T>, workers: usize, f: F) -> Vec<WorkerYield<R, S>>
where
    T: Send,
    R: Send,
    S: Default + Send,
    F: Fn(&mut S, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        let mut state = S::default();
        let mut panics = Vec::new();
        let mut chunk: Vec<(usize, R)> = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            match std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut state, item))) {
                Ok(r) => chunk.push((i, r)),
                Err(payload) => panics.push(TaskPanic {
                    index: i,
                    message: panic_message(payload),
                }),
            }
        }
        return vec![(chunk, state, panics)];
    }

    // Task storage: items move out of their slots as workers claim them.
    let slots: Vec<Mutex<Option<(usize, T)>>> = items
        .into_iter()
        .enumerate()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let injector: Mutex<VecDeque<usize>> = Mutex::new((0..n).collect());
    let locals: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();

    let next_task = |me: usize| -> Option<usize> {
        // 1. Own local queue (LIFO for locality).
        if let Some(i) = lock(&locals[me]).pop_back() {
            return Some(i);
        }
        // 2. A batch from the injector: keep one, queue the rest locally.
        {
            let mut inj = lock(&injector);
            if let Some(first) = inj.pop_front() {
                let mut mine = lock(&locals[me]);
                for _ in 1..INJECTOR_BATCH {
                    match inj.pop_front() {
                        Some(i) => mine.push_back(i),
                        None => break,
                    }
                }
                return Some(first);
            }
        }
        // 3. Steal the front half of the fullest victim's queue.
        let victim = (0..workers)
            .filter(|&w| w != me)
            .max_by_key(|&w| lock(&locals[w]).len())?;
        let stolen: Vec<usize> = {
            let mut theirs = lock(&locals[victim]);
            let take = theirs.len().div_ceil(2);
            theirs.drain(..take).collect()
        };
        let mut iter = stolen.into_iter();
        let first = iter.next()?;
        lock(&locals[me]).extend(iter);
        Some(first)
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let next_task = &next_task;
                let slots = &slots;
                let f = &f;
                scope.spawn(move || {
                    let mut chunk: Vec<(usize, R)> = Vec::new();
                    let mut state = S::default();
                    let mut panics: Vec<TaskPanic> = Vec::new();
                    let mut idle_spins = 0u32;
                    loop {
                        match next_task(me) {
                            Some(slot) => {
                                idle_spins = 0;
                                // A claimed index is owned by exactly one
                                // worker, so the slot is always full here.
                                let (index, item) =
                                    lock(&slots[slot]).take().expect("task claimed twice");
                                match std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    f(&mut state, item)
                                })) {
                                    Ok(r) => chunk.push((index, r)),
                                    Err(payload) => panics.push(TaskPanic {
                                        index,
                                        message: panic_message(payload),
                                    }),
                                }
                            }
                            None => {
                                // Queues drained — but a peer may still
                                // publish stealable work; yield a few times
                                // before concluding the pool is dry.
                                idle_spins += 1;
                                if idle_spins > 32 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    (chunk, state, panics)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order_and_runs_every_item() {
        let items: Vec<u64> = (0..500).collect();
        let calls = AtomicUsize::new(0);
        let out = parallel_map(items.clone(), 8, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x * 3 + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 500);
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_edge_worker_counts() {
        for workers in [0, 1, 2, 64] {
            let out = parallel_map(vec![10u32, 20, 30], workers, |x| x + 1);
            assert_eq!(out, vec![11, 21, 31], "workers={workers}");
        }
        let empty: Vec<u32> = parallel_map(Vec::new(), 4, |x: u32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn worker_states_partition_the_work() {
        // Each worker folds item count into its local state; the merged
        // states must account for every item exactly once.
        let per_worker = parallel_map_workers(
            (0..300u32).collect::<Vec<_>>(),
            4,
            |x| x,
            |count: &mut u64, _| *count += 1,
        );
        let total: u64 = per_worker.iter().map(|(_, c, _)| c).sum();
        assert_eq!(total, 300);
        let items: usize = per_worker.iter().map(|(chunk, _, _)| chunk.len()).sum();
        assert_eq!(items, 300);
        assert!(per_worker.iter().all(|(_, _, panics)| panics.is_empty()));
    }

    /// A panic hook that swallows the default stderr backtrace chatter for
    /// the duration of a closure, so panic-isolation tests stay quiet. The
    /// hook is process-global, so concurrent callers are serialized.
    fn with_quiet_panics<R>(body: impl FnOnce() -> R) -> R {
        static HOOK: Mutex<()> = Mutex::new(());
        let _guard = lock(&HOOK);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = body();
        std::panic::set_hook(prev);
        r
    }

    #[test]
    fn panicking_task_yields_error_record_not_abort() {
        for workers in [1, 2, 8] {
            let out = with_quiet_panics(|| {
                try_parallel_map((0..100u32).collect::<Vec<_>>(), workers, |x| {
                    if x == 37 {
                        panic!("injected failure on {x}");
                    }
                    x * 2
                })
            });
            assert_eq!(out.len(), 100, "workers={workers}");
            for (i, slot) in out.iter().enumerate() {
                if i == 37 {
                    assert_eq!(
                        slot,
                        &Err(TaskPanic {
                            index: 37,
                            message: "injected failure on 37".to_owned()
                        }),
                        "workers={workers}"
                    );
                } else {
                    assert_eq!(slot, &Ok(i as u32 * 2), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn parallel_map_propagates_lowest_index_panic() {
        // Two tasks panic; whichever worker hits one first must not decide
        // the propagated message — the lowest input index always wins.
        for workers in [1, 2, 8] {
            let caught = with_quiet_panics(|| {
                std::panic::catch_unwind(|| {
                    parallel_map((0..64u32).collect::<Vec<_>>(), workers, |x| {
                        if x == 11 || x == 52 {
                            panic!("boom {x}");
                        }
                        x
                    })
                })
            });
            let payload = caught.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .expect("rendered message")
                .clone();
            assert_eq!(msg, "task 11 panicked: boom 11", "workers={workers}");
        }
    }

    #[test]
    fn parallel_map_with_threads_state_and_preserves_order() {
        for workers in [1, 2, 8] {
            let (results, states): (Vec<u64>, Vec<Vec<u64>>) = parallel_map_with(
                (0..300u64).collect::<Vec<_>>(),
                workers,
                |seen: &mut Vec<u64>, x| {
                    seen.push(x);
                    x * 2
                },
            );
            assert_eq!(
                results,
                (0..300u64).map(|x| x * 2).collect::<Vec<_>>(),
                "workers={workers}"
            );
            // The states partition the input: every item lands in exactly
            // one worker's shard.
            let mut all: Vec<u64> = states.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..300u64).collect::<Vec<_>>(), "workers={workers}");
            assert!(states.len() <= workers.max(1), "workers={workers}");
        }
    }

    #[test]
    fn parallel_map_with_propagates_lowest_index_panic() {
        for workers in [1, 2, 8] {
            let caught = with_quiet_panics(|| {
                std::panic::catch_unwind(|| {
                    parallel_map_with::<_, u32, u64, _>(
                        (0..64u32).collect::<Vec<_>>(),
                        workers,
                        |count, x| {
                            *count += 1;
                            if x == 9 || x == 40 {
                                panic!("boom {x}");
                            }
                            x
                        },
                    )
                })
            });
            let payload = caught.expect_err("panic must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .expect("rendered message")
                .clone();
            assert_eq!(msg, "task 9 panicked: boom 9", "workers={workers}");
        }
    }

    #[test]
    fn try_parallel_map_is_byte_identical_across_worker_counts() {
        let run = |workers| {
            with_quiet_panics(|| {
                try_parallel_map((0..200u64).collect::<Vec<_>>(), workers, |x| {
                    if x % 41 == 0 {
                        panic!("divisible {x}");
                    }
                    x + 7
                })
            })
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(8));
    }
}
