//! A hand-rolled JSON object serializer — just enough for the workspace's
//! JSON-lines reports, with correct string escaping and deterministic
//! number formatting (no external dependencies, per the hermetic-build
//! rule). Promoted out of `lpmem-bench` so the sweep engine and the
//! design-space explorer serialize through the same code path and their
//! reports stay byte-comparable.

/// An in-progress JSON object; builder-style, finished with
/// [`finish`](JsonObject::finish).
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field. Finite values use Rust's shortest-roundtrip
    /// formatting (deterministic for a given value); non-finite values
    /// become `null` (JSON has no NaN/Infinity).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Finishes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        JsonObject::new()
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_flat_object_in_insertion_order() {
        let s = JsonObject::new()
            .str("a", "x")
            .u64("b", 7)
            .f64("c", 0.5)
            .finish();
        assert_eq!(s, r#"{"a":"x","b":7,"c":0.5}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn escapes_strings_and_rejects_non_finite_floats() {
        let s = JsonObject::new().str("k", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(s, "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}");
        let s = JsonObject::new()
            .f64("x", f64::NAN)
            .f64("y", f64::INFINITY)
            .finish();
        assert_eq!(s, r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        // Shortest-roundtrip formatting is deterministic per value — the
        // property every byte-identical report depends on.
        for v in [0.1, 1.0 / 3.0, 12345.678901234567, 1e-300] {
            let s = JsonObject::new().f64("v", v).finish();
            let body = s.trim_start_matches("{\"v\":").trim_end_matches('}');
            assert_eq!(body.parse::<f64>().unwrap(), v);
        }
    }
}
