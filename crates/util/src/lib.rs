//! In-tree testkit for the lpmem workspace: everything the crates need to
//! build, test, and benchmark **hermetically** — with zero external
//! dependencies and no registry access.
//!
//! Three pillars:
//!
//! * [`rng`] — deterministic PRNG: a [`SplitMix64`](rng::SplitMix64) core
//!   used for seeding and a [`Rng`](rng::Rng) (xoshiro256++) stream with
//!   `rand`-style helpers (ranges, booleans, shuffles, weighted choice).
//! * [`prop`] — a seeded property-test harness replacing `proptest`:
//!   configurable case counts, deterministic case seeds, and failing-seed
//!   reporting on panic so any violation is reproducible.
//! * [`bench`] — a std-only timing harness replacing `criterion`:
//!   warmup + median-of-N sampling, runnable as a normal binary.
//!
//! ```
//! use lpmem_util::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod prop;
pub mod rng;

pub use prop::Props;
pub use rng::{Rng, SplitMix64};
