//! In-tree testkit for the lpmem workspace: everything the crates need to
//! build, test, and benchmark **hermetically** — with zero external
//! dependencies and no registry access.
//!
//! Five pillars:
//!
//! * [`rng`] — deterministic PRNG: a [`SplitMix64`](rng::SplitMix64) core
//!   used for seeding and a [`Rng`](rng::Rng) (xoshiro256++) stream with
//!   `rand`-style helpers (ranges, booleans, shuffles, weighted choice).
//! * [`prop`] — a seeded property-test harness replacing `proptest`:
//!   configurable case counts, deterministic case seeds, and failing-seed
//!   reporting on panic so any violation is reproducible.
//! * [`bench`] — a std-only timing harness replacing `criterion`:
//!   warmup + median-of-N sampling, runnable as a normal binary.
//! * [`pool`] — a work-stealing thread pool whose
//!   [`parallel_map`](pool::parallel_map) preserves input order at any
//!   worker count (the substrate of every byte-identical parallel report).
//! * [`json`] — a deterministic JSON-object serializer for the
//!   machine-readable JSONL reports.
//!
//! ```
//! use lpmem_util::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! ```

#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod pool;
pub mod prop;
pub mod rng;

pub use json::JsonObject;
pub use pool::{
    parallel_map, parallel_map_with, parallel_map_workers, try_parallel_map, TaskPanic,
};
pub use prop::Props;
pub use rng::{Rng, SplitMix64};
