//! Seeded property-test harness.
//!
//! A minimal, deterministic replacement for `proptest`: a property is a
//! closure over an [`Rng`], the harness runs it for a configurable number
//! of cases, and every case gets its own seed derived from the base seed
//! through [`SplitMix64`]. When a case panics, the harness reports the
//! case index and **case seed** before re-panicking, so any failure can be
//! replayed exactly:
//!
//! ```text
//! LPMEM_PROP_SEED=0x8c91…cafe cargo test -p lpmem-compress diff_roundtrips
//! ```
//!
//! Environment knobs:
//!
//! * `LPMEM_PROP_CASES` — overrides the case count of every property
//!   (e.g. `LPMEM_PROP_CASES=10000` for a soak run).
//! * `LPMEM_PROP_SEED` — runs a *single* case with the given seed
//!   (decimal or `0x`-hex), replaying a reported failure.
//!
//! ```
//! use lpmem_util::Props;
//!
//! Props::new("addition commutes").cases(128).run(|rng| {
//!     let (a, b) = (rng.next_u32() as u64, rng.next_u32() as u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use std::panic::{self, AssertUnwindSafe};

use crate::rng::{Rng, SplitMix64};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// A configured property run: name, case count, and base seed.
#[derive(Debug, Clone)]
pub struct Props {
    name: String,
    cases: u32,
    seed: u64,
}

impl Props {
    /// Creates a property named `name` with the default case count and a
    /// base seed derived from the name (so distinct properties explore
    /// distinct streams even with identical bodies).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        Props {
            name,
            cases: DEFAULT_CASES,
            seed,
        }
    }

    /// Sets the number of generated cases (default [`DEFAULT_CASES`]).
    ///
    /// # Panics
    ///
    /// Panics if `cases` is zero.
    pub fn cases(mut self, cases: u32) -> Self {
        assert!(cases > 0, "a property needs at least one case");
        self.cases = cases;
        self
    }

    /// Sets the base seed (default: derived from the property name).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs the property, panicking with the failing case seed on the
    /// first violated case.
    ///
    /// # Panics
    ///
    /// Re-panics with case/seed context whenever `property` panics.
    pub fn run<F>(&self, mut property: F)
    where
        F: FnMut(&mut Rng),
    {
        if let Some(seed) = env_seed() {
            // Replay mode: exactly one case, the reported seed.
            self.run_case(&mut property, 0, 1, seed);
            return;
        }
        let cases = env_cases().unwrap_or(self.cases);
        let mut sm = SplitMix64::new(self.seed);
        for case in 0..cases {
            let case_seed = sm.next_u64();
            self.run_case(&mut property, case, cases, case_seed);
        }
    }

    fn run_case<F>(&self, property: &mut F, case: u32, cases: u32, case_seed: u64)
    where
        F: FnMut(&mut Rng),
    {
        let mut rng = Rng::seed_from_u64(case_seed);
        let result = panic::catch_unwind(AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = result {
            let cause = payload_message(&payload);
            panic!(
                "property '{}' failed at case {}/{} (seed {:#018x}): {}\n\
                 replay with: LPMEM_PROP_SEED={:#x} cargo test",
                self.name,
                case + 1,
                cases,
                case_seed,
                cause,
                case_seed,
            );
        }
    }
}

/// Runs `property` for the default number of cases. Shorthand for
/// [`Props::new`]`(name).run(property)`.
pub fn check<F>(name: &str, property: F)
where
    F: FnMut(&mut Rng),
{
    Props::new(name).run(property);
}

fn env_cases() -> Option<u32> {
    std::env::var("LPMEM_PROP_CASES").ok()?.trim().parse().ok()
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("LPMEM_PROP_SEED").ok()?;
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn runs_the_configured_number_of_cases() {
        let count = AtomicU32::new(0);
        Props::new("counts cases").cases(37).run(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn case_streams_are_deterministic() {
        let mut first = Vec::new();
        Props::new("stream")
            .cases(8)
            .run(|rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        Props::new("stream")
            .cases(8)
            .run(|rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn distinct_names_explore_distinct_streams() {
        let mut a = Vec::new();
        Props::new("alpha")
            .cases(4)
            .run(|rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        Props::new("beta")
            .cases(4)
            .run(|rng| b.push(rng.next_u64()));
        assert_ne!(a, b);
    }

    #[test]
    fn failure_reports_the_failing_seed() {
        let result = panic::catch_unwind(|| {
            Props::new("always fails").cases(16).run(|rng| {
                let v = rng.next_u64();
                assert!(v == 0, "v = {v}");
            });
        });
        let payload = result.expect_err("the property must fail");
        let message = payload_message(&*payload);
        assert!(message.contains("seed 0x"), "no seed in: {message}");
        assert!(
            message.contains("LPMEM_PROP_SEED="),
            "no replay hint in: {message}"
        );
        assert!(
            message.contains("always fails"),
            "no property name in: {message}"
        );
        assert!(
            message.contains("case 1/16"),
            "first case must fail: {message}"
        );
    }

    #[test]
    fn reported_seed_replays_the_failure() {
        // Find the seed the harness reports for a failing property…
        let result = panic::catch_unwind(|| {
            Props::new("replayable").cases(4).run(|rng| {
                let v = rng.next_u64();
                assert!(v % 2 == 1, "even draw {v:#x}");
            });
        });
        let message = payload_message(&*result.expect_err("must fail"));
        let seed_hex = message
            .split("seed ")
            .nth(1)
            .and_then(|rest| rest.split(')').next())
            .expect("message carries the seed");
        let seed = u64::from_str_radix(seed_hex.trim_start_matches("0x"), 16).unwrap();
        // …then replaying that exact seed must reproduce the violation.
        let mut rng = Rng::seed_from_u64(seed);
        assert_eq!(rng.next_u64() % 2, 0, "replayed case must still violate");
    }

    #[test]
    #[should_panic(expected = "at least one case")]
    fn zero_cases_is_rejected() {
        let _ = Props::new("empty").cases(0);
    }
}
