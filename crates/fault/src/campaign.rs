//! The deterministic fault-injection campaign engine.
//!
//! A campaign walks every word of every bank in a [`FaultExposure`] and
//! draws that word's upsets from a PRNG seeded by
//! `SplitMix64::derive(seed, [domain, bank, word, TAG_FAULT])` — a pure
//! function of the word's *logical coordinates*, never of execution
//! order, so a campaign sharded across any number of workers produces
//! byte-identical [`ReliabilityReport`]s. All outcome accounting is
//! integer; floats appear only in the per-bit upset probability (a model
//! parameter) and at render time.
//!
//! The per-bit upset probability combines both fault models: single-event
//! upsets accrue over a bank's powered ticks at the technology's
//! [`seu_fit_per_mbit`](Technology::seu_fit_per_mbit) rate, and retention
//! failures accrue over its drowsy-sleep ticks at that rate times
//! [`retention_drowsy_mult`](Technology::retention_drowsy_mult) — sleep
//! residency (from `lpmem-partition::sleep`) directly scales the fault
//! rate. Real FIT rates are invisible at simulation timescales, so a
//! campaign applies a beam-style acceleration factor
//! ([`FaultSpec::rate_scale`]), exactly like accelerated soft-error
//! testing of physical parts.

use lpmem_energy::Technology;
use lpmem_util::{Rng, SplitMix64};

use crate::codec::{parity_decode, parity_encode, secded_decode, secded_encode, DecodeOutcome};
use crate::Protection;

/// Domain tag terminating every fault-draw derivation path.
pub const TAG_FAULT: u64 = 0xFA17;

/// Seconds per logical tick (one trace event at a 100 MHz reference
/// clock).
const TICK_SECONDS: f64 = 1e-8;

/// Hours in the FIT denominator (failures per 10⁹ device-hours).
const FIT_HOURS: f64 = 1e9;

/// Bits per Mbit in the FIT denominator.
const MBIT_BITS: f64 = (1u64 << 20) as f64;

/// One reliability configuration: an acceleration factor for the
/// technology's fault rates plus a protection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultSpec {
    /// Beam-style acceleration factor on the technology's FIT rates.
    /// `0` disables injection entirely.
    pub rate_scale: u64,
    /// Protection scheme the memory words are stored under.
    pub protection: Protection,
}

impl FaultSpec {
    /// Default acceleration factor: scales nominal FIT rates (~10⁻²⁴
    /// upsets per bit-tick) into the regime where a kernel-sized
    /// campaign observes tens of faults.
    pub const DEFAULT_ACCEL: u64 = 1_000_000_000_000_000;

    /// The disabled configuration: no injection, no protection — the
    /// differential-guarantee baseline that must reproduce every
    /// pre-fault report byte-for-byte.
    pub fn off() -> FaultSpec {
        FaultSpec {
            rate_scale: 0,
            protection: Protection::None,
        }
    }

    /// An accelerated campaign at [`DEFAULT_ACCEL`](Self::DEFAULT_ACCEL)
    /// under the given protection.
    pub fn accelerated(protection: Protection) -> FaultSpec {
        FaultSpec {
            rate_scale: Self::DEFAULT_ACCEL,
            protection,
        }
    }

    /// Whether this spec changes anything relative to today's flows.
    pub fn enabled(&self) -> bool {
        self.rate_scale > 0 || self.protection != Protection::None
    }

    /// Report/CLI label: `off`, or `<protection>:<rate_scale>`.
    pub fn label(&self) -> String {
        if !self.enabled() {
            "off".to_owned()
        } else {
            format!("{}:{}", self.protection.name(), self.rate_scale)
        }
    }

    /// Parses a label: `off`, a bare protection name (accelerated at the
    /// default factor), or `<protection>:<rate_scale>`.
    pub fn parse(s: &str) -> Option<FaultSpec> {
        let s = s.trim().to_ascii_lowercase();
        if s == "off" {
            return Some(FaultSpec::off());
        }
        match s.split_once(':') {
            None => Protection::parse(&s).map(FaultSpec::accelerated),
            Some((prot, scale)) => {
                let protection = Protection::parse(prot)?;
                let rate_scale = scale.parse().ok()?;
                Some(FaultSpec {
                    rate_scale,
                    protection,
                })
            }
        }
    }
}

/// Fault exposure of one memory bank: its size and how long it sat in
/// each power state. All integers, derived from trace replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BankExposure {
    /// 32-bit data words in the bank.
    pub words: u64,
    /// Ticks the bank spent powered at nominal Vdd.
    pub active_ticks: u64,
    /// Ticks the bank spent in drowsy retention sleep.
    pub sleep_ticks: u64,
    /// Word reads served by the bank (drives the consumption model).
    pub reads: u64,
    /// Word writes served by the bank (drives encode-energy accounting;
    /// writes refresh words, so they do not consume upsets).
    pub writes: u64,
}

/// The campaign's view of a whole memory: its banks plus a domain tag
/// separating independent fault universes (e.g. per-device campaigns).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultExposure {
    /// Derivation-path domain (0 for a flow's data memory; fleet
    /// campaigns use the device index).
    pub domain: u64,
    /// Per-bank exposure records.
    pub banks: Vec<BankExposure>,
}

impl FaultExposure {
    /// A single-bank exposure with no sleep residency — the degenerate
    /// memory shape used by flows without a banked data memory model.
    pub fn single_bank(words: u64, active_ticks: u64, reads: u64) -> FaultExposure {
        FaultExposure {
            domain: 0,
            banks: vec![BankExposure {
                words,
                active_ticks,
                sleep_ticks: 0,
                reads,
                writes: 0,
            }],
        }
    }

    /// Total word accesses (reads + writes) across every bank — the unit
    /// the protection's encode/decode energy is charged per.
    pub fn accesses(&self) -> u64 {
        self.banks.iter().map(|b| b.reads + b.writes).sum()
    }
}

/// Integer outcome accounting of one campaign. Every injected bit lands
/// in exactly one of the four outcome classes, so
/// `injected == masked + detected + corrected + silent` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReliabilityReport {
    /// Bits flipped by the injector.
    pub injected: u64,
    /// Flipped bits in words the workload never consumed.
    pub masked: u64,
    /// Flipped bits the protection detected but could not repair.
    pub detected: u64,
    /// Flipped bits the protection repaired (consumer saw correct data).
    pub corrected: u64,
    /// Flipped bits that reached the consumer as wrong data undetected —
    /// silent data corruption, the fourth Pareto objective.
    pub silent: u64,
}

impl ReliabilityReport {
    /// Whether the campaign observed no faults at all.
    pub fn is_empty(&self) -> bool {
        self.injected == 0
    }

    /// Folds another report into this one (campaigns over disjoint
    /// exposures compose by addition).
    pub fn merge(&mut self, other: &ReliabilityReport) {
        self.injected += other.injected;
        self.masked += other.masked;
        self.detected += other.detected;
        self.corrected += other.corrected;
        self.silent += other.silent;
    }
}

/// Per-bit upset probability of a bank under `spec`: the accelerated
/// FIT rate integrated over the bank's active and (drowsy-penalized)
/// sleep ticks, clamped to 0.25 so the Bernoulli model stays sane under
/// extreme acceleration.
fn upset_probability(spec: &FaultSpec, tech: &Technology, bank: &BankExposure) -> f64 {
    let per_bit_tick = tech.seu_fit_per_mbit / MBIT_BITS / (FIT_HOURS * 3600.0) * TICK_SECONDS;
    let effective_ticks =
        bank.active_ticks as f64 + tech.retention_drowsy_mult * bank.sleep_ticks as f64;
    (per_bit_tick * spec.rate_scale as f64 * effective_ticks).min(0.25)
}

/// Runs one deterministic fault campaign over `exposure`.
///
/// For every word: the stored data and the per-bit flip mask are drawn
/// from the word's own derived PRNG stream; a flipped word is *consumed*
/// with probability `reads / (reads + words)` of its bank (unconsumed
/// upsets are masked — overwritten or never read); consumed words pass
/// through the protection's **real** encode/flip/decode path and are
/// classified by comparing the decoded data against the original, so
/// SECDED miscorrections on triple flips are honestly accounted as
/// silent.
pub fn run_campaign(
    spec: &FaultSpec,
    tech: &Technology,
    exposure: &FaultExposure,
    seed: u64,
) -> ReliabilityReport {
    let mut report = ReliabilityReport::default();
    if spec.rate_scale == 0 {
        return report;
    }
    let bits = spec.protection.total_bits();
    for (b, bank) in exposure.banks.iter().enumerate() {
        let p_bit = upset_probability(spec, tech, bank);
        if p_bit <= 0.0 || bank.words == 0 {
            continue;
        }
        let p_consume = bank.reads as f64 / (bank.reads as f64 + bank.words as f64);
        for w in 0..bank.words {
            let word_seed = SplitMix64::derive(seed, &[exposure.domain, b as u64, w, TAG_FAULT]);
            let mut rng = Rng::seed_from_u64(word_seed);
            let data = u32::try_from(rng.next_u64() & 0xFFFF_FFFF).expect("masked to 32 bits");
            let mut mask = 0u64;
            for bit in 0..bits {
                if rng.gen_bool(p_bit) {
                    mask |= 1u64 << bit;
                }
            }
            let k = u64::from(mask.count_ones());
            if k == 0 {
                continue;
            }
            report.injected += k;
            if !rng.gen_bool(p_consume) {
                report.masked += k;
                continue;
            }
            match spec.protection {
                Protection::None => report.silent += k,
                Protection::Parity => {
                    let (_, outcome) = parity_decode(parity_encode(data) ^ mask);
                    match outcome {
                        DecodeOutcome::Detected => report.detected += k,
                        _ => report.silent += k,
                    }
                }
                Protection::Secded => {
                    let (decoded, outcome) = secded_decode(secded_encode(data) ^ mask);
                    match outcome {
                        DecodeOutcome::Detected => report.detected += k,
                        _ if decoded == data => report.corrected += k,
                        _ => report.silent += k,
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exposure() -> FaultExposure {
        FaultExposure {
            domain: 0,
            banks: vec![
                BankExposure {
                    words: 2048,
                    active_ticks: 30_000,
                    sleep_ticks: 0,
                    reads: 9_000,
                    writes: 3_000,
                },
                BankExposure {
                    words: 1024,
                    active_ticks: 5_000,
                    sleep_ticks: 25_000,
                    reads: 700,
                    writes: 250,
                },
            ],
        }
    }

    fn tech() -> Technology {
        Technology::tech90()
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let r = run_campaign(&FaultSpec::off(), &tech(), &exposure(), 2003);
        assert_eq!(r, ReliabilityReport::default());
        // Protection alone (rate 0) also injects nothing.
        let spec = FaultSpec {
            rate_scale: 0,
            protection: Protection::Secded,
        };
        assert!(run_campaign(&spec, &tech(), &exposure(), 2003).is_empty());
    }

    #[test]
    fn outcomes_conserve_injected_bits() {
        for protection in Protection::ALL {
            let spec = FaultSpec::accelerated(protection);
            let r = run_campaign(&spec, &tech(), &exposure(), 2003);
            assert!(r.injected > 0, "{protection:?}: no faults at accel rate");
            assert_eq!(
                r.injected,
                r.masked + r.detected + r.corrected + r.silent,
                "{protection:?}: {r:?}"
            );
        }
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let spec = FaultSpec::accelerated(Protection::Secded);
        let a = run_campaign(&spec, &tech(), &exposure(), 7);
        let b = run_campaign(&spec, &tech(), &exposure(), 7);
        assert_eq!(a, b);
        // Some other seed in a small window must decorrelate (any single
        // pair could collide on counts by chance; a window cannot).
        let differs = (8..16).any(|s| run_campaign(&spec, &tech(), &exposure(), s) != a);
        assert!(differs, "seeds 8..16 all produced {a:?}");
    }

    #[test]
    fn secded_eliminates_silent_single_bit_corruption() {
        // At moderate rates nearly all faulty words carry one flip; with
        // SECDED those are corrected, so silent corruption collapses
        // versus no protection.
        let none = run_campaign(
            &FaultSpec::accelerated(Protection::None),
            &tech(),
            &exposure(),
            2003,
        );
        let secded = run_campaign(
            &FaultSpec::accelerated(Protection::Secded),
            &tech(),
            &exposure(),
            2003,
        );
        assert!(none.silent > 0);
        assert!(secded.corrected > 0);
        assert!(
            secded.silent * 10 < none.silent,
            "secded {} vs none {}",
            secded.silent,
            none.silent
        );
    }

    #[test]
    fn sleep_residency_raises_fault_counts() {
        // Same bank, same powered duration — but spending most of it in
        // drowsy sleep must raise injections via the retention multiplier.
        let awake = FaultExposure::single_bank(4096, 40_000, 1_000);
        let drowsy = FaultExposure {
            domain: 0,
            banks: vec![BankExposure {
                words: 4096,
                active_ticks: 8_000,
                sleep_ticks: 32_000,
                reads: 1_000,
                writes: 0,
            }],
        };
        let spec = FaultSpec::accelerated(Protection::None);
        let a = run_campaign(&spec, &tech(), &awake, 2003);
        let d = run_campaign(&spec, &tech(), &drowsy, 2003);
        assert!(
            d.injected > a.injected,
            "drowsy {} vs awake {}",
            d.injected,
            a.injected
        );
    }

    #[test]
    fn spec_labels_roundtrip_through_parse() {
        for spec in [
            FaultSpec::off(),
            FaultSpec::accelerated(Protection::Parity),
            FaultSpec {
                rate_scale: 42,
                protection: Protection::Secded,
            },
        ] {
            assert_eq!(FaultSpec::parse(&spec.label()), Some(spec));
        }
        assert_eq!(
            FaultSpec::parse("secded"),
            Some(FaultSpec::accelerated(Protection::Secded))
        );
        assert!(FaultSpec::parse("tmr").is_none());
        assert!(FaultSpec::parse("secded:x").is_none());
    }
}
