//! Parity and SECDED(39,32) codeword arithmetic.
//!
//! The SECDED code is the classic Hamming(38,32) extended with an overall
//! parity bit: 32 data bits, 6 Hamming check bits at the power-of-two
//! positions `1,2,4,8,16,32`, and the overall parity at position `0` —
//! 39 bits total in the low bits of a `u64`. Single-bit errors are
//! located by the syndrome and corrected; double-bit errors flip the
//! syndrome without flipping the overall parity and are detected but not
//! corrected. Parity codewords are 33 bits: data plus one even-parity
//! bit at position 32, detecting any odd number of flips.

/// Total bit width of a SECDED(39,32) codeword.
pub const SECDED_BITS: u32 = 39;

/// Total bit width of a parity codeword (32 data + 1 parity).
pub const PARITY_BITS: u32 = 33;

/// Outcome of decoding a (possibly corrupted) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// No error observed.
    Clean,
    /// A single-bit error was located and repaired.
    Corrected,
    /// An uncorrectable error was detected (double flip, or a syndrome
    /// pointing outside the codeword).
    Detected,
}

/// Hamming positions (1..=38) that carry data bits, in data-bit order:
/// every position that is not a power of two.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..SECDED_BITS).filter(|p| !p.is_power_of_two())
}

/// Encodes 32 data bits into a 39-bit SECDED codeword.
pub fn secded_encode(data: u32) -> u64 {
    let mut word: u64 = 0;
    for (i, pos) in data_positions().enumerate() {
        if (data >> i) & 1 == 1 {
            word |= 1u64 << pos;
        }
    }
    // Each Hamming check bit covers the positions sharing its index bit.
    for check in [1u32, 2, 4, 8, 16, 32] {
        let mut parity = 0u64;
        for pos in 1..SECDED_BITS {
            if pos & check != 0 && pos != check {
                parity ^= (word >> pos) & 1;
            }
        }
        word |= parity << check;
    }
    // Overall parity (position 0) over the other 38 bits.
    let overall = ((word >> 1).count_ones() & 1) as u64;
    word | overall
}

/// Extracts the 32 data bits from a 39-bit codeword (no checking).
fn secded_extract(word: u64) -> u32 {
    let mut data: u32 = 0;
    for (i, pos) in data_positions().enumerate() {
        if (word >> pos) & 1 == 1 {
            data |= 1 << i;
        }
    }
    data
}

/// Decodes a 39-bit SECDED codeword, repairing a single-bit error.
/// Returns the (best-effort) data word and the decode outcome. Triple
/// flips may alias to a valid single-error syndrome and miscorrect —
/// that is the code's documented limit, and the campaign accounts such
/// words as silent corruptions by comparing against the original data.
pub fn secded_decode(word: u64) -> (u32, DecodeOutcome) {
    let mut syndrome: u32 = 0;
    for check in [1u32, 2, 4, 8, 16, 32] {
        let mut parity = 0u64;
        for pos in 1..SECDED_BITS {
            if pos & check != 0 {
                parity ^= (word >> pos) & 1;
            }
        }
        if parity == 1 {
            syndrome |= check;
        }
    }
    let overall_ok = (word & ((1u64 << SECDED_BITS) - 1)).count_ones() & 1 == 0;
    match (syndrome, overall_ok) {
        (0, true) => (secded_extract(word), DecodeOutcome::Clean),
        // Overall parity alone is wrong: the parity bit itself flipped.
        (0, false) => (secded_extract(word), DecodeOutcome::Corrected),
        // Syndrome set but overall parity even: two flips cancelled in
        // the parity — detected, not correctable.
        (_, true) => (secded_extract(word), DecodeOutcome::Detected),
        (s, false) if s < SECDED_BITS => {
            let repaired = word ^ (1u64 << s);
            (secded_extract(repaired), DecodeOutcome::Corrected)
        }
        // Syndrome points outside the codeword: uncorrectable.
        (_, false) => (secded_extract(word), DecodeOutcome::Detected),
    }
}

/// Encodes 32 data bits into a 33-bit even-parity codeword.
pub fn parity_encode(data: u32) -> u64 {
    let parity = (data.count_ones() & 1) as u64;
    u64::from(data) | parity << 32
}

/// Decodes a 33-bit parity codeword: any odd number of flips is
/// detected; even flip counts pass silently (the code's limit).
pub fn parity_decode(word: u64) -> (u32, DecodeOutcome) {
    let data = u32::try_from(word & 0xFFFF_FFFF).expect("masked to 32 bits");
    if (word & ((1u64 << PARITY_BITS) - 1)).count_ones() & 1 == 0 {
        (data, DecodeOutcome::Clean)
    } else {
        (data, DecodeOutcome::Detected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpmem_util::Rng;

    fn sample_words() -> Vec<u32> {
        let mut rng = Rng::seed_from_u64(0xfa17);
        let mut words: Vec<u32> = (0..64).map(|_| rng.next_u64() as u32).collect();
        words.extend([0, u32::MAX, 1, 0x8000_0000, 0xAAAA_AAAA, 0x5555_5555]);
        words
    }

    #[test]
    fn secded_round_trips_clean_words() {
        for data in sample_words() {
            let word = secded_encode(data);
            assert_eq!(word >> SECDED_BITS, 0, "codeword wider than 39 bits");
            assert_eq!(secded_decode(word), (data, DecodeOutcome::Clean));
        }
    }

    #[test]
    fn secded_corrects_every_single_bit_flip() {
        for data in sample_words() {
            let word = secded_encode(data);
            for bit in 0..SECDED_BITS {
                let (decoded, outcome) = secded_decode(word ^ (1u64 << bit));
                assert_eq!(outcome, DecodeOutcome::Corrected, "bit {bit}");
                assert_eq!(decoded, data, "bit {bit} miscorrected");
            }
        }
    }

    #[test]
    fn secded_detects_every_double_bit_flip_without_miscorrection() {
        for data in sample_words().into_iter().take(16) {
            let word = secded_encode(data);
            for a in 0..SECDED_BITS {
                for b in (a + 1)..SECDED_BITS {
                    let corrupted = word ^ (1u64 << a) ^ (1u64 << b);
                    let (_, outcome) = secded_decode(corrupted);
                    assert_eq!(
                        outcome,
                        DecodeOutcome::Detected,
                        "flips {a},{b} on {data:#x} not detected"
                    );
                }
            }
        }
    }

    #[test]
    fn parity_round_trips_and_detects_odd_flips() {
        for data in sample_words() {
            let word = parity_encode(data);
            assert_eq!(word >> PARITY_BITS, 0);
            assert_eq!(parity_decode(word), (data, DecodeOutcome::Clean));
            for bit in 0..PARITY_BITS {
                let (_, outcome) = parity_decode(word ^ (1u64 << bit));
                assert_eq!(outcome, DecodeOutcome::Detected, "bit {bit}");
            }
        }
    }

    #[test]
    fn parity_misses_even_flips() {
        // The documented limit: an even number of flips preserves parity.
        let word = parity_encode(0xDEAD_BEEF);
        let (_, outcome) = parity_decode(word ^ 0b11);
        assert_eq!(outcome, DecodeOutcome::Clean);
    }
}
