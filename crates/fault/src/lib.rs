//! Deterministic soft-error injection and protection modeling.
//!
//! Aggressive voltage scaling and bank sleep — the energy levers every
//! other crate in this workspace optimizes — spend noise margin, and the
//! DATE 2003 reliability story asks what fraction of the energy saving is
//! bought with silent data corruption. This crate answers it with three
//! pieces:
//!
//! - **Fault models** ([`campaign`]): single-event upsets at the
//!   technology's FIT rate over a bank's powered ticks, plus retention
//!   failures scaling with its drowsy-sleep residency. Every draw comes
//!   from `SplitMix64::derive(seed, [domain, bank, word, TAG_FAULT])`, so
//!   campaigns are byte-identical at any worker count.
//! - **Protection schemes** ([`Protection`]): none, parity (detect), and
//!   SECDED(39,32) (correct 1, detect 2) with **real** codeword
//!   arithmetic ([`codec`]) and real costs — encode/decode energy per
//!   access, check-bit cell area, and decode latency.
//! - **Outcome accounting** ([`ReliabilityReport`]): all-integer
//!   injected/masked/detected/corrected/silent counts that merge
//!   commutatively, join `FlowSummary`, and give the design-space
//!   explorer its fourth objective (silent corruptions).
//!
//! See `DESIGN.md` §12 for the model derivation and the differential
//! guarantee (`Protection::None` + zero rate reproduces every pre-fault
//! report byte-for-byte).

pub mod campaign;
pub mod codec;

use lpmem_energy::{AreaReport, Energy, Technology};

pub use campaign::{
    run_campaign, BankExposure, FaultExposure, FaultSpec, ReliabilityReport, TAG_FAULT,
};
pub use codec::{
    parity_decode, parity_encode, secded_decode, secded_encode, DecodeOutcome, PARITY_BITS,
    SECDED_BITS,
};

/// A word-granular memory protection scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Protection {
    /// Unprotected storage: every consumed upset is silent.
    None,
    /// One even-parity bit per word: detects odd flip counts, corrects
    /// nothing, misses even flip counts.
    Parity,
    /// SECDED(39,32): corrects single flips, detects doubles; triples
    /// may miscorrect (accounted as silent by the campaign).
    Secded,
}

impl Protection {
    /// Every scheme, in report order.
    pub const ALL: [Protection; 3] = [Protection::None, Protection::Parity, Protection::Secded];

    /// Report/CLI key.
    pub fn name(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::Parity => "parity",
            Protection::Secded => "secded",
        }
    }

    /// Parses a report/CLI key (case-insensitive).
    pub fn parse(s: &str) -> Option<Protection> {
        Protection::ALL
            .into_iter()
            .find(|p| p.name() == s.trim().to_ascii_lowercase())
    }

    /// Check bits stored per 32-bit data word.
    pub fn check_bits(self) -> u32 {
        match self {
            Protection::None => 0,
            Protection::Parity => 1,
            Protection::Secded => 7,
        }
    }

    /// Total codeword bits per 32-bit data word.
    pub fn total_bits(self) -> u32 {
        32 + self.check_bits()
    }

    /// Storage blow-up factor of the protected array, `(32 + c) / 32`.
    pub fn storage_factor(self) -> f64 {
        f64::from(self.total_bits()) / 32.0
    }

    /// Encoder/decoder logic energy per word access in pJ, scaled off
    /// the technology's word-codec energy: a parity tree is ~31 XOR
    /// gates (a small fraction of a compressor stage), SECDED runs six
    /// such trees plus syndrome decode on every read.
    pub fn access_energy_pj(self, tech: &Technology) -> f64 {
        match self {
            Protection::None => 0.0,
            Protection::Parity => 0.2 * tech.codec_word_pj,
            Protection::Secded => 0.9 * tech.codec_word_pj,
        }
    }

    /// Total encode/decode energy over `accesses` word accesses.
    pub fn access_overhead(self, tech: &Technology, accesses: u64) -> Energy {
        Energy::from_pj(self.access_energy_pj(tech) * accesses as f64)
    }

    /// Extra cycles on every read (SECDED syndrome decode sits on the
    /// load path; parity check overlaps the access).
    pub fn extra_read_cycles(self) -> u64 {
        match self {
            Protection::None | Protection::Parity => 0,
            Protection::Secded => 1,
        }
    }

    /// Silicon-area overhead of protecting `data_bytes` of SRAM:
    /// `prot.checkbits` (the widened cell array) and `prot.logic`
    /// (encoder/decoder periphery, scaled off the macro periphery).
    pub fn area_overhead(self, tech: &Technology, data_bytes: u64) -> AreaReport {
        let mut area = AreaReport::new();
        let cb = f64::from(self.check_bits());
        if cb > 0.0 {
            let extra_bits = data_bytes as f64 * 8.0 * cb / 32.0;
            area.add("prot.checkbits", extra_bits * tech.sram_cell_um2 * 1e-6);
            area.add("prot.logic", tech.sram_periph_mm2 * cb / 32.0);
        }
        area
    }
}

impl std::fmt::Display for Protection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for p in Protection::ALL {
            assert_eq!(Protection::parse(p.name()), Some(p));
        }
        assert_eq!(Protection::parse("tmr"), None);
    }

    #[test]
    fn overheads_scale_with_strength() {
        let tech = Technology::tech180();
        assert_eq!(Protection::None.access_energy_pj(&tech), 0.0);
        assert!(
            Protection::Parity.access_energy_pj(&tech) < Protection::Secded.access_energy_pj(&tech)
        );
        assert_eq!(Protection::None.storage_factor(), 1.0);
        assert!((Protection::Secded.storage_factor() - 39.0 / 32.0).abs() < 1e-12);
        assert_eq!(Protection::None.area_overhead(&tech, 4096).total_mm2(), 0.0);
        let parity = Protection::Parity.area_overhead(&tech, 4096).total_mm2();
        let secded = Protection::Secded.area_overhead(&tech, 4096).total_mm2();
        assert!(0.0 < parity && parity < secded);
        assert_eq!(Protection::Secded.extra_read_cycles(), 1);
        assert_eq!(Protection::Parity.extra_read_cycles(), 0);
    }

    #[test]
    fn area_components_are_itemized() {
        let area = Protection::Secded.area_overhead(&Technology::tech90(), 1 << 16);
        assert!(area.component("prot.checkbits") > 0.0);
        assert!(area.component("prot.logic") > 0.0);
        // Check-bit cells: 65536 B × 8 × 7/32 bits × 1.3 µm² = 0.149 mm².
        let expect = (1u64 << 16) as f64 * 8.0 * 7.0 / 32.0 * 1.3 * 1e-6;
        assert!((area.component("prot.checkbits") - expect).abs() < 1e-9);
    }
}
