//! Technology parameter sets.

/// Every technology-dependent constant used by the workspace, in one place.
///
/// Two presets are provided, [`Technology::tech180`] (0.18 µm, the node of
/// the DATE 2003 1B.1/1B.2 evaluations) and [`Technology::tech130`]
/// (0.13 µm). The values are documented approximations with the correct
/// ratios between components; see `DESIGN.md` §4 for the substitution
/// rationale.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Technology {
    /// Human-readable node name, e.g. `"0.18um"`.
    pub name: String,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// SRAM access energy intercept in pJ (sense amps, control).
    pub sram_e0_pj: f64,
    /// SRAM access energy slope in pJ per sqrt(word): models the bit-line /
    /// word-line lengths growing with the macro's linear dimension.
    pub sram_e1_pj: f64,
    /// Ratio of write energy to read energy for SRAM (> 1).
    pub sram_write_factor: f64,
    /// SRAM leakage/idle energy in pJ per cycle per KiB of powered macro.
    pub sram_idle_pj_per_kib: f64,
    /// Fraction of idle leakage a macro still burns in its sleep
    /// (state-retentive drowsy) mode.
    pub sram_sleep_frac: f64,
    /// Energy to wake a sleeping macro, in pJ per KiB (bit-line recharge).
    pub sram_wake_pj_per_kib: f64,
    /// Extra energy per access in a multi-bank memory (bank decoder and
    /// select wiring), in pJ per access per bank in the system.
    pub bank_select_pj: f64,
    /// Energy per 4-byte off-chip beat (command + I/O + core), in pJ.
    pub offchip_beat_pj: f64,
    /// On-chip bus capacitance per line in pF.
    pub onchip_bus_cap_pf: f64,
    /// Off-chip bus capacitance per line in pF.
    pub offchip_bus_cap_pf: f64,
    /// Energy per lookup of the address-relocation table used by clustering,
    /// in pJ.
    pub relocation_lookup_pj: f64,
    /// Energy of the (de)compressor per 32-bit word processed, in pJ.
    pub codec_word_pj: f64,
    /// Energy to load one 32-bit context word into a reconfigurable fabric,
    /// in pJ.
    pub context_word_pj: f64,
    /// SRAM bit-cell area in µm² per bit.
    pub sram_cell_um2: f64,
    /// Fixed periphery area per SRAM macro (decoder, sense amps) in mm².
    pub sram_periph_mm2: f64,
    /// Periphery area slope in mm² per sqrt(bit) (word/bit-line drivers).
    pub sram_periph_slope_mm2: f64,
    /// Single-event-upset rate of the SRAM array in FIT per Mbit
    /// (failures per 10⁹ device-hours per 2²⁰ bits) at nominal Vdd.
    /// Rises at newer nodes as the critical charge per cell shrinks.
    pub seu_fit_per_mbit: f64,
    /// Multiplier on the per-bit upset rate while a bank sits in its
    /// state-retentive drowsy sleep mode: the lowered retention voltage
    /// costs noise margin, so both SEU susceptibility and retention
    /// failures scale up with sleep residency.
    pub retention_drowsy_mult: f64,
}

impl Technology {
    /// 0.18 µm parameter set (ARM7-class SoC, as in DATE 2003 1B.1/1B.2).
    pub fn tech180() -> Self {
        Technology {
            name: "0.18um".to_owned(),
            vdd: 1.8,
            sram_e0_pj: 2.0,
            sram_e1_pj: 0.60,
            sram_write_factor: 1.2,
            sram_idle_pj_per_kib: 0.002,
            sram_sleep_frac: 0.10,
            sram_wake_pj_per_kib: 0.06,
            bank_select_pj: 0.35,
            offchip_beat_pj: 2500.0,
            onchip_bus_cap_pf: 0.8,
            offchip_bus_cap_pf: 12.0,
            relocation_lookup_pj: 0.45,
            codec_word_pj: 1.1,
            context_word_pj: 6.0,
            sram_cell_um2: 4.5,
            sram_periph_mm2: 0.012,
            sram_periph_slope_mm2: 2.0e-05,
            seu_fit_per_mbit: 400.0,
            retention_drowsy_mult: 3.0,
        }
    }

    /// 0.13 µm parameter set (Lx-ST200-class SoC).
    pub fn tech130() -> Self {
        Technology {
            name: "0.13um".to_owned(),
            vdd: 1.2,
            sram_e0_pj: 1.1,
            sram_e1_pj: 0.32,
            sram_write_factor: 1.2,
            sram_idle_pj_per_kib: 0.004,
            sram_sleep_frac: 0.12,
            sram_wake_pj_per_kib: 0.08,
            bank_select_pj: 0.20,
            offchip_beat_pj: 1600.0,
            onchip_bus_cap_pf: 0.6,
            offchip_bus_cap_pf: 10.0,
            relocation_lookup_pj: 0.25,
            codec_word_pj: 0.6,
            context_word_pj: 3.5,
            sram_cell_um2: 2.4,
            sram_periph_mm2: 0.008,
            sram_periph_slope_mm2: 1.4e-05,
            seu_fit_per_mbit: 700.0,
            retention_drowsy_mult: 5.0,
        }
    }

    /// 90 nm projection (ITRS-2003-era): cheaper dynamic energy but
    /// leakage becomes a first-order term — the regime where bank power
    /// gating and sleep-aware clustering matter (session 1C's "beyond
    /// 90 nm" challenges).
    pub fn tech90() -> Self {
        Technology {
            name: "0.09um".to_owned(),
            vdd: 1.0,
            sram_e0_pj: 0.7,
            sram_e1_pj: 0.20,
            sram_write_factor: 1.2,
            sram_idle_pj_per_kib: 0.08,
            sram_sleep_frac: 0.05,
            sram_wake_pj_per_kib: 0.12,
            bank_select_pj: 0.12,
            offchip_beat_pj: 1100.0,
            onchip_bus_cap_pf: 0.5,
            offchip_bus_cap_pf: 8.0,
            relocation_lookup_pj: 0.15,
            codec_word_pj: 0.35,
            context_word_pj: 2.0,
            sram_cell_um2: 1.3,
            sram_periph_mm2: 0.005,
            sram_periph_slope_mm2: 1.0e-05,
            seu_fit_per_mbit: 1150.0,
            retention_drowsy_mult: 9.0,
        }
    }

    /// Switching energy of one bit transition on a line of capacitance
    /// `cap_pf`, in pJ: `½·C·V²`.
    pub fn transition_pj(&self, cap_pf: f64) -> f64 {
        0.5 * cap_pf * self.vdd * self.vdd
    }
}

impl Default for Technology {
    /// Defaults to the 0.18 µm node used by the headline experiments.
    fn default() -> Self {
        Technology::tech180()
    }
}

/// A named technology node — the enumerable handle over the
/// [`Technology`] presets.
///
/// [`Technology`] itself is a bag of parameters; this enum is the closed,
/// enumerable set of presets a sweep grid, an explorer axis, or a
/// heterogeneous bank assignment can iterate over. Promoted here from the
/// flow layer so crates below `lpmem-core` (the CMP scenario pack's
/// per-partition technology axis, the fleet model) can name nodes without
/// a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TechNode {
    /// 0.18 µm (the DATE 2003 headline node).
    T180,
    /// 0.13 µm (Lx-ST200-class).
    T130,
    /// 90 nm projection (leakage-dominated).
    T90,
}

impl TechNode {
    /// Every technology node, in grid order.
    pub const ALL: [TechNode; 3] = [TechNode::T180, TechNode::T130, TechNode::T90];

    /// Short key used in grid syntax and reports.
    pub fn name(self) -> &'static str {
        match self {
            TechNode::T180 => "t180",
            TechNode::T130 => "t130",
            TechNode::T90 => "t90",
        }
    }

    /// The full parameter set of this node.
    pub fn technology(self) -> Technology {
        match self {
            TechNode::T180 => Technology::tech180(),
            TechNode::T130 => Technology::tech130(),
            TechNode::T90 => Technology::tech90(),
        }
    }

    /// Parses a short key (`"t180"`, `"t130"`, `"t90"`).
    pub fn parse(s: &str) -> Option<TechNode> {
        TechNode::ALL
            .into_iter()
            .find(|t| t.name() == s.trim().to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_ratios() {
        for tech in [Technology::tech180(), Technology::tech130()] {
            // Off-chip must dwarf on-chip access energy at realistic sizes.
            let onchip_64k = tech.sram_e0_pj + tech.sram_e1_pj * ((1u64 << 14) as f64).sqrt();
            assert!(
                tech.offchip_beat_pj > 10.0 * onchip_64k,
                "{}: off-chip/on-chip ratio too small",
                tech.name
            );
            assert!(tech.sram_write_factor > 1.0);
            assert!(tech.sram_sleep_frac < 1.0 && tech.sram_sleep_frac > 0.0);
            assert!(tech.offchip_bus_cap_pf > tech.onchip_bus_cap_pf);
        }
    }

    #[test]
    fn newer_node_is_cheaper() {
        let old = Technology::tech180();
        let new = Technology::tech130();
        assert!(new.sram_e0_pj < old.sram_e0_pj);
        assert!(new.offchip_beat_pj < old.offchip_beat_pj);
        assert!(new.vdd < old.vdd);
    }

    #[test]
    fn soft_error_rates_worsen_at_newer_nodes() {
        // Critical charge shrinks with the cell, so the per-Mbit upset
        // rate and the drowsy retention penalty must both be monotonically
        // non-decreasing from 180 nm to 90 nm.
        let nodes = [
            Technology::tech180(),
            Technology::tech130(),
            Technology::tech90(),
        ];
        for pair in nodes.windows(2) {
            assert!(
                pair[1].seu_fit_per_mbit > pair[0].seu_fit_per_mbit,
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
            assert!(pair[1].retention_drowsy_mult > pair[0].retention_drowsy_mult);
        }
        for t in nodes {
            assert!(t.seu_fit_per_mbit > 0.0);
            assert!(t.retention_drowsy_mult >= 1.0);
        }
    }

    #[test]
    fn tech90_is_leakage_dominated() {
        let t = Technology::tech90();
        // Leakage per KiB-cycle is an order of magnitude above tech180.
        assert!(t.sram_idle_pj_per_kib > 10.0 * Technology::tech180().sram_idle_pj_per_kib);
        // But dynamic access energy is cheaper.
        assert!(t.sram_e0_pj < Technology::tech130().sram_e0_pj);
    }

    #[test]
    fn transition_energy_is_half_cv2() {
        let t = Technology::tech180();
        let e = t.transition_pj(1.0);
        assert!((e - 0.5 * 1.8 * 1.8).abs() < 1e-12);
    }

    #[test]
    fn default_is_tech180() {
        assert_eq!(Technology::default(), Technology::tech180());
    }
}
