//! Energy models for the `lpmem` workspace.
//!
//! All optimizations in the workspace are scored in energy, so this crate
//! centralizes every technology-dependent constant behind a [`Technology`]
//! parameter set and provides analytic component models:
//!
//! * [`SramModel`] — CACTI-style on-chip SRAM whose per-access energy grows
//!   with the square root of the macro size (the property memory
//!   partitioning exploits: many small banks beat one big monolith);
//! * [`BusModel`] — switching energy proportional to counted bit
//!   transitions (the property bus encoding exploits);
//! * [`OffChipModel`] — per-beat main-memory energy, an order of magnitude
//!   above on-chip accesses (the property write-back compression exploits);
//! * [`EnergyReport`] — a named breakdown that flows combine and print;
//! * [`AreaReport`] — the silicon-area counterpart (named mm² components),
//!   the promoted A5 accounting the design-space explorer scores against.
//!
//! The absolute values are documented approximations of published
//! 0.18 µm / 0.13 µm figures; all experiments in this workspace depend only
//! on the *ratios* (size scaling, on-chip vs. off-chip, capacitance per
//! line), per the substitution note in `DESIGN.md` §4.
//!
//! # Example
//!
//! ```
//! use lpmem_energy::{SramModel, Technology};
//!
//! let tech = Technology::tech180();
//! let sram = SramModel::new(&tech);
//! // A 1 KiB bank is much cheaper to read than a 64 KiB bank.
//! assert!(sram.read_energy(1 << 10) < sram.read_energy(1 << 16));
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod bus;
pub mod report;
pub mod sram;
pub mod tech;
pub mod units;

pub use area::AreaReport;
pub use bus::BusModel;
pub use report::EnergyReport;
pub use sram::{OffChipModel, SramModel};
pub use tech::{TechNode, Technology};
pub use units::Energy;
