//! Bus switching-energy model and transition counting.

use crate::{Energy, Technology};

/// A parallel bus whose dynamic energy is `transitions × ½·C·V²`.
///
/// The model is used both for the instruction-memory bus targeted by the
/// DATE 2003 1B.3 functional encodings and for the data bus to off-chip
/// memory targeted by write-back compression.
///
/// ```
/// use lpmem_energy::{BusModel, Technology};
///
/// let bus = BusModel::onchip(&Technology::tech180(), 32);
/// // 0x0 -> 0xF flips four lines.
/// assert_eq!(BusModel::transitions(&[0x0, 0xF]), 4);
/// let e = bus.sequence_energy(&[0x0, 0xF]);
/// assert!(e > lpmem_energy::Energy::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BusModel {
    width_bits: u32,
    cap_pf_per_line: f64,
    vdd: f64,
}

impl BusModel {
    /// An on-chip bus of `width_bits` lines.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero or exceeds 64.
    pub fn onchip(tech: &Technology, width_bits: u32) -> Self {
        Self::with_capacitance(tech, width_bits, tech.onchip_bus_cap_pf)
    }

    /// An off-chip bus of `width_bits` lines.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero or exceeds 64.
    pub fn offchip(tech: &Technology, width_bits: u32) -> Self {
        Self::with_capacitance(tech, width_bits, tech.offchip_bus_cap_pf)
    }

    /// A bus with an explicit per-line capacitance in pF.
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is zero or exceeds 64, or if `cap_pf` is not
    /// positive.
    pub fn with_capacitance(tech: &Technology, width_bits: u32, cap_pf: f64) -> Self {
        assert!(
            width_bits > 0 && width_bits <= 64,
            "bus width must be in 1..=64"
        );
        assert!(cap_pf > 0.0, "capacitance must be positive");
        BusModel {
            width_bits,
            cap_pf_per_line: cap_pf,
            vdd: tech.vdd,
        }
    }

    /// Bus width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Energy of one bit transition on one line.
    pub fn transition_energy(&self) -> Energy {
        Energy::from_pj(0.5 * self.cap_pf_per_line * self.vdd * self.vdd)
    }

    /// Energy of `n` bit transitions.
    pub fn energy_of(&self, transitions: u64) -> Energy {
        self.transition_energy() * transitions as f64
    }

    /// Total energy of driving `words` on the bus in order, counting
    /// transitions between consecutive words (the bus is assumed to hold its
    /// previous value between transfers).
    pub fn sequence_energy(&self, words: &[u64]) -> Energy {
        self.energy_of(Self::transitions(words))
    }

    /// Counts bit transitions between consecutive words of a sequence.
    ///
    /// The first word contributes no transitions (the bus state before the
    /// sequence is taken to equal the first word).
    pub fn transitions(words: &[u64]) -> u64 {
        words
            .windows(2)
            .map(|w| (w[0] ^ w[1]).count_ones() as u64)
            .sum()
    }

    /// Counts transitions of a 32-bit word stream (convenience for
    /// instruction buses).
    pub fn transitions32(words: &[u32]) -> u64 {
        words
            .windows(2)
            .map(|w| (w[0] ^ w[1]).count_ones() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_count_hamming_distances() {
        assert_eq!(BusModel::transitions(&[]), 0);
        assert_eq!(BusModel::transitions(&[0xFF]), 0);
        assert_eq!(BusModel::transitions(&[0b1010, 0b0101]), 4);
        assert_eq!(BusModel::transitions(&[0, 1, 3, 7]), 3);
        assert_eq!(BusModel::transitions32(&[0, u32::MAX]), 32);
    }

    #[test]
    fn energy_is_linear_in_transitions() {
        let bus = BusModel::onchip(&Technology::tech180(), 32);
        assert_eq!(bus.energy_of(10), bus.transition_energy() * 10.0);
        assert_eq!(bus.energy_of(0), Energy::ZERO);
    }

    #[test]
    fn offchip_bus_is_more_expensive() {
        let tech = Technology::tech180();
        let on = BusModel::onchip(&tech, 32);
        let off = BusModel::offchip(&tech, 32);
        assert!(off.transition_energy() > on.transition_energy());
    }

    #[test]
    fn sequence_energy_matches_manual_count() {
        let bus = BusModel::onchip(&Technology::tech180(), 8);
        let seq = [0x00u64, 0x0F, 0xF0];
        // 0x00->0x0F: 4 flips; 0x0F->0xF0: 8 flips.
        assert_eq!(bus.sequence_energy(&seq), bus.energy_of(12));
    }

    #[test]
    #[should_panic(expected = "bus width")]
    fn zero_width_panics() {
        BusModel::onchip(&Technology::tech180(), 0);
    }
}
