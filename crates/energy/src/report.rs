//! Named energy breakdowns.

use std::collections::BTreeMap;
use std::fmt;

use crate::Energy;

/// An energy breakdown by named component.
///
/// Flows accumulate energy into named buckets (`"sram.read"`,
/// `"offchip.writeback"`, `"codec"`, …) and combine reports from different
/// subsystems. The [`Display`](fmt::Display) implementation prints an
/// aligned table with a total row, which is what the `repro` harness shows.
///
/// ```
/// use lpmem_energy::{Energy, EnergyReport};
///
/// let mut r = EnergyReport::new();
/// r.add("sram.read", Energy::from_pj(120.0));
/// r.add("sram.read", Energy::from_pj(30.0));
/// r.add("offchip", Energy::from_nj(1.0));
/// assert_eq!(r.total(), Energy::from_pj(1150.0));
/// assert_eq!(r.component("sram.read"), Energy::from_pj(150.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyReport {
    components: BTreeMap<String, Energy>,
}

impl EnergyReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        EnergyReport::default()
    }

    /// Adds energy to the named component (creating it if new).
    pub fn add(&mut self, component: impl Into<String>, energy: Energy) {
        *self
            .components
            .entry(component.into())
            .or_insert(Energy::ZERO) += energy;
    }

    /// Energy of one component (zero when absent).
    pub fn component(&self, name: &str) -> Energy {
        self.components.get(name).copied().unwrap_or(Energy::ZERO)
    }

    /// Sum over all components.
    pub fn total(&self) -> Energy {
        self.components.values().copied().sum()
    }

    /// Iterates over `(name, energy)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Energy)> {
        self.components.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another report into this one, summing shared components.
    pub fn merge(&mut self, other: &EnergyReport) {
        for (name, energy) in other.iter() {
            self.add(name, energy);
        }
    }

    /// Returns this report with every component scaled by `factor`
    /// (useful for per-iteration normalization).
    pub fn scaled(&self, factor: f64) -> EnergyReport {
        EnergyReport {
            components: self
                .components
                .iter()
                .map(|(k, &v)| (k.clone(), v * factor))
                .collect(),
        }
    }

    /// `true` when the report has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .components
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(5)
            .max(5);
        for (name, energy) in &self.components {
            writeln!(f, "  {name:<width$}  {energy}")?;
        }
        writeln!(f, "  {:-<width$}  ", "")?;
        write!(f, "  {:<width$}  {}", "total", self.total())
    }
}

impl FromIterator<(String, Energy)> for EnergyReport {
    fn from_iter<I: IntoIterator<Item = (String, Energy)>>(iter: I) -> Self {
        let mut r = EnergyReport::new();
        for (name, e) in iter {
            r.add(name, e);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_per_component() {
        let mut r = EnergyReport::new();
        r.add("a", Energy::from_pj(1.0));
        r.add("a", Energy::from_pj(2.0));
        r.add("b", Energy::from_pj(4.0));
        assert_eq!(r.component("a"), Energy::from_pj(3.0));
        assert_eq!(r.component("missing"), Energy::ZERO);
        assert_eq!(r.total(), Energy::from_pj(7.0));
    }

    #[test]
    fn merge_sums_shared_components() {
        let mut r = EnergyReport::new();
        r.add("a", Energy::from_pj(1.0));
        let mut s = EnergyReport::new();
        s.add("a", Energy::from_pj(2.0));
        s.add("b", Energy::from_pj(5.0));
        r.merge(&s);
        assert_eq!(r.component("a"), Energy::from_pj(3.0));
        assert_eq!(r.component("b"), Energy::from_pj(5.0));
    }

    #[test]
    fn scaled_multiplies_everything() {
        let mut r = EnergyReport::new();
        r.add("a", Energy::from_pj(2.0));
        r.add("b", Energy::from_pj(4.0));
        let half = r.scaled(0.5);
        assert_eq!(half.total(), Energy::from_pj(3.0));
    }

    #[test]
    fn display_contains_total() {
        let mut r = EnergyReport::new();
        r.add("sram", Energy::from_pj(10.0));
        let s = r.to_string();
        assert!(s.contains("sram"));
        assert!(s.contains("total"));
    }

    #[test]
    fn from_iterator_collects() {
        let r: EnergyReport = vec![
            ("x".to_owned(), Energy::from_pj(1.0)),
            ("x".to_owned(), Energy::from_pj(2.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(r.component("x"), Energy::from_pj(3.0));
    }
}
