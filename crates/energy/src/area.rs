//! Named silicon-area breakdowns.
//!
//! The A5 experiment established the workspace's area accounting — bank
//! cell arrays and periphery, the clustering relocation table, codec and
//! encoder gates — as ad-hoc `f64` sums. [`AreaReport`] promotes it to a
//! first-class structure mirroring [`EnergyReport`](crate::EnergyReport):
//! named mm² components that subsystems fill in independently and a
//! design-space explorer can total into an area objective.

use std::collections::BTreeMap;
use std::fmt;

/// A silicon-area breakdown by named component, in mm².
///
/// ```
/// use lpmem_energy::AreaReport;
///
/// let mut a = AreaReport::new();
/// a.add("bank.cells", 0.40);
/// a.add("bank.periphery", 0.05);
/// a.add("bank.periphery", 0.05);
/// assert!((a.total_mm2() - 0.50).abs() < 1e-12);
/// assert!((a.component("bank.periphery") - 0.10).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AreaReport {
    components: BTreeMap<String, f64>,
}

impl AreaReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        AreaReport::default()
    }

    /// Adds area (mm²) to the named component (creating it if new).
    ///
    /// # Panics
    ///
    /// Panics if `mm2` is negative or non-finite — area components are
    /// physical quantities.
    pub fn add(&mut self, component: impl Into<String>, mm2: f64) {
        assert!(
            mm2.is_finite() && mm2 >= 0.0,
            "area must be finite and non-negative"
        );
        *self.components.entry(component.into()).or_insert(0.0) += mm2;
    }

    /// Area of one component in mm² (zero when absent).
    pub fn component(&self, name: &str) -> f64 {
        self.components.get(name).copied().unwrap_or(0.0)
    }

    /// Sum over all components, in mm².
    pub fn total_mm2(&self) -> f64 {
        self.components.values().sum()
    }

    /// Iterates over `(name, mm2)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.components.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another report into this one, summing shared components.
    pub fn merge(&mut self, other: &AreaReport) {
        for (name, mm2) in other.iter() {
            self.add(name, mm2);
        }
    }

    /// `true` when the report has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .components
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(5)
            .max(5);
        for (name, mm2) in &self.components {
            writeln!(f, "  {name:<width$}  {mm2:.4} mm2")?;
        }
        writeln!(f, "  {:-<width$}  ", "")?;
        write!(f, "  {:<width$}  {:.4} mm2", "total", self.total_mm2())
    }
}

impl FromIterator<(String, f64)> for AreaReport {
    fn from_iter<I: IntoIterator<Item = (String, f64)>>(iter: I) -> Self {
        let mut r = AreaReport::new();
        for (name, mm2) in iter {
            r.add(name, mm2);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SramModel, Technology};

    #[test]
    fn add_accumulates_per_component() {
        let mut a = AreaReport::new();
        a.add("x", 1.0);
        a.add("x", 2.0);
        a.add("y", 4.0);
        assert_eq!(a.component("x"), 3.0);
        assert_eq!(a.component("missing"), 0.0);
        assert_eq!(a.total_mm2(), 7.0);
    }

    #[test]
    fn merge_sums_shared_components() {
        let mut a = AreaReport::new();
        a.add("banks", 0.25);
        let mut b = AreaReport::new();
        b.add("banks", 0.25);
        b.add("codec", 0.01);
        a.merge(&b);
        assert_eq!(a.component("banks"), 0.5);
        assert_eq!(a.component("codec"), 0.01);
        assert!(!a.is_empty());
    }

    #[test]
    fn display_contains_total_row() {
        let mut a = AreaReport::new();
        a.add("bank.cells", 0.125);
        let s = a.to_string();
        assert!(s.contains("bank.cells"));
        assert!(s.contains("total"));
        assert!(s.contains("mm2"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_area_panics() {
        AreaReport::new().add("x", -1.0);
    }

    #[test]
    fn more_banks_means_more_periphery_area() {
        // The promoted A5 accounting: splitting a memory into ever more
        // banks keeps the cell area constant but multiplies the periphery
        // — total area must grow strictly monotonically in bank count.
        let sram = SramModel::new(&Technology::tech180());
        let total_bytes = 64u64 << 10;
        let mut last = 0.0;
        for banks in [1u64, 2, 4, 8, 16] {
            let mut report = AreaReport::new();
            for _ in 0..banks {
                let b = total_bytes / banks;
                report.add("bank.cells", sram.cell_area_mm2(b));
                report.add("bank.periphery", sram.periphery_area_mm2(b));
            }
            let cells_only = report.component("bank.cells");
            assert!(
                (cells_only - sram.cell_area_mm2(total_bytes)).abs() < 1e-12,
                "cell area is conserved across bankings"
            );
            assert!(
                report.total_mm2() > last,
                "{banks} banks: {} not above {last}",
                report.total_mm2()
            );
            last = report.total_mm2();
        }
    }
}
