//! Analytic SRAM and off-chip memory energy models.

use crate::{Energy, Technology};

/// CACTI-style analytic model of an on-chip SRAM macro.
///
/// Per-access energy is `e0 + e1·sqrt(words)`: the intercept covers sense
/// amplifiers and control, the slope the bit-line/word-line capacitance that
/// grows with the macro's linear dimension. This sub-linear growth is the
/// entire reason memory partitioning saves energy — accesses to a small bank
/// are cheaper than accesses to a monolith of the combined size.
///
/// ```
/// use lpmem_energy::{SramModel, Technology};
///
/// let sram = SramModel::new(&Technology::tech180());
/// let one_64k = sram.read_energy(64 << 10);
/// let one_4k = sram.read_energy(4 << 10);
/// assert!(one_4k.as_pj() < 0.5 * one_64k.as_pj());
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SramModel {
    e0_pj: f64,
    e1_pj: f64,
    write_factor: f64,
    idle_pj_per_kib: f64,
    cell_um2: f64,
    periph_mm2: f64,
    periph_slope_mm2: f64,
}

impl SramModel {
    /// Builds the model for a technology node.
    pub fn new(tech: &Technology) -> Self {
        SramModel {
            e0_pj: tech.sram_e0_pj,
            e1_pj: tech.sram_e1_pj,
            write_factor: tech.sram_write_factor,
            idle_pj_per_kib: tech.sram_idle_pj_per_kib,
            cell_um2: tech.sram_cell_um2,
            periph_mm2: tech.sram_periph_mm2,
            periph_slope_mm2: tech.sram_periph_slope_mm2,
        }
    }

    /// Silicon area of one macro of `bytes` capacity, in mm²: bit-cell
    /// array plus fixed and size-dependent periphery. Splitting a memory
    /// into banks multiplies the periphery — the area cost of
    /// partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn area_mm2(&self, bytes: u64) -> f64 {
        self.cell_area_mm2(bytes) + self.periphery_area_mm2(bytes)
    }

    /// The bit-cell array part of [`area_mm2`](Self::area_mm2): invariant
    /// under banking (the same bits occupy the same cells however they are
    /// split).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn cell_area_mm2(&self, bytes: u64) -> f64 {
        assert!(bytes > 0, "SRAM macro must have non-zero capacity");
        (bytes * 8) as f64 * self.cell_um2 * 1e-6
    }

    /// The periphery part of [`area_mm2`](Self::area_mm2) (decoder, sense
    /// amps, word/bit-line drivers): paid once **per macro**, which is why
    /// banking costs area.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn periphery_area_mm2(&self, bytes: u64) -> f64 {
        assert!(bytes > 0, "SRAM macro must have non-zero capacity");
        let bits = (bytes * 8) as f64;
        self.periph_mm2 + self.periph_slope_mm2 * bits.sqrt()
    }

    /// Energy of one read access to a macro of `bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn read_energy(&self, bytes: u64) -> Energy {
        assert!(bytes > 0, "SRAM macro must have non-zero capacity");
        let words = (bytes as f64 / 4.0).max(1.0);
        Energy::from_pj(self.e0_pj + self.e1_pj * words.sqrt())
    }

    /// Energy of one write access to a macro of `bytes` capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn write_energy(&self, bytes: u64) -> Energy {
        self.read_energy(bytes) * self.write_factor
    }

    /// Idle (leakage + clocking) energy of a powered macro of `bytes`
    /// capacity over `cycles` cycles.
    pub fn idle_energy(&self, bytes: u64, cycles: u64) -> Energy {
        let kib = bytes as f64 / 1024.0;
        Energy::from_pj(self.idle_pj_per_kib * kib * cycles as f64)
    }
}

/// Off-chip (main) memory model: energy is charged per 4-byte beat moved
/// across the external interface, covering command, I/O, and core energy.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OffChipModel {
    beat_pj: f64,
}

impl OffChipModel {
    /// Builds the model for a technology node.
    pub fn new(tech: &Technology) -> Self {
        OffChipModel {
            beat_pj: tech.offchip_beat_pj,
        }
    }

    /// Energy of moving `beats` 4-byte beats (reads or writes).
    pub fn transfer_energy(&self, beats: u64) -> Energy {
        Energy::from_pj(self.beat_pj * beats as f64)
    }

    /// Energy of one 4-byte beat.
    pub fn beat_energy(&self) -> Energy {
        Energy::from_pj(self.beat_pj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram() -> SramModel {
        SramModel::new(&Technology::tech180())
    }

    #[test]
    fn read_energy_grows_sublinearly() {
        let s = sram();
        let e1 = s.read_energy(1 << 10).as_pj();
        let e4 = s.read_energy(1 << 12).as_pj();
        let e16 = s.read_energy(1 << 14).as_pj();
        assert!(e4 > e1 && e16 > e4);
        // Quadrupling the size should less-than-quadruple the energy.
        assert!(e16 / e1 < 4.0);
    }

    #[test]
    fn write_costs_more_than_read() {
        let s = sram();
        assert!(s.write_energy(4096) > s.read_energy(4096));
    }

    #[test]
    fn partitioning_premise_holds() {
        // Four accesses into four 4 KiB banks must beat four accesses into a
        // 16 KiB monolith (ignoring bank-select overhead, which is charged
        // separately by the partitioner).
        let s = sram();
        let banked = s.read_energy(4 << 10) * 4.0;
        let monolith = s.read_energy(16 << 10) * 4.0;
        assert!(banked < monolith);
    }

    #[test]
    fn idle_energy_scales_with_size_and_time() {
        let s = sram();
        let a = s.idle_energy(1 << 10, 100);
        let b = s.idle_energy(1 << 11, 100);
        let c = s.idle_energy(1 << 10, 200);
        assert!((b.as_pj() - 2.0 * a.as_pj()).abs() < 1e-9);
        assert!((c.as_pj() - 2.0 * a.as_pj()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_panics() {
        sram().read_energy(0);
    }

    #[test]
    fn banking_costs_area() {
        let s = sram();
        // Four 4 KiB banks occupy more silicon than one 16 KiB macro
        // (same cells, 4x the periphery).
        let banked = 4.0 * s.area_mm2(4 << 10);
        let mono = s.area_mm2(16 << 10);
        assert!(banked > mono);
        // But the cell array dominates: the overhead is bounded.
        assert!(banked < 1.8 * mono, "banked {banked} vs mono {mono}");
    }

    #[test]
    fn area_scales_with_capacity() {
        let s = sram();
        assert!(s.area_mm2(64 << 10) > 3.0 * s.area_mm2(16 << 10));
    }

    #[test]
    fn offchip_dwarfs_onchip() {
        let tech = Technology::tech180();
        let off = OffChipModel::new(&tech);
        let on = SramModel::new(&tech);
        assert!(off.beat_energy() > on.read_energy(64 << 10) * 10.0);
    }

    #[test]
    fn offchip_transfer_is_linear_in_beats() {
        let off = OffChipModel::new(&Technology::tech180());
        assert_eq!(off.transfer_energy(8), off.beat_energy() * 8.0);
        assert_eq!(off.transfer_energy(0), Energy::ZERO);
    }
}
