//! The [`Energy`] unit type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An amount of energy, stored internally in picojoules.
///
/// `Energy` is a zero-cost newtype ([C-NEWTYPE]) that keeps joules from
/// being confused with counts or areas anywhere in the workspace. It
/// supports the arithmetic an energy accounting flow needs: addition,
/// subtraction, scaling by counts, and ratios.
///
/// ```
/// use lpmem_energy::Energy;
///
/// let per_access = Energy::from_pj(12.5);
/// let total = per_access * 1000.0;
/// assert_eq!(total, Energy::from_nj(12.5));
/// assert!((total / per_access - 1000.0).abs() < 1e-9);
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e3)
    }

    /// Creates an energy from microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e6)
    }

    /// Value in picojoules.
    pub fn as_pj(self) -> f64 {
        self.0
    }

    /// Value in nanojoules.
    pub fn as_nj(self) -> f64 {
        self.0 * 1e-3
    }

    /// Value in microjoules.
    pub fn as_uj(self) -> f64 {
        self.0 * 1e-6
    }

    /// `max(self - other, 0)`, for computing non-negative savings.
    pub fn saturating_sub(self, other: Energy) -> Energy {
        Energy((self.0 - other.0).max(0.0))
    }

    /// Relative saving of `self` over `baseline` in `0.0..=1.0`
    /// (negative when `self` costs more). Returns `0.0` for a zero baseline.
    pub fn saving_vs(self, baseline: Energy) -> f64 {
        if baseline.0 == 0.0 {
            0.0
        } else {
            1.0 - self.0 / baseline.0
        }
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Energy {
    /// Formats with an automatically chosen SI prefix: `12.50 pJ`,
    /// `3.42 nJ`, `1.77 µJ`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0.abs();
        if pj < 1e3 {
            write!(f, "{:.2} pJ", self.0)
        } else if pj < 1e6 {
            write!(f, "{:.2} nJ", self.as_nj())
        } else {
            write!(f, "{:.2} µJ", self.as_uj())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        assert_eq!(Energy::from_nj(1.0).as_pj(), 1000.0);
        assert_eq!(Energy::from_uj(1.0).as_nj(), 1000.0);
        assert_eq!(Energy::from_pj(250.0).as_nj(), 0.25);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Energy::from_pj(10.0);
        let b = Energy::from_pj(4.0);
        assert_eq!(a + b, Energy::from_pj(14.0));
        assert_eq!(a - b, Energy::from_pj(6.0));
        assert_eq!(a * 2.0, Energy::from_pj(20.0));
        assert_eq!(2.0 * a, Energy::from_pj(20.0));
        assert_eq!(a / 2.0, Energy::from_pj(5.0));
        assert!((a / b - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_energies() {
        let total: Energy = (1..=4).map(|i| Energy::from_pj(i as f64)).sum();
        assert_eq!(total, Energy::from_pj(10.0));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        let a = Energy::from_pj(3.0);
        let b = Energy::from_pj(5.0);
        assert_eq!(a.saturating_sub(b), Energy::ZERO);
        assert_eq!(b.saturating_sub(a), Energy::from_pj(2.0));
    }

    #[test]
    fn saving_vs_baseline() {
        let opt = Energy::from_pj(75.0);
        let base = Energy::from_pj(100.0);
        assert!((opt.saving_vs(base) - 0.25).abs() < 1e-12);
        assert_eq!(opt.saving_vs(Energy::ZERO), 0.0);
    }

    #[test]
    fn display_picks_si_prefix() {
        assert_eq!(Energy::from_pj(12.5).to_string(), "12.50 pJ");
        assert_eq!(Energy::from_pj(3_420.0).to_string(), "3.42 nJ");
        assert_eq!(Energy::from_uj(1.77).to_string(), "1.77 µJ");
    }
}
