//! Differential testing of the TinyRISC execution backends: random
//! programs are executed by the interpreter ([`lpmem_isa::Machine::run`]),
//! by the compiled micro-op backend, and by an independent reference
//! evaluator written here, and the full architectural state is compared.
//!
//! The interpreter is the **oracle**: it is checked against the reference
//! evaluator, and the compiled backend must then match the interpreter
//! bit-for-bit — registers, memory, step count, and every trace event.
//!
//! Two program families are generated: straight-line code with
//! *forward-only* control flow (termination is structural), and bounded
//! *backward* control flow — decrementing-counter loops and guarded
//! `jal`-to-earlier-address cycles — which is exactly the shape the block
//! cache must get right.

use lpmem_util::{Props, Rng};

use lpmem_isa::{assemble, Backend, Inst, Machine, Opcode, Reg};

const DATA_BASE: u32 = 0x8000;

/// The independent reference evaluator (deliberately written differently
/// from `Machine::step`: array walk over decoded instructions, `i128`-free
/// plain Rust semantics).
fn reference_run(insts: &[Inst]) -> ([u32; 16], std::collections::HashMap<u32, u8>) {
    let mut regs = [0u32; 16];
    let mut mem: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
    let rd8 = |mem: &std::collections::HashMap<u32, u8>, a: u32| -> u8 {
        mem.get(&a).copied().unwrap_or(0)
    };
    let rd = |mem: &std::collections::HashMap<u32, u8>, a: u32, n: u32| -> u32 {
        (0..n).fold(0u32, |acc, i| {
            acc | (rd8(mem, a.wrapping_add(i)) as u32) << (8 * i)
        })
    };
    let mut pc = 0usize;
    let mut steps = 0;
    while pc < insts.len() && steps < 10_000 {
        steps += 1;
        let inst = insts[pc];
        pc += 1;
        let set = |regs: &mut [u32; 16], r: Reg, v: u32| {
            if r.index() != 0 {
                regs[r.index()] = v;
            }
        };
        match inst {
            Inst::Halt => break,
            Inst::R {
                op,
                rd: d,
                rs1,
                rs2,
            } => {
                let (a, b) = (regs[rs1.index()], regs[rs2.index()]);
                let v = match op {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    Opcode::Xor => a ^ b,
                    Opcode::Sll => a << (b & 31),
                    Opcode::Srl => a >> (b & 31),
                    Opcode::Sra => ((a as i32) >> (b & 31)) as u32,
                    Opcode::Slt => ((a as i32) < (b as i32)) as u32,
                    Opcode::Sltu => (a < b) as u32,
                    Opcode::Mul => a.wrapping_mul(b),
                    _ => unreachable!(),
                };
                set(&mut regs, d, v);
            }
            Inst::I {
                op,
                rd: d,
                rs1,
                imm,
            } => {
                let a = regs[rs1.index()];
                let s = imm as u32;
                match op {
                    Opcode::Addi => set(&mut regs, d, a.wrapping_add(s)),
                    Opcode::Andi => set(&mut regs, d, a & s),
                    Opcode::Ori => set(&mut regs, d, a | s),
                    Opcode::Xori => set(&mut regs, d, a ^ s),
                    Opcode::Slli => set(&mut regs, d, a << (s & 31)),
                    Opcode::Srli => set(&mut regs, d, a >> (s & 31)),
                    Opcode::Slti => set(&mut regs, d, ((a as i32) < imm) as u32),
                    Opcode::Lui => set(&mut regs, d, s << 14),
                    Opcode::Lw => {
                        let v = rd(&mem, a.wrapping_add(s), 4);
                        set(&mut regs, d, v);
                    }
                    Opcode::Lh => {
                        let v = rd(&mem, a.wrapping_add(s), 2) as u16 as i16 as i32 as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Lhu => {
                        let v = rd(&mem, a.wrapping_add(s), 2);
                        set(&mut regs, d, v);
                    }
                    Opcode::Lb => {
                        let v = rd8(&mem, a.wrapping_add(s)) as i8 as i32 as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Lbu => {
                        let v = rd8(&mem, a.wrapping_add(s)) as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Sw | Opcode::Sh | Opcode::Sb => {
                        let n = match op {
                            Opcode::Sw => 4,
                            Opcode::Sh => 2,
                            _ => 1,
                        };
                        let base = a.wrapping_add(s);
                        let v = regs[d.index()];
                        for i in 0..n {
                            mem.insert(base.wrapping_add(i), (v >> (8 * i)) as u8);
                        }
                    }
                    _ => unreachable!(),
                }
            }
            Inst::B { op, rs1, rs2, imm } => {
                let (a, b) = (regs[rs1.index()], regs[rs2.index()]);
                let taken = match op {
                    Opcode::Beq => a == b,
                    Opcode::Bne => a != b,
                    Opcode::Blt => (a as i32) < (b as i32),
                    Opcode::Bge => (a as i32) >= (b as i32),
                    Opcode::Bltu => a < b,
                    Opcode::Bgeu => a >= b,
                    _ => unreachable!(),
                };
                if taken {
                    // pc already advanced by one; the offset is from there.
                    pc = (pc as i64 + imm as i64) as usize;
                }
            }
            Inst::J { rd: d, imm, .. } => {
                set(&mut regs, d, (pc as u32) * 4);
                pc = (pc as i64 + imm as i64) as usize;
            }
        }
    }
    (regs, mem)
}

/// Assembles `insts` (plus a trailing halt) and runs the full
/// three-way comparison:
///
/// 1. interpreter vs the reference evaluator (registers + memory);
/// 2. compiled backend vs the interpreter (registers, PC, halt flag,
///    step count, memory window, and byte-identical trace events).
fn check_program(insts: &[Inst]) {
    let mut src = String::from(".text\n");
    for inst in insts {
        src.push_str(&format!(".word {:#010x}\n", inst.encode()));
    }
    // A pad of halts, not just one: a trailing jump may overshoot the
    // first word after the program (the historical regression below ends
    // in `jal r10, +1`), and the reference evaluator treats every
    // out-of-program pc as termination.
    for _ in 0..9 {
        src.push_str("halt\n");
    }
    let program = assemble(&src).expect("word directives always assemble");

    let mut oracle = Machine::new(&program);
    let oracle_run = oracle.run(10_000).expect("program must halt");
    assert!(oracle.is_halted(), "program must halt");

    // Interpreter vs the independent reference.
    let (ref_regs, ref_mem) = reference_run(insts);
    for (i, &expect) in ref_regs.iter().enumerate() {
        assert_eq!(
            oracle.reg(Reg::new(i as u8).expect("in range")),
            expect,
            "register r{i} diverged from reference"
        );
    }
    for (&addr, &byte) in &ref_mem {
        assert_eq!(
            oracle.mem().read_u8(addr as u64),
            byte,
            "memory byte {addr:#x} diverged from reference"
        );
    }

    // Compiled backend vs the interpreter: full architectural state and
    // byte-identical trace.
    let mut compiled = Machine::new(&program);
    let compiled_run = compiled
        .run_with(Backend::Compiled, 10_000)
        .expect("program must halt on the compiled backend");
    assert_eq!(compiled_run.steps, oracle_run.steps, "step count diverged");
    assert_eq!(compiled_run.trace, oracle_run.trace, "trace diverged");
    assert_eq!(compiled.pc(), oracle.pc(), "pc diverged");
    assert_eq!(compiled.is_halted(), oracle.is_halted());
    for i in 0..16u8 {
        let r = Reg::new(i).expect("in range");
        assert_eq!(compiled.reg(r), oracle.reg(r), "register r{i} diverged");
    }
    // Generated stores land in [DATA_BASE, DATA_BASE + 64 + 4).
    for addr in DATA_BASE..DATA_BASE + 68 {
        assert_eq!(
            compiled.mem().read_u8(addr as u64),
            oracle.mem().read_u8(addr as u64),
            "memory byte {addr:#x} diverged between backends"
        );
    }
}

fn random_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range(0..16u8)).expect("in range")
}

/// A random instruction that neither branches nor jumps.
fn random_branch_free_inst(rng: &mut Rng) -> Inst {
    use Opcode::*;
    match rng.gen_range(0..3u32) {
        0 => {
            let op = *rng
                .choose(&[Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul])
                .expect("non-empty");
            Inst::R {
                op,
                rd: random_reg(rng),
                rs1: random_reg(rng),
                rs2: random_reg(rng),
            }
        }
        1 => {
            let op = *rng
                .choose(&[Addi, Andi, Ori, Xori, Slli, Srli, Slti, Lui])
                .expect("non-empty");
            Inst::I {
                op,
                rd: random_reg(rng),
                rs1: random_reg(rng),
                imm: rng.gen_range(-1000i32..1000),
            }
        }
        _ => {
            // Loads/stores hit a small window at DATA_BASE via r0 so
            // addresses are controlled (no self-modifying code).
            let op = *rng
                .choose(&[Lw, Lh, Lhu, Lb, Lbu, Sw, Sh, Sb])
                .expect("non-empty");
            Inst::I {
                op,
                rd: random_reg(rng),
                rs1: Reg::ZERO,
                imm: DATA_BASE as i32 + rng.gen_range(0i32..64),
            }
        }
    }
}

/// One random instruction at position `pos` of a `len`-long program, with
/// forward-only control flow.
fn random_inst(rng: &mut Rng, pos: usize, len: usize) -> Inst {
    use Opcode::*;
    // Control flow may only jump forward *within* the program (the word
    // after the last generated instruction is the halt), so branches and
    // jumps are only generated where a forward target exists.
    let remaining = (len - pos - 1) as i32;
    // Weights mirror the original proptest mix: 4 ALU-R, 4 ALU-I,
    // 2 loads/stores, 1 branch, 1 jump. Near the end of the program only
    // the branch-free classes are drawn.
    if remaining < 1 || rng.gen_range(0..12u32) < 10 {
        random_branch_free_inst(rng)
    } else if rng.gen_range(0..2u32) == 0 {
        let op = *rng
            .choose(&[Beq, Bne, Blt, Bge, Bltu, Bgeu])
            .expect("non-empty");
        Inst::B {
            op,
            rs1: random_reg(rng),
            rs2: random_reg(rng),
            imm: rng.gen_range(1i32..=remaining.min(8)),
        }
    } else {
        Inst::J {
            op: Jal,
            rd: random_reg(rng),
            imm: rng.gen_range(1i32..=remaining.min(8)),
        }
    }
}

fn random_forward_program(rng: &mut Rng) -> Vec<Inst> {
    let len = rng.gen_range(4..48usize);
    (0..len).map(|pos| random_inst(rng, pos, len)).collect()
}

/// The loop counter register; generated loop bodies never write it.
const COUNTER: u8 = 14;

/// A branch-free instruction that does not write the loop counter.
fn random_body_inst(rng: &mut Rng) -> Inst {
    loop {
        let inst = random_branch_free_inst(rng);
        let writes_counter = match inst {
            Inst::R { rd, .. } => rd.index() == COUNTER as usize,
            Inst::I { op, rd, .. } => {
                !matches!(op, Opcode::Sw | Opcode::Sh | Opcode::Sb)
                    && rd.index() == COUNTER as usize
            }
            _ => false,
        };
        if !writes_counter {
            return inst;
        }
    }
}

/// A decrementing-counter loop with a *backward conditional branch*:
///
/// ```text
///   addi r14, r0, n          ; n in 1..=8
/// loop:
///   <body>                   ; 1..=6 branch-free insts, r14 preserved
///   addi r14, r14, -1
///   bne  r14, r0, loop       ; backward, imm = -(body + 2)
///   <tail>                   ; 0..=4 branch-free insts
/// ```
fn random_loop_program(rng: &mut Rng) -> Vec<Inst> {
    let counter = Reg::new(COUNTER).expect("in range");
    let n = rng.gen_range(1i32..=8);
    let body = rng.gen_range(1usize..=6);
    let tail = rng.gen_range(0usize..=4);
    let mut insts = vec![Inst::I {
        op: Opcode::Addi,
        rd: counter,
        rs1: Reg::ZERO,
        imm: n,
    }];
    insts.extend((0..body).map(|_| random_body_inst(rng)));
    insts.push(Inst::I {
        op: Opcode::Addi,
        rd: counter,
        rs1: counter,
        imm: -1,
    });
    insts.push(Inst::B {
        op: Opcode::Bne,
        rs1: counter,
        rs2: Reg::ZERO,
        imm: -(body as i32 + 2),
    });
    insts.extend((0..tail).map(|_| random_body_inst(rng)));
    insts
}

/// A guarded `jal` to an *earlier* address:
///
/// ```text
///   addi r14, r0, n          ; n in 1..=6
///   <body>                   ; 0..=4 branch-free insts, r14 preserved
/// head:
///   addi r14, r14, -1
///   beq  r14, r0, done       ; forward, skips the backward jal
///   jal  rd, head            ; backward, imm = -3
/// done:
///   <tail>
/// ```
fn random_backward_jal_program(rng: &mut Rng) -> Vec<Inst> {
    let counter = Reg::new(COUNTER).expect("in range");
    let n = rng.gen_range(1i32..=6);
    let body = rng.gen_range(0usize..=4);
    let tail = rng.gen_range(0usize..=4);
    // The jal link register must not clobber the counter.
    let link = Reg::new(rng.gen_range(0..COUNTER)).expect("in range");
    let mut insts = vec![Inst::I {
        op: Opcode::Addi,
        rd: counter,
        rs1: Reg::ZERO,
        imm: n,
    }];
    insts.extend((0..body).map(|_| random_body_inst(rng)));
    insts.push(Inst::I {
        op: Opcode::Addi,
        rd: counter,
        rs1: counter,
        imm: -1,
    });
    insts.push(Inst::B {
        op: Opcode::Beq,
        rs1: counter,
        rs2: Reg::ZERO,
        imm: 1,
    });
    insts.push(Inst::J {
        op: Opcode::Jal,
        rd: link,
        imm: -3,
    });
    insts.extend((0..tail).map(|_| random_body_inst(rng)));
    insts
}

#[test]
fn machine_matches_reference_interpreter() {
    Props::new("machine matches the reference interpreter")
        .cases(256)
        .run(|rng| check_program(&random_forward_program(rng)));
}

#[test]
fn backward_branch_loops_match_on_all_backends() {
    Props::new("backward-branch loops match on all backends")
        .cases(192)
        .run(|rng| check_program(&random_loop_program(rng)));
}

#[test]
fn backward_jal_cycles_match_on_all_backends() {
    Props::new("backward-jal cycles match on all backends")
        .cases(192)
        .run(|rng| check_program(&random_backward_jal_program(rng)));
}

/// The shrunk counterexample from the retired proptest regression corpus
/// (`differential.proptest-regressions`), replayed explicitly: proptest
/// was removed in PR 1, which silently stopped this sequence from ever
/// running again.
#[test]
fn regression_shrunk_ori_jal_load_sequence() {
    use Opcode::*;
    let r = |i: u8| Reg::new(i).expect("in range");
    let add0 = Inst::R {
        op: Add,
        rd: r(0),
        rs1: r(0),
        rs2: r(0),
    };
    let insts = [
        add0,
        add0,
        add0,
        add0,
        add0,
        add0,
        add0,
        Inst::I {
            op: Ori,
            rd: r(0),
            rs1: r(8),
            imm: 577,
        },
        Inst::J {
            op: Jal,
            rd: r(0),
            imm: 3,
        },
        Inst::I {
            op: Lb,
            rd: r(0),
            rs1: r(0),
            imm: 32823,
        },
        Inst::I {
            op: Lh,
            rd: r(15),
            rs1: r(0),
            imm: 32809,
        },
        Inst::B {
            op: Bgeu,
            rs1: r(2),
            rs2: r(12),
            imm: 1,
        },
        Inst::I {
            op: Lw,
            rd: r(0),
            rs1: r(0),
            imm: 32827,
        },
        Inst::R {
            op: Or,
            rd: r(10),
            rs1: r(1),
            rs2: r(10),
        },
        Inst::B {
            op: Bgeu,
            rs1: r(5),
            rs2: r(0),
            imm: 1,
        },
        Inst::I {
            op: Lw,
            rd: r(13),
            rs1: r(0),
            imm: 32798,
        },
        Inst::J {
            op: Jal,
            rd: r(10),
            imm: 1,
        },
    ];
    check_program(&insts);
}
