//! Differential testing of the TinyRISC interpreter: random programs are
//! executed both by [`lpmem_isa::Machine`] and by an independent reference
//! evaluator written here, and the full architectural state is compared.
//!
//! The generator produces straight-line ALU code with loads, stores, and
//! *forward-only* branches (so every program terminates), assembled into
//! memory via `.word` directives — exercising the encoder, the decoder,
//! and the interpreter against a second implementation of the semantics.

use proptest::prelude::*;

use lpmem_isa::{assemble, Inst, Machine, Opcode, Reg};
use lpmem_trace::Trace;

const DATA_BASE: u32 = 0x8000;

/// The independent reference evaluator (deliberately written differently
/// from `Machine::step`: array walk over decoded instructions, `i128`-free
/// plain Rust semantics).
fn reference_run(insts: &[Inst]) -> ([u32; 16], std::collections::HashMap<u32, u8>) {
    let mut regs = [0u32; 16];
    let mut mem: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
    let rd8 = |mem: &std::collections::HashMap<u32, u8>, a: u32| -> u8 {
        mem.get(&a).copied().unwrap_or(0)
    };
    let rd = |mem: &std::collections::HashMap<u32, u8>, a: u32, n: u32| -> u32 {
        (0..n).fold(0u32, |acc, i| acc | (rd8(mem, a.wrapping_add(i)) as u32) << (8 * i))
    };
    let mut pc = 0usize;
    let mut steps = 0;
    while pc < insts.len() && steps < 10_000 {
        steps += 1;
        let inst = insts[pc];
        pc += 1;
        let set = |regs: &mut [u32; 16], r: Reg, v: u32| {
            if r.index() != 0 {
                regs[r.index()] = v;
            }
        };
        match inst {
            Inst::Halt => break,
            Inst::R { op, rd: d, rs1, rs2 } => {
                let (a, b) = (regs[rs1.index()], regs[rs2.index()]);
                let v = match op {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    Opcode::Xor => a ^ b,
                    Opcode::Sll => a << (b & 31),
                    Opcode::Srl => a >> (b & 31),
                    Opcode::Sra => ((a as i32) >> (b & 31)) as u32,
                    Opcode::Slt => ((a as i32) < (b as i32)) as u32,
                    Opcode::Sltu => (a < b) as u32,
                    Opcode::Mul => a.wrapping_mul(b),
                    _ => unreachable!(),
                };
                set(&mut regs, d, v);
            }
            Inst::I { op, rd: d, rs1, imm } => {
                let a = regs[rs1.index()];
                let s = imm as u32;
                match op {
                    Opcode::Addi => set(&mut regs, d, a.wrapping_add(s)),
                    Opcode::Andi => set(&mut regs, d, a & s),
                    Opcode::Ori => set(&mut regs, d, a | s),
                    Opcode::Xori => set(&mut regs, d, a ^ s),
                    Opcode::Slli => set(&mut regs, d, a << (s & 31)),
                    Opcode::Srli => set(&mut regs, d, a >> (s & 31)),
                    Opcode::Slti => set(&mut regs, d, ((a as i32) < imm) as u32),
                    Opcode::Lui => set(&mut regs, d, s << 14),
                    Opcode::Lw => {
                        let v = rd(&mem, a.wrapping_add(s), 4);
                        set(&mut regs, d, v);
                    }
                    Opcode::Lh => {
                        let v = rd(&mem, a.wrapping_add(s), 2) as u16 as i16 as i32 as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Lhu => {
                        let v = rd(&mem, a.wrapping_add(s), 2);
                        set(&mut regs, d, v);
                    }
                    Opcode::Lb => {
                        let v = rd8(&mem, a.wrapping_add(s)) as i8 as i32 as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Lbu => {
                        let v = rd8(&mem, a.wrapping_add(s)) as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Sw | Opcode::Sh | Opcode::Sb => {
                        let n = match op {
                            Opcode::Sw => 4,
                            Opcode::Sh => 2,
                            _ => 1,
                        };
                        let base = a.wrapping_add(s);
                        let v = regs[d.index()];
                        for i in 0..n {
                            mem.insert(base.wrapping_add(i), (v >> (8 * i)) as u8);
                        }
                    }
                    _ => unreachable!(),
                }
            }
            Inst::B { op, rs1, rs2, imm } => {
                let (a, b) = (regs[rs1.index()], regs[rs2.index()]);
                let taken = match op {
                    Opcode::Beq => a == b,
                    Opcode::Bne => a != b,
                    Opcode::Blt => (a as i32) < (b as i32),
                    Opcode::Bge => (a as i32) >= (b as i32),
                    Opcode::Bltu => a < b,
                    Opcode::Bgeu => a >= b,
                    _ => unreachable!(),
                };
                if taken {
                    // pc already advanced by one; the offset is from there.
                    pc = (pc as i64 + imm as i64) as usize;
                }
            }
            Inst::J { rd: d, imm, .. } => {
                set(&mut regs, d, (pc as u32) * 4);
                pc = (pc as i64 + imm as i64) as usize;
            }
        }
    }
    (regs, mem)
}

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::new(i).expect("in range"))
}

/// One random instruction at position `pos` of a `len`-long program.
fn inst_strategy(pos: usize, len: usize) -> BoxedStrategy<Inst> {
    use Opcode::*;
    let alu_r = (
        prop::sample::select(vec![Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul]),
        reg_strategy(),
        reg_strategy(),
        reg_strategy(),
    )
        .prop_map(|(op, rd, rs1, rs2)| Inst::R { op, rd, rs1, rs2 });
    let alu_i = (
        prop::sample::select(vec![Addi, Andi, Ori, Xori, Slli, Srli, Slti, Lui]),
        reg_strategy(),
        reg_strategy(),
        -1000i32..1000,
    )
        .prop_map(|(op, rd, rs1, imm)| Inst::I { op, rd, rs1, imm });
    // Loads/stores hit a small window at DATA_BASE via r0 so addresses are
    // controlled (no self-modifying code).
    let mem_op = (
        prop::sample::select(vec![Lw, Lh, Lhu, Lb, Lbu, Sw, Sh, Sb]),
        reg_strategy(),
        0i32..64,
    )
        .prop_map(|(op, rd, off)| Inst::I {
            op,
            rd,
            rs1: Reg::ZERO,
            imm: DATA_BASE as i32 + off,
        });
    // Control flow may only jump forward *within* the program (the word
    // after the last generated instruction is the halt).
    let remaining = (len - pos - 1) as i32;
    if remaining < 1 {
        return prop_oneof![1 => alu_r, 1 => alu_i, 1 => mem_op].boxed();
    }
    let branch = (
        prop::sample::select(vec![Beq, Bne, Blt, Bge, Bltu, Bgeu]),
        reg_strategy(),
        reg_strategy(),
        1i32..=remaining.min(8),
    )
        .prop_map(|(op, rs1, rs2, imm)| Inst::B { op, rs1, rs2, imm });
    let jump = (reg_strategy(), 1i32..=remaining.min(8))
        .prop_map(|(rd, imm)| Inst::J { op: Jal, rd, imm });
    prop_oneof![4 => alu_r, 4 => alu_i, 2 => mem_op, 1 => branch, 1 => jump].boxed()
}

fn program_strategy() -> impl Strategy<Value = Vec<Inst>> {
    (4usize..48).prop_flat_map(|len| {
        (0..len).map(|pos| inst_strategy(pos, len)).collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn machine_matches_reference_interpreter(insts in program_strategy()) {
        // Assemble the raw words into a program (text at 0).
        let mut src = String::from(".text\n");
        for inst in &insts {
            src.push_str(&format!(".word {:#010x}\n", inst.encode()));
        }
        src.push_str("halt\n");
        let program = assemble(&src).expect("word directives always assemble");
        let mut machine = Machine::new(&program);
        let mut trace = Trace::new();
        let mut steps = 0;
        while steps < 10_000 {
            steps += 1;
            if machine.step(&mut trace).expect("all generated words decode") {
                break;
            }
        }
        prop_assert!(machine.is_halted(), "program must halt");

        let (ref_regs, ref_mem) = reference_run(&insts);
        for (i, &expect) in ref_regs.iter().enumerate() {
            prop_assert_eq!(
                machine.reg(Reg::new(i as u8).expect("in range")),
                expect,
                "register r{} diverged",
                i
            );
        }
        for (&addr, &byte) in &ref_mem {
            prop_assert_eq!(
                machine.mem().read_u8(addr as u64),
                byte,
                "memory byte {:#x} diverged",
                addr
            );
        }
    }
}
