//! Differential testing of the TinyRISC interpreter: random programs are
//! executed both by [`lpmem_isa::Machine`] and by an independent reference
//! evaluator written here, and the full architectural state is compared.
//!
//! The generator produces straight-line ALU code with loads, stores, and
//! *forward-only* branches (so every program terminates), assembled into
//! memory via `.word` directives — exercising the encoder, the decoder,
//! and the interpreter against a second implementation of the semantics.

use lpmem_util::{Props, Rng};

use lpmem_isa::{assemble, Inst, Machine, Opcode, Reg};
use lpmem_trace::Trace;

const DATA_BASE: u32 = 0x8000;

/// The independent reference evaluator (deliberately written differently
/// from `Machine::step`: array walk over decoded instructions, `i128`-free
/// plain Rust semantics).
fn reference_run(insts: &[Inst]) -> ([u32; 16], std::collections::HashMap<u32, u8>) {
    let mut regs = [0u32; 16];
    let mut mem: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
    let rd8 = |mem: &std::collections::HashMap<u32, u8>, a: u32| -> u8 {
        mem.get(&a).copied().unwrap_or(0)
    };
    let rd = |mem: &std::collections::HashMap<u32, u8>, a: u32, n: u32| -> u32 {
        (0..n).fold(0u32, |acc, i| {
            acc | (rd8(mem, a.wrapping_add(i)) as u32) << (8 * i)
        })
    };
    let mut pc = 0usize;
    let mut steps = 0;
    while pc < insts.len() && steps < 10_000 {
        steps += 1;
        let inst = insts[pc];
        pc += 1;
        let set = |regs: &mut [u32; 16], r: Reg, v: u32| {
            if r.index() != 0 {
                regs[r.index()] = v;
            }
        };
        match inst {
            Inst::Halt => break,
            Inst::R {
                op,
                rd: d,
                rs1,
                rs2,
            } => {
                let (a, b) = (regs[rs1.index()], regs[rs2.index()]);
                let v = match op {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    Opcode::Xor => a ^ b,
                    Opcode::Sll => a << (b & 31),
                    Opcode::Srl => a >> (b & 31),
                    Opcode::Sra => ((a as i32) >> (b & 31)) as u32,
                    Opcode::Slt => ((a as i32) < (b as i32)) as u32,
                    Opcode::Sltu => (a < b) as u32,
                    Opcode::Mul => a.wrapping_mul(b),
                    _ => unreachable!(),
                };
                set(&mut regs, d, v);
            }
            Inst::I {
                op,
                rd: d,
                rs1,
                imm,
            } => {
                let a = regs[rs1.index()];
                let s = imm as u32;
                match op {
                    Opcode::Addi => set(&mut regs, d, a.wrapping_add(s)),
                    Opcode::Andi => set(&mut regs, d, a & s),
                    Opcode::Ori => set(&mut regs, d, a | s),
                    Opcode::Xori => set(&mut regs, d, a ^ s),
                    Opcode::Slli => set(&mut regs, d, a << (s & 31)),
                    Opcode::Srli => set(&mut regs, d, a >> (s & 31)),
                    Opcode::Slti => set(&mut regs, d, ((a as i32) < imm) as u32),
                    Opcode::Lui => set(&mut regs, d, s << 14),
                    Opcode::Lw => {
                        let v = rd(&mem, a.wrapping_add(s), 4);
                        set(&mut regs, d, v);
                    }
                    Opcode::Lh => {
                        let v = rd(&mem, a.wrapping_add(s), 2) as u16 as i16 as i32 as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Lhu => {
                        let v = rd(&mem, a.wrapping_add(s), 2);
                        set(&mut regs, d, v);
                    }
                    Opcode::Lb => {
                        let v = rd8(&mem, a.wrapping_add(s)) as i8 as i32 as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Lbu => {
                        let v = rd8(&mem, a.wrapping_add(s)) as u32;
                        set(&mut regs, d, v);
                    }
                    Opcode::Sw | Opcode::Sh | Opcode::Sb => {
                        let n = match op {
                            Opcode::Sw => 4,
                            Opcode::Sh => 2,
                            _ => 1,
                        };
                        let base = a.wrapping_add(s);
                        let v = regs[d.index()];
                        for i in 0..n {
                            mem.insert(base.wrapping_add(i), (v >> (8 * i)) as u8);
                        }
                    }
                    _ => unreachable!(),
                }
            }
            Inst::B { op, rs1, rs2, imm } => {
                let (a, b) = (regs[rs1.index()], regs[rs2.index()]);
                let taken = match op {
                    Opcode::Beq => a == b,
                    Opcode::Bne => a != b,
                    Opcode::Blt => (a as i32) < (b as i32),
                    Opcode::Bge => (a as i32) >= (b as i32),
                    Opcode::Bltu => a < b,
                    Opcode::Bgeu => a >= b,
                    _ => unreachable!(),
                };
                if taken {
                    // pc already advanced by one; the offset is from there.
                    pc = (pc as i64 + imm as i64) as usize;
                }
            }
            Inst::J { rd: d, imm, .. } => {
                set(&mut regs, d, (pc as u32) * 4);
                pc = (pc as i64 + imm as i64) as usize;
            }
        }
    }
    (regs, mem)
}

fn random_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range(0..16u8)).expect("in range")
}

/// One random instruction at position `pos` of a `len`-long program.
fn random_inst(rng: &mut Rng, pos: usize, len: usize) -> Inst {
    use Opcode::*;
    // Control flow may only jump forward *within* the program (the word
    // after the last generated instruction is the halt), so branches and
    // jumps are only generated where a forward target exists.
    let remaining = (len - pos - 1) as i32;
    // Weights mirror the original proptest mix: 4 ALU-R, 4 ALU-I,
    // 2 loads/stores, 1 branch, 1 jump. Near the end of the program only
    // the first three classes are drawn (equally weighted).
    let pick = if remaining < 1 {
        rng.gen_range(0..3u32) * 4 // 0, 4, or 8: one of the branch-free arms
    } else {
        rng.gen_range(0..12u32)
    };
    match pick {
        0..=3 => {
            let op = *rng
                .choose(&[Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul])
                .unwrap();
            Inst::R {
                op,
                rd: random_reg(rng),
                rs1: random_reg(rng),
                rs2: random_reg(rng),
            }
        }
        4..=7 => {
            let op = *rng
                .choose(&[Addi, Andi, Ori, Xori, Slli, Srli, Slti, Lui])
                .unwrap();
            Inst::I {
                op,
                rd: random_reg(rng),
                rs1: random_reg(rng),
                imm: rng.gen_range(-1000i32..1000),
            }
        }
        8..=9 => {
            // Loads/stores hit a small window at DATA_BASE via r0 so
            // addresses are controlled (no self-modifying code).
            let op = *rng.choose(&[Lw, Lh, Lhu, Lb, Lbu, Sw, Sh, Sb]).unwrap();
            Inst::I {
                op,
                rd: random_reg(rng),
                rs1: Reg::ZERO,
                imm: DATA_BASE as i32 + rng.gen_range(0i32..64),
            }
        }
        10 => {
            let op = *rng.choose(&[Beq, Bne, Blt, Bge, Bltu, Bgeu]).unwrap();
            Inst::B {
                op,
                rs1: random_reg(rng),
                rs2: random_reg(rng),
                imm: rng.gen_range(1i32..=remaining.min(8)),
            }
        }
        _ => Inst::J {
            op: Jal,
            rd: random_reg(rng),
            imm: rng.gen_range(1i32..=remaining.min(8)),
        },
    }
}

fn random_program(rng: &mut Rng) -> Vec<Inst> {
    let len = rng.gen_range(4..48usize);
    (0..len).map(|pos| random_inst(rng, pos, len)).collect()
}

#[test]
fn machine_matches_reference_interpreter() {
    Props::new("machine matches the reference interpreter")
        .cases(256)
        .run(|rng| {
            let insts = random_program(rng);
            // Assemble the raw words into a program (text at 0).
            let mut src = String::from(".text\n");
            for inst in &insts {
                src.push_str(&format!(".word {:#010x}\n", inst.encode()));
            }
            src.push_str("halt\n");
            let program = assemble(&src).expect("word directives always assemble");
            let mut machine = Machine::new(&program);
            let mut trace = Trace::new();
            let mut steps = 0;
            while steps < 10_000 {
                steps += 1;
                if machine
                    .step(&mut trace)
                    .expect("all generated words decode")
                {
                    break;
                }
            }
            assert!(machine.is_halted(), "program must halt");

            let (ref_regs, ref_mem) = reference_run(&insts);
            for (i, &expect) in ref_regs.iter().enumerate() {
                assert_eq!(
                    machine.reg(Reg::new(i as u8).expect("in range")),
                    expect,
                    "register r{i} diverged"
                );
            }
            for (&addr, &byte) in &ref_mem {
                assert_eq!(
                    machine.mem().read_u8(addr as u64),
                    byte,
                    "memory byte {addr:#x} diverged"
                );
            }
        });
}
