//! Property tests for the compiled backend's translation cache: the
//! compiled backend must be observationally identical to the interpreter
//! — registers, PC, halt state, step count, memory, and byte-identical
//! trace events — on programs that *rewrite their own text*, which forces
//! the store-to-text invalidation path: the patched slot is part of an
//! already-translated block when the store executes.

use lpmem_util::{Props, Rng};

use lpmem_isa::{assemble, Backend, Inst, Machine, Opcode, Reg};

const DATA_BASE: u32 = 0x8000;

fn random_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range(0..16u8)).expect("in range")
}

/// A random branch-free instruction (ALU or a load/store into the data
/// window) — safe filler that cannot redirect control flow.
fn random_filler(rng: &mut Rng) -> Inst {
    use Opcode::*;
    match rng.gen_range(0..3u32) {
        0 => Inst::R {
            op: *rng
                .choose(&[Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul])
                .expect("non-empty"),
            rd: random_reg(rng),
            rs1: random_reg(rng),
            rs2: random_reg(rng),
        },
        1 => Inst::I {
            op: *rng
                .choose(&[Addi, Andi, Ori, Xori, Slli, Srli, Slti, Lui])
                .expect("non-empty"),
            rd: random_reg(rng),
            rs1: random_reg(rng),
            imm: rng.gen_range(-1000i32..1000),
        },
        _ => Inst::I {
            op: *rng
                .choose(&[Lw, Lh, Lhu, Lb, Lbu, Sw, Sh, Sb])
                .expect("non-empty"),
            rd: random_reg(rng),
            rs1: Reg::ZERO,
            imm: DATA_BASE as i32 + rng.gen_range(0i32..64),
        },
    }
}

/// A random *branch-free* instruction to patch in: what the rewritten
/// text slot will decode to. Must not clobber the registers the patcher
/// uses (r1 holds the patch word).
fn random_patch_inst(rng: &mut Rng) -> Inst {
    use Opcode::*;
    let rd = Reg::new(rng.gen_range(2..16u8)).expect("in range");
    match rng.gen_range(0..2u32) {
        0 => Inst::I {
            op: *rng.choose(&[Addi, Ori, Xori, Slti]).expect("non-empty"),
            rd,
            rs1: random_reg(rng),
            imm: rng.gen_range(-1000i32..1000),
        },
        _ => Inst::R {
            op: *rng.choose(&[Add, Sub, Xor, Mul]).expect("non-empty"),
            rd,
            rs1: random_reg(rng),
            rs2: random_reg(rng),
        },
    }
}

/// Builds a self-modifying program:
///
/// ```text
///   lui r1, hi(patch)        ; materialize the patch word
///   ori r1, r1, lo(patch)
///   sw  r1, 4*slot(r0)       ; rewrite a *later* slot in the same block
///   <filler…>                ; branch-free, so everything is one block
///   <slot: originally filler, replaced by the patch at run time>
///   <filler…>
///   halt
/// ```
///
/// Both backends must execute the *patched* instruction: the interpreter
/// re-fetches every word; the compiled backend translated the whole
/// straight-line region into one block before the store, so it must
/// invalidate and re-translate.
fn self_modifying_program(rng: &mut Rng) -> Vec<Inst> {
    let patch = random_patch_inst(rng).encode();
    let filler_len = rng.gen_range(4usize..24);
    // The patched slot sits after the 3-instruction patcher prologue.
    let slot = 3 + rng.gen_range(0..filler_len);
    let r1 = Reg::new(1).expect("in range");
    let mut insts = vec![
        Inst::I {
            op: Opcode::Lui,
            rd: r1,
            rs1: Reg::ZERO,
            imm: ((patch >> 14) as i32) << 14 >> 14, // raw 18-bit field, sign-preserved
        },
        Inst::I {
            op: Opcode::Ori,
            rd: r1,
            rs1: r1,
            imm: (patch & 0x3FFF) as i32,
        },
        Inst::I {
            op: Opcode::Sw,
            rd: r1,
            rs1: Reg::ZERO,
            imm: 4 * slot as i32,
        },
    ];
    // Filler must not clobber r1 before the store — it executes after, so
    // any filler is fine; the patch itself never writes r0/r1.
    insts.extend((0..filler_len).map(|_| random_filler(rng)));
    insts
}

/// Runs `insts` (plus a trailing halt) on both backends and asserts full
/// observational equality. No reference evaluator here: self-modifying
/// programs execute text the instruction list doesn't contain, so the
/// interpreter is the only oracle.
fn check_backends_agree(insts: &[Inst]) {
    let mut src = String::from(".text\n");
    for inst in insts {
        src.push_str(&format!(".word {:#010x}\n", inst.encode()));
    }
    src.push_str("halt\n");
    let program = assemble(&src).expect("word directives always assemble");
    let text_bytes = 4 * (insts.len() as u32 + 1);

    let mut oracle = Machine::new(&program);
    let oracle_run = oracle.run(10_000).expect("program must halt");

    let mut compiled = Machine::new(&program);
    let compiled_run = compiled
        .run_with(Backend::Compiled, 10_000)
        .expect("program must halt on the compiled backend");

    assert_eq!(compiled_run.steps, oracle_run.steps, "step count diverged");
    assert_eq!(compiled_run.trace, oracle_run.trace, "trace diverged");
    assert_eq!(compiled.pc(), oracle.pc(), "pc diverged");
    assert_eq!(compiled.is_halted(), oracle.is_halted());
    for i in 0..16u8 {
        let r = Reg::new(i).expect("in range");
        assert_eq!(compiled.reg(r), oracle.reg(r), "register r{i} diverged");
    }
    // Compare the rewritten text region and the data window byte for
    // byte.
    for addr in 0..text_bytes {
        assert_eq!(
            compiled.mem().read_u8(addr as u64),
            oracle.mem().read_u8(addr as u64),
            "text byte {addr:#x} diverged"
        );
    }
    for addr in DATA_BASE..DATA_BASE + 68 {
        assert_eq!(
            compiled.mem().read_u8(addr as u64),
            oracle.mem().read_u8(addr as u64),
            "data byte {addr:#x} diverged"
        );
    }
}

#[test]
fn self_modifying_programs_match_the_interpreter() {
    Props::new("compiled backend matches the interpreter on self-modifying code")
        .cases(192)
        .run(|rng| check_backends_agree(&self_modifying_program(rng)));
}

/// The store may also rewrite the *store's own successor* — the tightest
/// possible invalidation: the very next instruction to execute is stale.
#[test]
fn patching_the_next_instruction_executes_the_patch() {
    let r = |i: u8| Reg::new(i).expect("in range");
    let patch = Inst::I {
        op: Opcode::Addi,
        rd: r(2),
        rs1: Reg::ZERO,
        imm: 99,
    }
    .encode();
    let insts = [
        Inst::I {
            op: Opcode::Lui,
            rd: r(1),
            rs1: Reg::ZERO,
            imm: ((patch >> 14) as i32) << 14 >> 14,
        },
        Inst::I {
            op: Opcode::Ori,
            rd: r(1),
            rs1: r(1),
            imm: (patch & 0x3FFF) as i32,
        },
        // Rewrites slot 3 — the instruction immediately after this store.
        Inst::I {
            op: Opcode::Sw,
            rd: r(1),
            rs1: Reg::ZERO,
            imm: 12,
        },
        // Originally r2 = 1; the store above replaces it with r2 = 99.
        Inst::I {
            op: Opcode::Addi,
            rd: r(2),
            rs1: Reg::ZERO,
            imm: 1,
        },
    ];
    check_backends_agree(&insts);
    // And the patched value is what actually landed.
    let mut src = String::from(".text\n");
    for inst in &insts {
        src.push_str(&format!(".word {:#010x}\n", inst.encode()));
    }
    src.push_str("halt\n");
    let program = assemble(&src).expect("assembles");
    let mut m = Machine::new(&program);
    m.run_with(Backend::Compiled, 100).expect("halts");
    assert_eq!(m.reg(r(2)), 99, "the patched instruction must execute");
}

/// Repeated kernel-style re-entry: a loop whose body is a separate block
/// (`jal` call) exercises block-cache reuse across thousands of entries;
/// the trace must still be byte-identical.
#[test]
fn block_reuse_across_many_entries_stays_identical() {
    let src = r#"
            li r1, 200
            li r2, 0
        loop:
            jal r15, body
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        body:
            add r2, r2, r1
            jalr r0, r15, 0
    "#;
    let program = assemble(src).expect("assembles");
    let mut oracle = Machine::new(&program);
    let oracle_run = oracle.run(100_000).expect("halts");
    let mut compiled = Machine::new(&program);
    let compiled_run = compiled
        .run_with(Backend::Compiled, 100_000)
        .expect("halts");
    assert_eq!(compiled_run.trace, oracle_run.trace);
    assert_eq!(compiled_run.steps, oracle_run.steps);
    assert_eq!(
        compiled.reg(Reg::new(2).expect("in range")),
        (1..=200).sum::<u32>()
    );
}
