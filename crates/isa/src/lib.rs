//! TinyRISC: a 32-bit load/store ISA, assembler, trace-emitting
//! interpreter, and a suite of embedded benchmark kernels.
//!
//! The DATE 2003 Session 1B evaluations ran embedded applications on ARM7,
//! Lx-ST200, and SimpleScalar toolchains that are unavailable here. TinyRISC
//! rebuilds that substrate: an in-order 32-bit core whose execution emits the
//! instruction-fetch and data-access streams the optimizations consume. The
//! [`kernels`] module ships MediaBench-class workloads (matmul, FIR, DCT,
//! histogram, CRC-32, sort, string search, RLE) written in TinyRISC assembly
//! and checked against Rust reference implementations.
//!
//! # Architecture
//!
//! * 16 general registers `r0..r15`, with `r0` hard-wired to zero.
//! * Little-endian unified memory (instructions and data).
//! * Three instruction formats (R, I with an 18-bit signed immediate, and
//!   J with a 22-bit signed word offset); every instruction is one 32-bit
//!   word.
//!
//! # Example
//!
//! ```
//! use lpmem_isa::{assemble, Machine};
//!
//! let program = assemble(
//!     r#"
//!     .text
//!         li   r1, 6
//!         li   r2, 7
//!         mul  r3, r1, r2
//!         sw   r3, 0x100(r0)
//!         halt
//!     "#,
//! )?;
//! let mut m = Machine::new(&program);
//! let run = m.run(1_000)?;
//! assert_eq!(m.mem().read_u32(0x100), 42);
//! assert!(run.trace.len() > 0);
//! # Ok::<(), lpmem_isa::IsaError>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
mod compile;
pub mod disasm;
mod exec;
pub mod inst;
pub mod kernels;
pub mod machine;
mod uop;

pub use asm::{assemble, Program};
pub use disasm::{disassemble, disassemble_word};
pub use inst::{Inst, Opcode, Reg};
pub use kernels::{Kernel, KernelRun};
pub use machine::{Backend, Machine, RunResult};

/// Errors from assembling or executing TinyRISC programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Assembly-time error with line number and message.
    Asm {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The machine decoded an invalid instruction word.
    IllegalInstruction {
        /// Program counter of the bad word.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
    /// The machine ran for the full step budget without halting.
    StepLimit {
        /// The exhausted budget.
        steps: u64,
    },
}

impl std::fmt::Display for IsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsaError::Asm { line, msg } => write!(f, "assembly error at line {line}: {msg}"),
            IsaError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            IsaError::StepLimit { steps } => {
                write!(f, "program did not halt within {steps} steps")
            }
        }
    }
}

impl std::error::Error for IsaError {}
