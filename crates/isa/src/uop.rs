//! Micro-op IR for the compiled execution backend.
//!
//! A [`UopBlock`] is one basic block's worth of instructions decoded
//! **once** into a flat stream of micro-ops: immediates are pre-sign-
//! extended to `u32`, register indices are resolved to plain `u8`s, shift
//! amounts are pre-masked, `lui` immediates are pre-shifted, and control
//! transfers whose target lands inside the same block are rewritten to
//! *stream offsets* so the dispatch loop never recomputes a PC-relative
//! target. Micro-ops map 1:1 onto instruction words (the uop at index `i`
//! executes the word at `entry + 4*i`), which is what keeps the fetch
//! events of the compiled backend byte-identical to the interpreter's.

use lpmem_trace::MemEvent;

/// An ALU operation shared by the register and immediate micro-op forms.
///
/// The immediate forms reuse the register table: `addi` evaluates as
/// [`AluOp::Add`] with the pre-extended immediate as its second operand,
/// and so on. The evaluation in [`apply`](AluOp::apply) is written to be
/// bit-for-bit the interpreter's `Machine::step` arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
}

impl AluOp {
    /// Evaluates `op(a, b)` with the interpreter's exact semantics.
    #[inline(always)]
    pub(crate) fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Branch condition, pre-decoded from the B-type opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl Cond {
    /// Evaluates the condition with the interpreter's exact semantics.
    #[inline(always)]
    pub(crate) fn holds(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

/// Load width + extension, pre-decoded from the load opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LoadKind {
    W,
    H,
    Hu,
    B,
    Bu,
}

/// Store width, pre-decoded from the store opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StoreKind {
    W,
    H,
    B,
}

/// The operation a micro-op performs.
///
/// Intra-block control flow (`Branch`, `JumpIdx`) carries a resolved
/// stream index; control flow that leaves the block (`BranchExit`,
/// `JumpOut`, `Jalr`) carries or computes an architectural PC and returns
/// to the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UopKind {
    /// Fetch-only: an ALU op whose destination is `r0` (the write is
    /// architecturally dead, but the fetch event still happens).
    Nop,
    /// `add rd, rs1, rs2` — the kernel library's hottest R-type op gets
    /// its own arm so the dispatch loop takes one indirect branch, not a
    /// second data-dependent `AluOp` match.
    Add { rd: u8, rs1: u8, rs2: u8 },
    /// `addi rd, rs1, imm` (rs1 != r0), specialized like [`Add`](Self::Add).
    AddImm { rd: u8, rs1: u8, imm: u32 },
    /// `slli rd, rs1, sh` with the shift amount pre-masked; hot in
    /// address-generation sequences.
    ShlImm { rd: u8, rs1: u8, sh: u32 },
    /// R-type ALU: `rd = op(regs[rs1], regs[rs2])`.
    Alu { op: AluOp, rd: u8, rs1: u8, rs2: u8 },
    /// I-type ALU with the immediate pre-sign-extended: `rd = op(regs[rs1], imm)`.
    AluImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: u32,
    },
    /// Constant materialization (`lui` with the shift pre-applied, or
    /// `addi rd, r0, imm`): `rd = value`.
    LoadImm { rd: u8, value: u32 },
    /// Memory load: `rd = load(regs[rs1] + off)`, emitting a read event.
    Load {
        kind: LoadKind,
        rd: u8,
        rs1: u8,
        off: u32,
    },
    /// Memory store: `store(regs[rs1] + off, regs[rs])`, emitting a write
    /// event; may invalidate translated text.
    Store {
        kind: StoreKind,
        rs: u8,
        rs1: u8,
        off: u32,
    },
    /// Conditional branch to a target inside this block (stream index).
    Branch {
        cond: Cond,
        rs1: u8,
        rs2: u8,
        idx: u32,
    },
    /// Conditional branch whose taken target leaves the block.
    BranchExit {
        cond: Cond,
        rs1: u8,
        rs2: u8,
        target: u32,
    },
    /// `jal` to a target inside this block: link, then continue at `idx`.
    JumpIdx { rd: u8, link: u32, idx: u32 },
    /// `jal` leaving the block: link, then return to the dispatcher.
    JumpOut { rd: u8, link: u32, target: u32 },
    /// `jalr rd, rs1, imm`: indirect target, always exits the block.
    Jalr { rd: u8, rs1: u8, imm: u32 },
    /// `halt`.
    Halt,
    /// An undecodable word: emits the fetch event, then reports
    /// [`crate::IsaError::IllegalInstruction`] with the PC unadvanced.
    Illegal,
}

impl UopKind {
    /// `true` for micro-ops that only touch the register file: no data
    /// events, no control flow, no errors. A maximal run of plain uops is
    /// a *span* the dispatcher executes in one batch — its fetch events
    /// go out as a single bulk copy and the step budget is checked once.
    #[inline]
    pub(crate) fn is_plain(&self) -> bool {
        matches!(
            self,
            UopKind::Nop
                | UopKind::Add { .. }
                | UopKind::AddImm { .. }
                | UopKind::ShlImm { .. }
                | UopKind::Alu { .. }
                | UopKind::AluImm { .. }
                | UopKind::LoadImm { .. }
        )
    }
}

/// One translated basic block: the entry PC and its micro-op stream, in
/// struct-of-arrays layout so the dispatcher can bulk-copy a span's fetch
/// events straight out of `fetches` while dispatching only on `kinds`.
#[derive(Debug, Clone)]
pub(crate) struct UopBlock {
    /// Address of the first instruction; the uop at index `i` corresponds
    /// to the word at `entry + 4*i`.
    pub(crate) entry: u32,
    /// The pre-decoded operation stream.
    pub(crate) kinds: Vec<UopKind>,
    /// Per-uop fetch events, pre-built at translation time (the original
    /// instruction word rides along as `fetch.value`). Contiguous so a
    /// span's worth is one `memcpy` into the trace.
    pub(crate) fetches: Vec<MemEvent>,
    /// `run_end[i]` is the end (exclusive stream index) of the maximal
    /// plain run starting at `i`, or `i` itself when `kinds[i]` is not
    /// plain. Branches may land mid-run, so this is per-index, not
    /// per-run-head.
    pub(crate) run_end: Vec<u32>,
}

impl UopBlock {
    /// First address past the block's text (`entry + 4 * len`), in `u64`
    /// to stay exact even for blocks ending at the top of the address
    /// space.
    pub(crate) fn end(&self) -> u64 {
        self.entry as u64 + 4 * self.kinds.len() as u64
    }
}
