//! Embedded benchmark kernels written in TinyRISC assembly.
//!
//! These substitute for the MediaBench/Ptolemy workloads of the DATE 2003
//! evaluations (`DESIGN.md` §4): the same dominant kernel classes — linear
//! algebra, filtering, transforms, table lookups, sorting, searching, and
//! byte-stream coding — with inputs drawn from realistic value ranges so
//! that downstream compressibility studies are non-trivial.
//!
//! Every kernel run is **verified**: the machine's output memory is compared
//! against a Rust reference implementation before the trace is returned.
//!
//! ```
//! use lpmem_isa::Kernel;
//!
//! let run = Kernel::Fir.run(16, 7)?;
//! assert!(run.trace.len() > 100);
//! # Ok::<(), lpmem_isa::IsaError>(())
//! ```

use lpmem_util::Rng;

use lpmem_trace::Trace;

use crate::asm::{assemble, Program};
use crate::machine::{Backend, Machine};
use crate::IsaError;

/// Base address of kernel input data.
const IN_BASE: u32 = 0x1_0000;
/// Base address of kernel outputs.
const OUT_BASE: u32 = 0x2_0000;
/// Base address of lookup tables.
const TBL_BASE: u32 = 0x3_0000;
/// Generous step budget for every kernel.
const MAX_STEPS: u64 = 50_000_000;

/// The kernel suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Dense integer matrix multiply, `N×N` (`scale` = N).
    MatMul,
    /// FIR filter over a synthetic waveform (`scale` = output length).
    Fir,
    /// 8-point integer DCT over pixel blocks (`scale` = number of blocks).
    Dct8,
    /// 256-bin byte histogram (`scale` = input bytes / 16).
    Histogram,
    /// Table-driven CRC-32 (`scale` = input bytes / 16).
    Crc32,
    /// Bubble sort of unsigned words (`scale` = element count).
    BubbleSort,
    /// Naive substring search counting matches (`scale` = text bytes / 16).
    StrSearch,
    /// Run-length encoder over a byte stream (`scale` = input bytes / 16).
    RleEncode,
    /// 3×3 integer convolution over a square image (`scale` = image width).
    Conv2d,
}

impl Kernel {
    /// All kernels, in canonical order.
    pub const ALL: [Kernel; 9] = [
        Kernel::MatMul,
        Kernel::Fir,
        Kernel::Dct8,
        Kernel::Histogram,
        Kernel::Crc32,
        Kernel::BubbleSort,
        Kernel::StrSearch,
        Kernel::RleEncode,
        Kernel::Conv2d,
    ];

    /// Short lowercase name, e.g. `"matmul"`.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::MatMul => "matmul",
            Kernel::Fir => "fir",
            Kernel::Dct8 => "dct8",
            Kernel::Histogram => "histogram",
            Kernel::Crc32 => "crc32",
            Kernel::BubbleSort => "bsort",
            Kernel::StrSearch => "strsearch",
            Kernel::RleEncode => "rle",
            Kernel::Conv2d => "conv2d",
        }
    }

    /// The scale used by the experiment harness.
    pub fn default_scale(self) -> u32 {
        match self {
            Kernel::MatMul => 12,
            Kernel::Fir => 96,
            Kernel::Dct8 => 24,
            Kernel::Histogram => 128,
            Kernel::Crc32 => 128,
            Kernel::BubbleSort => 96,
            Kernel::StrSearch => 128,
            Kernel::RleEncode => 128,
            Kernel::Conv2d => 18,
        }
    }

    /// Assembles the kernel at the given `scale` with inputs drawn from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero (every kernel needs at least one element).
    pub fn program(self, scale: u32, seed: u64) -> Program {
        assert!(scale > 0, "scale must be positive");
        let src = self.source(scale, seed);
        assemble(&src).unwrap_or_else(|e| panic!("kernel {} failed to assemble: {e}", self.name()))
    }

    /// Assembles, runs, and verifies the kernel, returning its trace.
    ///
    /// # Errors
    ///
    /// Propagates machine errors ([`IsaError::StepLimit`],
    /// [`IsaError::IllegalInstruction`]).
    ///
    /// # Panics
    ///
    /// Panics if the machine's output disagrees with the Rust reference
    /// implementation — that would be a bug in the kernel or the simulator.
    pub fn run(self, scale: u32, seed: u64) -> Result<KernelRun, IsaError> {
        self.run_with(Backend::Compiled, scale, seed)
    }

    /// [`Kernel::run`] on an explicit [`Backend`] (both produce identical
    /// traces; the interpreter is the differential-testing oracle).
    ///
    /// # Errors
    ///
    /// As for [`Kernel::run`].
    ///
    /// # Panics
    ///
    /// As for [`Kernel::run`].
    pub fn run_with(self, backend: Backend, scale: u32, seed: u64) -> Result<KernelRun, IsaError> {
        let program = self.program(scale, seed);
        let mut machine = Machine::new(&program);
        let result = machine.run_with(backend, MAX_STEPS)?;
        self.verify(scale, seed, &machine);
        Ok(KernelRun {
            kernel: self,
            scale,
            trace: result.trace,
            steps: result.steps,
        })
    }

    fn source(self, scale: u32, seed: u64) -> String {
        let mut rng = Rng::seed_from_u64(seed ^ (self as u64) << 32);
        match self {
            Kernel::MatMul => matmul_src(scale, &mut rng),
            Kernel::Fir => fir_src(scale, &mut rng),
            Kernel::Dct8 => dct8_src(scale, &mut rng),
            Kernel::Histogram => histogram_src(scale * 16, &mut rng),
            Kernel::Crc32 => crc32_src(scale * 16, &mut rng),
            Kernel::BubbleSort => bsort_src(scale, &mut rng),
            Kernel::StrSearch => strsearch_src(scale * 16, &mut rng),
            Kernel::RleEncode => rle_src(scale * 16, &mut rng),
            Kernel::Conv2d => conv2d_src(scale, &mut rng),
        }
    }

    fn verify(self, scale: u32, seed: u64, machine: &Machine) {
        let mut rng = Rng::seed_from_u64(seed ^ (self as u64) << 32);
        let mem = machine.mem();
        match self {
            Kernel::MatMul => {
                let n = scale as usize;
                let (a, b) = matmul_inputs(n, &mut rng);
                for i in 0..n {
                    for j in 0..n {
                        let mut acc = 0i32;
                        for k in 0..n {
                            acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
                        }
                        let got = mem.read_u32(OUT_BASE as u64 + 4 * (i * n + j) as u64) as i32;
                        assert_eq!(got, acc, "matmul c[{i}][{j}]");
                    }
                }
            }
            Kernel::Fir => {
                let (x, h, outs) = fir_inputs(scale as usize, &mut rng);
                for n in 0..outs {
                    let mut acc = 0i32;
                    for (t, &coef) in h.iter().enumerate() {
                        acc = acc.wrapping_add(x[n + t].wrapping_mul(coef));
                    }
                    let got = mem.read_u32(OUT_BASE as u64 + 4 * n as u64) as i32;
                    assert_eq!(got, acc, "fir y[{n}]");
                }
            }
            Kernel::Dct8 => {
                let blocks = scale as usize;
                let (pixels, coefs) = dct8_inputs(blocks, &mut rng);
                for b in 0..blocks {
                    for u in 0..8 {
                        let mut acc = 0i32;
                        for x in 0..8 {
                            acc =
                                acc.wrapping_add(pixels[b * 8 + x].wrapping_mul(coefs[u * 8 + x]));
                        }
                        let expect = acc >> 8;
                        let got = mem.read_u32(OUT_BASE as u64 + 4 * (b * 8 + u) as u64) as i32;
                        assert_eq!(got, expect, "dct8 block {b} coef {u}");
                    }
                }
            }
            Kernel::Histogram => {
                let input = byte_input(scale as usize * 16, &mut rng);
                let mut hist = [0u32; 256];
                for &b in &input {
                    hist[b as usize] += 1;
                }
                for (i, &expect) in hist.iter().enumerate() {
                    let got = mem.read_u32(OUT_BASE as u64 + 4 * i as u64);
                    assert_eq!(got, expect, "histogram bin {i}");
                }
            }
            Kernel::Crc32 => {
                let input = byte_input(scale as usize * 16, &mut rng);
                let expect = crc32_reference(&input);
                let got = mem.read_u32(OUT_BASE as u64);
                assert_eq!(got, expect, "crc32");
            }
            Kernel::BubbleSort => {
                let mut input = bsort_input(scale as usize, &mut rng);
                input.sort_unstable();
                for (i, &expect) in input.iter().enumerate() {
                    let got = mem.read_u32(IN_BASE as u64 + 4 * i as u64);
                    assert_eq!(got, expect, "bsort element {i}");
                }
            }
            Kernel::StrSearch => {
                let (text, pat) = strsearch_inputs(scale as usize * 16, &mut rng);
                let expect = text.windows(pat.len()).filter(|w| *w == &pat[..]).count() as u32;
                let got = mem.read_u32(OUT_BASE as u64);
                assert_eq!(got, expect, "strsearch count");
            }
            Kernel::Conv2d => {
                let w = scale as usize;
                let (img, ker) = conv2d_inputs(w, &mut rng);
                for y in 1..w - 1 {
                    for x in 1..w - 1 {
                        let mut acc = 0i32;
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let pix = img[(y + ky - 1) * w + (x + kx - 1)];
                                acc = acc.wrapping_add(pix.wrapping_mul(ker[ky * 3 + kx]));
                            }
                        }
                        let expect = acc >> 4;
                        let idx = (y - 1) * (w - 2) + (x - 1);
                        let got = mem.read_u32(OUT_BASE as u64 + 4 * idx as u64) as i32;
                        assert_eq!(got, expect, "conv2d out[{y}][{x}]");
                    }
                }
            }
            Kernel::RleEncode => {
                let input = rle_input(scale as usize * 16, &mut rng);
                let pairs = rle_reference(&input);
                let got_words = mem.read_u32((OUT_BASE + 0x8000) as u64) as usize;
                assert_eq!(got_words, 2 * pairs.len(), "rle output length");
                for (i, &(value, count)) in pairs.iter().enumerate() {
                    let v = mem.read_u32(OUT_BASE as u64 + 8 * i as u64);
                    let c = mem.read_u32(OUT_BASE as u64 + 8 * i as u64 + 4);
                    assert_eq!((v, c), (value as u32, count), "rle pair {i}");
                }
            }
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A verified kernel execution.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Which kernel ran.
    pub kernel: Kernel,
    /// The scale it ran at.
    pub scale: u32,
    /// The complete access trace.
    pub trace: Trace,
    /// Instructions executed.
    pub steps: u64,
}

// ---------------------------------------------------------------------------
// Input generation (shared between source emission and verification).
// ---------------------------------------------------------------------------

fn matmul_inputs(n: usize, rng: &mut Rng) -> (Vec<i32>, Vec<i32>) {
    let a = (0..n * n).map(|_| rng.gen_range(-100..100)).collect();
    let b = (0..n * n).map(|_| rng.gen_range(-100..100)).collect();
    (a, b)
}

fn fir_inputs(outs: usize, rng: &mut Rng) -> (Vec<i32>, Vec<i32>, usize) {
    let taps = 16;
    let len = outs + taps;
    // A smooth waveform with noise: neighbouring samples correlate, which is
    // what makes differential compression of signal buffers effective.
    let x = (0..len)
        .map(|i| {
            let base = (f64::sin(i as f64 * 0.12) * 2000.0) as i32;
            base + rng.gen_range(-64..64)
        })
        .collect();
    let h = (0..taps).map(|_| rng.gen_range(-32..32)).collect();
    (x, h, outs)
}

fn dct8_inputs(blocks: usize, rng: &mut Rng) -> (Vec<i32>, Vec<i32>) {
    // Pixel-like rows: a ramp plus noise per block.
    let mut pixels = Vec::with_capacity(blocks * 8);
    for _ in 0..blocks {
        let base = rng.gen_range(0..200i32);
        let slope = rng.gen_range(-6..6i32);
        for x in 0..8 {
            let v = (base + slope * x + rng.gen_range(-3..3i32)).clamp(0, 255);
            pixels.push(v);
        }
    }
    // Fixed-point (Q8) 8-point DCT-II basis.
    let mut coefs = Vec::with_capacity(64);
    for u in 0..8 {
        for x in 0..8 {
            let c = (std::f64::consts::PI / 8.0 * (x as f64 + 0.5) * u as f64).cos();
            let s = if u == 0 {
                (1.0f64 / 8.0).sqrt()
            } else {
                (2.0f64 / 8.0).sqrt()
            };
            coefs.push((s * c * 256.0).round() as i32);
        }
    }
    (pixels, coefs)
}

fn byte_input(len: usize, rng: &mut Rng) -> Vec<u8> {
    // Skewed byte distribution (text-like).
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.7) {
                rng.gen_range(0x61..0x7B) // lowercase letters
            } else {
                rng.gen_range(0x00..0xFF)
            }
        })
        .collect()
}

fn bsort_input(len: usize, rng: &mut Rng) -> Vec<u32> {
    (0..len).map(|_| rng.gen_range(0..10_000)).collect()
}

fn strsearch_inputs(len: usize, rng: &mut Rng) -> (Vec<u8>, Vec<u8>) {
    let mut text: Vec<u8> = (0..len).map(|_| rng.gen_range(b'a'..=b'd')).collect();
    let pat = vec![b'a', b'b', b'c', b'a'];
    // Plant a few guaranteed matches.
    for i in 0..len / 64 {
        let at = (i * 61) % (len - pat.len());
        text[at..at + pat.len()].copy_from_slice(&pat);
    }
    (text, pat)
}

fn rle_input(len: usize, rng: &mut Rng) -> Vec<u8> {
    // Runs of repeated bytes (scan-line-like data).
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let value = rng.gen_range(0..16u8) * 16;
        let run = rng.gen_range(1..24usize).min(len - out.len());
        out.extend(std::iter::repeat_n(value, run));
    }
    out
}

fn rle_reference(input: &[u8]) -> Vec<(u8, u32)> {
    let mut pairs = Vec::new();
    let mut i = 0;
    while i < input.len() {
        let v = input[i];
        let mut run = 1u32;
        while i + (run as usize) < input.len() && input[i + run as usize] == v && run < 255 {
            run += 1;
        }
        pairs.push((v, run));
        i += run as usize;
    }
    pairs
}

fn conv2d_inputs(w: usize, rng: &mut Rng) -> (Vec<i32>, Vec<i32>) {
    // Smooth image: a 2D gradient plus noise (pixel-like values).
    let mut img = Vec::with_capacity(w * w);
    for y in 0..w {
        for x in 0..w {
            let v = ((x * 7 + y * 5) % 200) as i32 + rng.gen_range(-4..4i32);
            img.push(v.clamp(0, 255));
        }
    }
    let ker = (0..9).map(|_| rng.gen_range(-8..8i32)).collect();
    (img, ker)
}

fn crc32_reference(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    table
}

// ---------------------------------------------------------------------------
// Source emission helpers.
// ---------------------------------------------------------------------------

/// Formats a slice of words as `.word` lines.
fn words(values: impl IntoIterator<Item = u32>) -> String {
    let mut out = String::new();
    let values: Vec<u32> = values.into_iter().collect();
    for chunk in values.chunks(8) {
        out.push_str("    .word ");
        let row: Vec<String> = chunk.iter().map(|v| format!("{:#010x}", v)).collect();
        out.push_str(&row.join(", "));
        out.push('\n');
    }
    out
}

/// Packs bytes little-endian into `.word` lines (padded with zeros).
fn byte_words(bytes: &[u8]) -> String {
    let packed = bytes.chunks(4).map(|c| {
        let mut w = [0u8; 4];
        w[..c.len()].copy_from_slice(c);
        u32::from_le_bytes(w)
    });
    words(packed)
}

fn matmul_src(n: u32, rng: &mut Rng) -> String {
    let (a, b) = matmul_inputs(n as usize, rng);
    format!(
        r#"
    .data {IN_BASE:#x}
a:
{a_words}
b:
{b_words}
    .text
        la   r10, a
        la   r11, b
        la   r12, c
        li   r14, {n}
        li   r1, 0            # i
ilo:    li   r2, 0            # j
jlo:    li   r3, 0            # k
        li   r4, 0            # acc
klo:    mul  r5, r1, r14
        add  r5, r5, r3
        slli r5, r5, 2
        add  r5, r5, r10
        lw   r6, (r5)
        mul  r7, r3, r14
        add  r7, r7, r2
        slli r7, r7, 2
        add  r7, r7, r11
        lw   r8, (r7)
        mul  r9, r6, r8
        add  r4, r4, r9
        addi r3, r3, 1
        blt  r3, r14, klo
        mul  r5, r1, r14
        add  r5, r5, r2
        slli r5, r5, 2
        add  r5, r5, r12
        sw   r4, (r5)
        addi r2, r2, 1
        blt  r2, r14, jlo
        addi r1, r1, 1
        blt  r1, r14, ilo
        halt
    .data {OUT_BASE:#x}
c:  .space {c_bytes}
"#,
        a_words = words(a.iter().map(|&v| v as u32)),
        b_words = words(b.iter().map(|&v| v as u32)),
        c_bytes = 4 * n * n,
    )
}

fn fir_src(outs: u32, rng: &mut Rng) -> String {
    let (x, h, _) = fir_inputs(outs as usize, rng);
    format!(
        r#"
    .data {IN_BASE:#x}
x:
{x_words}
h:
{h_words}
    .text
        la   r10, x
        la   r11, h
        la   r12, y
        li   r13, {outs}
        li   r14, {taps}
        li   r1, 0            # n
nlo:    li   r2, 0            # t
        li   r3, 0            # acc
tlo:    add  r4, r1, r2
        slli r4, r4, 2
        add  r4, r4, r10
        lw   r5, (r4)
        slli r6, r2, 2
        add  r6, r6, r11
        lw   r7, (r6)
        mul  r8, r5, r7
        add  r3, r3, r8
        addi r2, r2, 1
        blt  r2, r14, tlo
        slli r4, r1, 2
        add  r4, r4, r12
        sw   r3, (r4)
        addi r1, r1, 1
        blt  r1, r13, nlo
        halt
    .data {OUT_BASE:#x}
y:  .space {y_bytes}
"#,
        x_words = words(x.iter().map(|&v| v as u32)),
        h_words = words(h.iter().map(|&v| v as u32)),
        taps = h.len(),
        y_bytes = 4 * outs,
    )
}

fn dct8_src(blocks: u32, rng: &mut Rng) -> String {
    let (pixels, coefs) = dct8_inputs(blocks as usize, rng);
    format!(
        r#"
    .data {IN_BASE:#x}
pix:
{pix_words}
    .data {TBL_BASE:#x}
cos:
{cos_words}
    .text
        la   r10, pix
        la   r11, cos
        la   r12, out
        li   r13, {blocks}
        li   r15, 8
        li   r1, 0            # block
blo:    li   r2, 0            # u
ulo:    li   r3, 0            # x
        li   r4, 0            # acc
xlo:    slli r5, r1, 3
        add  r5, r5, r3
        slli r5, r5, 2
        add  r5, r5, r10
        lw   r6, (r5)
        slli r7, r2, 3
        add  r7, r7, r3
        slli r7, r7, 2
        add  r7, r7, r11
        lw   r8, (r7)
        mul  r9, r6, r8
        add  r4, r4, r9
        addi r3, r3, 1
        blt  r3, r15, xlo
        li   r9, 8
        sra  r4, r4, r9       # >> 8 (Q8 fixed point)
        slli r5, r1, 3
        add  r5, r5, r2
        slli r5, r5, 2
        add  r5, r5, r12
        sw   r4, (r5)
        addi r2, r2, 1
        blt  r2, r15, ulo
        addi r1, r1, 1
        blt  r1, r13, blo
        halt
    .data {OUT_BASE:#x}
out: .space {out_bytes}
"#,
        pix_words = words(pixels.iter().map(|&v| v as u32)),
        cos_words = words(coefs.iter().map(|&v| v as u32)),
        out_bytes = 4 * blocks * 8,
    )
}

fn histogram_src(len: u32, rng: &mut Rng) -> String {
    let input = byte_input(len as usize, rng);
    format!(
        r#"
    .data {IN_BASE:#x}
inp:
{in_words}
    .text
        la   r10, inp
        la   r11, hist
        li   r13, {len}
        li   r1, 0
lo:     add  r2, r1, r10
        lbu  r3, (r2)
        slli r4, r3, 2
        add  r4, r4, r11
        lw   r5, (r4)
        addi r5, r5, 1
        sw   r5, (r4)
        addi r1, r1, 1
        blt  r1, r13, lo
        halt
    .data {OUT_BASE:#x}
hist: .space 1024
"#,
        in_words = byte_words(&input),
    )
}

fn crc32_src(len: u32, rng: &mut Rng) -> String {
    let input = byte_input(len as usize, rng);
    let table = crc32_table();
    format!(
        r#"
    .data {IN_BASE:#x}
data:
{in_words}
    .data {TBL_BASE:#x}
tbl:
{tbl_words}
    .text
        la   r10, data
        la   r11, tbl
        la   r12, out
        li   r13, {len}
        li   r1, 0
        li   r2, -1           # crc = 0xffffffff
lo:     add  r3, r1, r10
        lbu  r4, (r3)
        xor  r5, r2, r4
        andi r5, r5, 0xff
        slli r5, r5, 2
        add  r5, r5, r11
        lw   r6, (r5)
        srli r7, r2, 8
        xor  r2, r6, r7
        addi r1, r1, 1
        blt  r1, r13, lo
        xori r2, r2, -1
        sw   r2, (r12)
        halt
    .data {OUT_BASE:#x}
out: .space 4
"#,
        in_words = byte_words(&input),
        tbl_words = words(table),
    )
}

fn bsort_src(len: u32, rng: &mut Rng) -> String {
    let input = bsort_input(len as usize, rng);
    format!(
        r#"
    .data {IN_BASE:#x}
arr:
{in_words}
    .text
        la   r10, arr
        li   r13, {len}
        li   r1, 0            # i
olo:    li   r2, 0            # j
        sub  r14, r13, r1
        addi r14, r14, -1     # limit = len - i - 1
ilo:    slli r3, r2, 2
        add  r3, r3, r10
        lw   r4, (r3)
        lw   r5, 4(r3)
        bgeu r5, r4, noswap
        sw   r5, (r3)
        sw   r4, 4(r3)
noswap: addi r2, r2, 1
        blt  r2, r14, ilo
        addi r1, r1, 1
        addi r6, r13, -1
        blt  r1, r6, olo
        halt
"#,
        in_words = words(input),
    )
}

fn strsearch_src(len: u32, rng: &mut Rng) -> String {
    let (text, pat) = strsearch_inputs(len as usize, rng);
    format!(
        r#"
    .data {IN_BASE:#x}
text:
{text_words}
pat:
{pat_words}
    .text
        la   r10, text
        la   r11, pat
        la   r12, out
        li   r13, {len}
        li   r14, {pat_len}
        li   r1, 0            # i
        li   r2, 0            # count
        sub  r9, r13, r14     # last valid start
olo:    blt  r9, r1, done
        li   r3, 0            # j
ilo:    add  r4, r1, r3
        add  r5, r4, r10
        lbu  r6, (r5)
        add  r7, r3, r11
        lbu  r8, (r7)
        bne  r6, r8, miss
        addi r3, r3, 1
        blt  r3, r14, ilo
        addi r2, r2, 1
miss:   addi r1, r1, 1
        j    olo
done:   sw   r2, (r12)
        halt
    .data {OUT_BASE:#x}
out: .space 4
"#,
        text_words = byte_words(&text),
        pat_words = byte_words(&pat),
        pat_len = pat.len(),
    )
}

fn rle_src(len: u32, rng: &mut Rng) -> String {
    let input = rle_input(len as usize, rng);
    let outlen_addr = OUT_BASE + 0x8000;
    format!(
        r#"
    .data {IN_BASE:#x}
inp:
{in_words}
    .text
        la   r10, inp
        la   r11, out
        la   r12, outlen
        li   r13, {len}
        li   r1, 0            # i
        li   r6, 0            # output index (words)
olo:    add  r2, r1, r10
        lbu  r3, (r2)         # run value
        li   r4, 1            # run length
rlo:    add  r5, r1, r4
        bge  r5, r13, emit
        add  r7, r5, r10
        lbu  r8, (r7)
        bne  r8, r3, emit
        addi r4, r4, 1
        li   r9, 255
        blt  r4, r9, rlo
emit:   slli r7, r6, 2
        add  r7, r7, r11
        sw   r3, (r7)
        sw   r4, 4(r7)
        addi r6, r6, 2
        add  r1, r1, r4
        blt  r1, r13, olo
        sw   r6, (r12)
        halt
    .data {OUT_BASE:#x}
out: .space {out_bytes}
    .data {outlen_addr:#x}
outlen: .space 4
"#,
        in_words = byte_words(&input),
        out_bytes = 8 * len, // worst case: every byte its own run
    )
}

fn conv2d_src(w: u32, rng: &mut Rng) -> String {
    assert!(w >= 3, "conv2d needs at least a 3x3 image");
    let (img, ker) = conv2d_inputs(w as usize, rng);
    format!(
        r#"
    .data {IN_BASE:#x}
img:
{img_words}
    .data {TBL_BASE:#x}
ker:
{ker_words}
    .text
        la   r10, img
        la   r11, ker
        la   r12, out
        li   r13, {w}
        li   r1, 1            # y
ylo:    li   r2, 1            # x
xlo:    li   r4, 0            # acc
        li   r3, 0            # ky
kylo:   li   r5, 0            # kx
kxlo:   addi r6, r1, -1
        add  r6, r6, r3
        mul  r6, r6, r13
        addi r7, r2, -1
        add  r7, r7, r5
        add  r6, r6, r7
        slli r6, r6, 2
        add  r6, r6, r10
        lw   r8, (r6)
        slli r9, r3, 1
        add  r9, r9, r3       # ky*3
        add  r9, r9, r5
        slli r9, r9, 2
        add  r9, r9, r11
        lw   r14, (r9)
        mul  r8, r8, r14
        add  r4, r4, r8
        addi r5, r5, 1
        li   r15, 3
        blt  r5, r15, kxlo
        addi r3, r3, 1
        blt  r3, r15, kylo
        li   r15, 4
        sra  r4, r4, r15      # >> 4 (fixed point)
        addi r6, r1, -1
        addi r7, r13, -2
        mul  r6, r6, r7
        addi r7, r2, -1
        add  r6, r6, r7
        slli r6, r6, 2
        add  r6, r6, r12
        sw   r4, (r6)
        addi r2, r2, 1
        addi r7, r13, -1
        blt  r2, r7, xlo
        addi r1, r1, 1
        addi r7, r13, -1
        blt  r1, r7, ylo
        halt
    .data {OUT_BASE:#x}
out: .space {out_bytes}
"#,
        img_words = words(img.iter().map(|&v| v as u32)),
        ker_words = words(ker.iter().map(|&v| v as u32)),
        out_bytes = 4 * (w - 2) * (w - 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test runs the kernel at a small scale; `run` panics on any
    // mismatch against the Rust reference, so reaching the assertions below
    // means the kernel is functionally correct.

    #[test]
    fn matmul_verifies() {
        let r = Kernel::MatMul.run(5, 11).unwrap();
        assert!(r.steps > 100);
    }

    #[test]
    fn fir_verifies() {
        let r = Kernel::Fir.run(24, 3).unwrap();
        assert!(r.trace.data_only().len() > 24);
    }

    #[test]
    fn dct8_verifies() {
        Kernel::Dct8.run(4, 5).unwrap();
    }

    #[test]
    fn histogram_verifies() {
        Kernel::Histogram.run(8, 9).unwrap();
    }

    #[test]
    fn crc32_verifies() {
        Kernel::Crc32.run(8, 1).unwrap();
    }

    #[test]
    fn bsort_verifies() {
        Kernel::BubbleSort.run(32, 2).unwrap();
    }

    #[test]
    fn strsearch_verifies() {
        Kernel::StrSearch.run(8, 4).unwrap();
    }

    #[test]
    fn rle_verifies() {
        Kernel::RleEncode.run(8, 6).unwrap();
    }

    #[test]
    fn conv2d_verifies() {
        Kernel::Conv2d.run(8, 3).unwrap();
    }

    #[test]
    #[should_panic(expected = "3x3 image")]
    fn conv2d_rejects_tiny_images() {
        Kernel::Conv2d.program(2, 1);
    }

    #[test]
    fn crc32_reference_matches_known_vector() {
        // CRC-32 of "123456789" is the classic check value 0xCBF43926.
        assert_eq!(crc32_reference(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = Kernel::Histogram.run(4, 1).unwrap();
        let b = Kernel::Histogram.run(4, 2).unwrap();
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = Kernel::Fir.run(16, 42).unwrap();
        let b = Kernel::Fir.run(16, 42).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn all_kernels_have_distinct_names() {
        let names: std::collections::HashSet<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), Kernel::ALL.len());
    }

    #[test]
    fn rle_reference_compresses_runs() {
        assert_eq!(rle_reference(&[5, 5, 5, 7]), vec![(5, 3), (7, 1)]);
        assert_eq!(rle_reference(&[]), vec![]);
        // Runs cap at 255.
        let long = vec![9u8; 300];
        assert_eq!(rle_reference(&long), vec![(9, 255), (9, 45)]);
    }
}
