//! Two-pass TinyRISC assembler.
//!
//! Syntax overview (see [`assemble`] for a complete example):
//!
//! ```text
//! .text [base]          # code section (default base 0x0)
//! .data [base]          # data section (default base 0x10000)
//! label:                # labels end with ':'
//! .word 1, 2, 0xff      # 32-bit data words
//! .space 64             # zero-filled bytes
//! add  rd, rs1, rs2     # R-type ALU
//! addi rd, rs1, -5      # I-type ALU
//! lw   rd, 8(rs1)       # loads; stores: sw rs, 8(rbase)
//! beq  r1, r2, label    # branches are PC-relative
//! jal  r15, label       # call; j label == jal r0, label
//! li   r1, 0x12345678   # pseudo: expands to lui+ori (or addi)
//! la   r1, buffer       # pseudo: load label address
//! mv   r1, r2           # pseudo: add r1, r2, r0
//! nop / halt
//! # comments start with '#', ';', or '//'
//! ```

use std::collections::HashMap;

use crate::inst::{Inst, Opcode, Reg, IMM18_MAX, IMM18_MIN, IMM22_MAX, IMM22_MIN};
use crate::IsaError;

const DEFAULT_TEXT_BASE: u32 = 0x0;
const DEFAULT_DATA_BASE: u32 = 0x1_0000;

/// A loadable memory image: `(base address, bytes)` segments plus the entry
/// point.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Program {
    segments: Vec<(u32, Vec<u8>)>,
    entry: u32,
    symbols: HashMap<String, u32>,
}

impl Program {
    /// The `(base, bytes)` segments in assembly order.
    pub fn segments(&self) -> &[(u32, Vec<u8>)] {
        &self.segments
    }

    /// The entry point (base of the first `.text` section).
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a label's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Total bytes across all segments.
    pub fn size_bytes(&self) -> usize {
        self.segments.iter().map(|(_, d)| d.len()).sum()
    }

    /// The instruction words of the first text segment (for bus-encoding
    /// studies that need the static code image).
    pub fn text_words(&self) -> Vec<u32> {
        match self.segments.first() {
            Some((_, bytes)) => bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
            None => Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// One parsed source item, sized during pass 1 and emitted during pass 2.
#[derive(Debug, Clone)]
enum Item {
    Inst {
        line: usize,
        mnemonic: String,
        args: Vec<String>,
    },
    Word(Vec<i64>),
    Space(u32),
}

impl Item {
    /// Size in bytes; pseudo-instruction sizes must be decidable here.
    fn size(&self) -> Result<u32, String> {
        Ok(match self {
            Item::Inst { mnemonic, args, .. } => match mnemonic.as_str() {
                "la" => 8,
                "li" => {
                    let v = parse_imm(args.get(1).map(String::as_str).unwrap_or("0"))
                        .unwrap_or(i64::MAX);
                    if (IMM18_MIN as i64..=IMM18_MAX as i64).contains(&v) {
                        4
                    } else {
                        8
                    }
                }
                _ => 4,
            },
            Item::Word(ws) => 4 * ws.len() as u32,
            Item::Space(n) => *n,
        })
    }
}

fn parse_reg(tok: &str) -> Result<Reg, String> {
    let tok = tok.trim();
    if tok == "zero" {
        return Ok(Reg::ZERO);
    }
    let idx = tok
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or_else(|| format!("expected register, found `{tok}`"))?;
    Reg::new(idx).ok_or_else(|| format!("register index out of range: `{tok}`"))
}

fn parse_imm(tok: &str) -> Result<i64, String> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| format!("expected immediate, found `{tok}`"))?;
    Ok(if neg { -value } else { value })
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for pat in ["#", ";", "//"] {
        if let Some(pos) = line.find(pat) {
            end = end.min(pos);
        }
    }
    &line[..end]
}

/// Splits `imm(rN)` into its parts.
fn parse_mem_operand(tok: &str) -> Result<(i64, Reg), String> {
    let open = tok
        .find('(')
        .ok_or_else(|| format!("expected `imm(reg)`, found `{tok}`"))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| format!("missing `)` in `{tok}`"))?;
    let imm_part = tok[..open].trim();
    let imm = if imm_part.is_empty() {
        0
    } else {
        parse_imm(imm_part)?
    };
    let reg = parse_reg(&tok[open + 1..close])?;
    Ok((imm, reg))
}

fn imm18(v: i64) -> Result<i32, String> {
    if (IMM18_MIN as i64..=IMM18_MAX as i64).contains(&v) {
        Ok(v as i32)
    } else {
        Err(format!("immediate {v} does not fit in 18 signed bits"))
    }
}

/// Re-interprets the low 18 bits of `bits` as the signed imm18 field (used
/// by `lui`, whose field is raw bits rather than an arithmetic value).
fn raw18(bits: u32) -> i32 {
    ((bits << 14) as i32) >> 14
}

/// Assembles TinyRISC source into a [`Program`].
///
/// # Errors
///
/// Returns [`IsaError::Asm`] with a line number for syntax errors, unknown
/// mnemonics, bad registers, out-of-range immediates, duplicate or undefined
/// labels.
///
/// # Examples
///
/// ```
/// let p = lpmem_isa::assemble(
///     r#"
///     .data 0x2000
///     buf: .word 1, 2, 3
///     .text
///         la  r1, buf
///         lw  r2, 4(r1)
///         halt
///     "#,
/// )?;
/// assert_eq!(p.symbol("buf"), Some(0x2000));
/// # Ok::<(), lpmem_isa::IsaError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, IsaError> {
    let err = |line: usize, msg: String| IsaError::Asm { line, msg };

    // Pass 1: tokenize into items, track addresses, collect labels.
    let mut items: Vec<(u32, Section, Item)> = Vec::new();
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut section = Section::Text;
    let mut text_pc = DEFAULT_TEXT_BASE;
    let mut data_pc = DEFAULT_DATA_BASE;
    let mut entry = None;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = strip_comment(raw).trim();
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break; // not a label; let the instruction parser complain
            }
            let here = match section {
                Section::Text => text_pc,
                Section::Data => data_pc,
            };
            if symbols.insert(label.to_owned(), here).is_some() {
                return Err(err(lineno, format!("duplicate label `{label}`")));
            }
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        let (head, tail) = match line.split_once(char::is_whitespace) {
            Some((h, t)) => (h, t.trim()),
            None => (line, ""),
        };
        match head {
            ".text" | ".data" => {
                let base = if tail.is_empty() {
                    None
                } else {
                    Some(parse_imm(tail).map_err(|m| err(lineno, m))? as u32)
                };
                if head == ".text" {
                    section = Section::Text;
                    if let Some(b) = base {
                        text_pc = b;
                    }
                    entry.get_or_insert(text_pc);
                } else {
                    section = Section::Data;
                    if let Some(b) = base {
                        data_pc = b;
                    }
                }
            }
            ".word" => {
                let words: Result<Vec<i64>, String> =
                    tail.split(',').map(|t| parse_imm(t.trim())).collect();
                let words = words.map_err(|m| err(lineno, m))?;
                let size = 4 * words.len() as u32;
                let item = Item::Word(words);
                match section {
                    Section::Text => {
                        items.push((text_pc, section, item));
                        text_pc += size;
                    }
                    Section::Data => {
                        items.push((data_pc, section, item));
                        data_pc += size;
                    }
                }
            }
            ".space" => {
                let n = parse_imm(tail).map_err(|m| err(lineno, m))? as u32;
                match section {
                    Section::Text => {
                        items.push((text_pc, section, Item::Space(n)));
                        text_pc += n;
                    }
                    Section::Data => {
                        items.push((data_pc, section, Item::Space(n)));
                        data_pc += n;
                    }
                }
            }
            _ if head.starts_with('.') => {
                return Err(err(lineno, format!("unknown directive `{head}`")));
            }
            _ => {
                if section != Section::Text {
                    return Err(err(lineno, "instructions must be in .text".to_owned()));
                }
                let args: Vec<String> = if tail.is_empty() {
                    Vec::new()
                } else {
                    tail.split(',').map(|a| a.trim().to_owned()).collect()
                };
                let item = Item::Inst {
                    line: lineno,
                    mnemonic: head.to_ascii_lowercase(),
                    args,
                };
                let size = item.size().map_err(|m| err(lineno, m))?;
                items.push((text_pc, section, item));
                text_pc += size;
            }
        }
    }

    // Pass 2: emit bytes.
    let entry = entry.unwrap_or(DEFAULT_TEXT_BASE);
    let mut text: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut data: Vec<(u32, Vec<u8>)> = Vec::new();
    for (addr, section, item) in items {
        let bytes = emit(addr, &item, &symbols)?;
        let out = match section {
            Section::Text => &mut text,
            Section::Data => &mut data,
        };
        // Coalesce contiguous output into one segment.
        match out.last_mut() {
            Some((base, buf)) if *base + buf.len() as u32 == addr => buf.extend(bytes),
            _ => out.push((addr, bytes)),
        }
    }
    let mut segments = text;
    segments.extend(data);
    Ok(Program {
        segments,
        entry,
        symbols,
    })
}

fn emit(addr: u32, item: &Item, symbols: &HashMap<String, u32>) -> Result<Vec<u8>, IsaError> {
    match item {
        Item::Word(ws) => Ok(ws.iter().flat_map(|w| (*w as u32).to_le_bytes()).collect()),
        Item::Space(n) => Ok(vec![0; *n as usize]),
        Item::Inst {
            line,
            mnemonic,
            args,
        } => {
            let insts = lower(addr, mnemonic, args, symbols)
                .map_err(|msg| IsaError::Asm { line: *line, msg })?;
            Ok(insts
                .into_iter()
                .flat_map(|i| i.encode().to_le_bytes())
                .collect())
        }
    }
}

/// Lowers one mnemonic (possibly a pseudo-instruction) to machine
/// instructions.
fn lower(
    addr: u32,
    mnemonic: &str,
    args: &[String],
    symbols: &HashMap<String, u32>,
) -> Result<Vec<Inst>, String> {
    use Opcode::*;

    let need = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{mnemonic}` expects {n} operands, found {}",
                args.len()
            ))
        }
    };
    let reg = |i: usize| parse_reg(&args[i]);
    let imm = |i: usize| parse_imm(&args[i]);
    // A branch/jump target: a label or an absolute address.
    let target = |i: usize| -> Result<u32, String> {
        let tok = args[i].trim();
        if let Some(&a) = symbols.get(tok) {
            Ok(a)
        } else {
            parse_imm(tok)
                .map(|v| v as u32)
                .map_err(|_| format!("undefined label `{tok}`"))
        }
    };
    let branch_off = |t: u32| -> Result<i32, String> {
        // PC arithmetic wraps modulo 2^32, matching the machine.
        let delta = t.wrapping_sub(addr.wrapping_add(4)) as i32 as i64;
        if delta % 4 != 0 {
            return Err(format!("branch target {t:#x} is not word-aligned"));
        }
        let words = delta / 4;
        if (IMM18_MIN as i64..=IMM18_MAX as i64).contains(&words) {
            Ok(words as i32)
        } else {
            Err(format!("branch target {t:#x} out of range"))
        }
    };

    let r_type = |op: Opcode| -> Result<Vec<Inst>, String> {
        need(3)?;
        Ok(vec![Inst::R {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            rs2: reg(2)?,
        }])
    };
    let i_type = |op: Opcode| -> Result<Vec<Inst>, String> {
        need(3)?;
        Ok(vec![Inst::I {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            imm: imm18(imm(2)?)?,
        }])
    };
    let mem_type = |op: Opcode| -> Result<Vec<Inst>, String> {
        need(2)?;
        let (off, base) = parse_mem_operand(&args[1])?;
        Ok(vec![Inst::I {
            op,
            rd: reg(0)?,
            rs1: base,
            imm: imm18(off)?,
        }])
    };
    let b_type = |op: Opcode| -> Result<Vec<Inst>, String> {
        need(3)?;
        let t = target(2)?;
        Ok(vec![Inst::B {
            op,
            rs1: reg(0)?,
            rs2: reg(1)?,
            imm: branch_off(t)?,
        }])
    };
    // Materialize a 32-bit constant into `rd`.
    let load_const = |rd: Reg, v: i64| -> Vec<Inst> {
        if (IMM18_MIN as i64..=IMM18_MAX as i64).contains(&v) {
            vec![Inst::I {
                op: Addi,
                rd,
                rs1: Reg::ZERO,
                imm: v as i32,
            }]
        } else {
            let bits = v as u32;
            let hi = raw18(bits >> 14);
            let lo = (bits & 0x3FFF) as i32;
            vec![
                Inst::I {
                    op: Lui,
                    rd,
                    rs1: Reg::ZERO,
                    imm: hi,
                },
                Inst::I {
                    op: Ori,
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ]
        }
    };

    match mnemonic {
        "add" => r_type(Add),
        "sub" => r_type(Sub),
        "and" => r_type(And),
        "or" => r_type(Or),
        "xor" => r_type(Xor),
        "sll" => r_type(Sll),
        "srl" => r_type(Srl),
        "sra" => r_type(Sra),
        "slt" => r_type(Slt),
        "sltu" => r_type(Sltu),
        "mul" => r_type(Mul),
        "addi" => i_type(Addi),
        "andi" => i_type(Andi),
        "ori" => i_type(Ori),
        "xori" => i_type(Xori),
        "slli" => i_type(Slli),
        "srli" => i_type(Srli),
        "slti" => i_type(Slti),
        "lui" => {
            need(2)?;
            Ok(vec![Inst::I {
                op: Lui,
                rd: reg(0)?,
                rs1: Reg::ZERO,
                imm: raw18(imm(1)? as u32),
            }])
        }
        "lw" => mem_type(Lw),
        "lh" => mem_type(Lh),
        "lb" => mem_type(Lb),
        "lbu" => mem_type(Lbu),
        "lhu" => mem_type(Lhu),
        "sw" => mem_type(Sw),
        "sh" => mem_type(Sh),
        "sb" => mem_type(Sb),
        "beq" => b_type(Beq),
        "bne" => b_type(Bne),
        "blt" => b_type(Blt),
        "bge" => b_type(Bge),
        "bltu" => b_type(Bltu),
        "bgeu" => b_type(Bgeu),
        "jal" => {
            need(2)?;
            let t = target(1)?;
            let delta = (t.wrapping_sub(addr.wrapping_add(4)) as i32 as i64) / 4;
            if !(IMM22_MIN as i64..=IMM22_MAX as i64).contains(&delta) {
                return Err(format!("jump target {t:#x} out of range"));
            }
            Ok(vec![Inst::J {
                op: Jal,
                rd: reg(0)?,
                imm: delta as i32,
            }])
        }
        "j" => {
            need(1)?;
            let t = target(0)?;
            let delta = (t.wrapping_sub(addr.wrapping_add(4)) as i32 as i64) / 4;
            if !(IMM22_MIN as i64..=IMM22_MAX as i64).contains(&delta) {
                return Err(format!("jump target {t:#x} out of range"));
            }
            Ok(vec![Inst::J {
                op: Jal,
                rd: Reg::ZERO,
                imm: delta as i32,
            }])
        }
        "jalr" => {
            need(3)?;
            Ok(vec![Inst::I {
                op: Jalr,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: imm18(imm(2)?)?,
            }])
        }
        "li" => {
            need(2)?;
            Ok(load_const(reg(0)?, imm(1)?))
        }
        "la" => {
            need(2)?;
            let t = target(1)?;
            // Always two instructions so pass-1 sizing stays exact.
            let bits = t;
            let hi = raw18(bits >> 14);
            let lo = (bits & 0x3FFF) as i32;
            let rd = reg(0)?;
            Ok(vec![
                Inst::I {
                    op: Lui,
                    rd,
                    rs1: Reg::ZERO,
                    imm: hi,
                },
                Inst::I {
                    op: Ori,
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ])
        }
        "mv" => {
            need(2)?;
            Ok(vec![Inst::R {
                op: Add,
                rd: reg(0)?,
                rs1: reg(1)?,
                rs2: Reg::ZERO,
            }])
        }
        "nop" => {
            need(0)?;
            Ok(vec![Inst::R {
                op: Add,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                rs2: Reg::ZERO,
            }])
        }
        "halt" => {
            need(0)?;
            Ok(vec![Inst::Halt])
        }
        _ => Err(format!("unknown mnemonic `{mnemonic}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_program() {
        let p = assemble("halt").unwrap();
        assert_eq!(p.entry(), 0);
        assert_eq!(p.size_bytes(), 4);
        assert_eq!(p.text_words(), vec![Inst::Halt.encode()]);
    }

    #[test]
    fn labels_and_branches_resolve() {
        let p = assemble(
            r#"
            .text
            start:
                addi r1, r0, 3
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("loop"), Some(4));
        let words = p.text_words();
        let bne = Inst::decode(words[2]).unwrap();
        // bne at address 8, target 4 -> offset (4 - 12)/4 = -2 words.
        match bne {
            Inst::B {
                op: Opcode::Bne,
                imm,
                ..
            } => assert_eq!(imm, -2),
            other => panic!("expected bne, got {other:?}"),
        }
    }

    #[test]
    fn li_small_is_one_inst_large_is_two() {
        let small = assemble("li r1, 5\nhalt").unwrap();
        assert_eq!(small.text_words().len(), 2);
        let large = assemble("li r1, 0x12345678\nhalt").unwrap();
        assert_eq!(large.text_words().len(), 3);
    }

    #[test]
    fn data_section_with_words() {
        let p = assemble(
            r#"
            .data 0x4000
            tbl: .word 10, -1, 0xffff
            buf: .space 8
            .text
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("tbl"), Some(0x4000));
        assert_eq!(p.symbol("buf"), Some(0x400c));
        let data_seg = p.segments().iter().find(|(b, _)| *b == 0x4000).unwrap();
        assert_eq!(data_seg.1.len(), 12 + 8);
        assert_eq!(&data_seg.1[0..4], &10u32.to_le_bytes());
        assert_eq!(&data_seg.1[4..8], &(-1i32 as u32).to_le_bytes());
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a:\na:\nhalt").unwrap_err();
        assert!(matches!(e, IsaError::Asm { line: 2, .. }), "{e}");
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("beq r0, r0, nowhere").unwrap_err();
        assert!(e.to_string().contains("nowhere"));
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        let e = assemble("frobnicate r1, r2").unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn out_of_range_immediate_is_an_error() {
        let e = assemble("addi r1, r0, 999999").unwrap_err();
        assert!(e.to_string().contains("18 signed bits"));
    }

    #[test]
    fn comments_are_ignored() {
        let p = assemble("# leading\naddi r1, r0, 1 ; trailing\nhalt // also\n").unwrap();
        assert_eq!(p.text_words().len(), 2);
    }

    #[test]
    fn mem_operand_forms() {
        let p = assemble("lw r1, 8(r2)\nsw r1, (r3)\nhalt").unwrap();
        let words = p.text_words();
        assert!(matches!(
            Inst::decode(words[0]),
            Some(Inst::I {
                op: Opcode::Lw,
                imm: 8,
                ..
            })
        ));
        assert!(matches!(
            Inst::decode(words[1]),
            Some(Inst::I {
                op: Opcode::Sw,
                imm: 0,
                ..
            })
        ));
    }

    #[test]
    fn la_loads_full_address() {
        let p = assemble(
            r#"
            .data 0x12344
            x: .word 0
            .text
                la r1, x
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.text_words().len(), 3); // lui + ori + halt
    }

    #[test]
    fn text_segments_coalesce() {
        let p = assemble("addi r1, r0, 1\naddi r2, r0, 2\nhalt").unwrap();
        assert_eq!(p.segments().len(), 1);
    }
}
