//! The compiled execution backend: a threaded dispatch loop over cached
//! [`UopBlock`](crate::uop::UopBlock)s.
//!
//! [`run_compiled`] is behaviourally equivalent to looping
//! [`Machine::step`] — same trace events (byte for byte), same register
//! file, same memory image, same step accounting, same errors — but it
//! pays the fetch and decode cost once per block translation instead of
//! once per executed instruction. The hot state (register file and PC)
//! lives in locals for the whole run and is written back to the
//! [`Machine`] on every exit path, so a `StepLimit` or
//! `IllegalInstruction` leaves the machine exactly where the interpreter
//! would.
//!
//! Data accesses go through a [`DataArena`]: a dense 1 MiB mirror of the
//! low address range (where TinyRISC programs keep text and data), seeded
//! from the machine's sparse [`FlatMemory`] at run start. Loads and
//! stores inside the arena are direct array indexing; a per-page dirty
//! bitmap records which 4 KiB pages stores touched, and exactly those
//! pages are written back to the `FlatMemory` on every exit path — and
//! before any block translation, which always reads the `FlatMemory`, so
//! self-modifying code never sees a stale mirror. Accesses above the
//! arena fall through to the sparse memory unchanged, and the
//! page-granular dirty write-back materializes exactly the pages the
//! interpreter's stores would, keeping `resident_pages` comparable.

use lpmem_mem::{FlatMemory, PAGE_SIZE};
use lpmem_trace::{AccessKind, MemEvent, Trace};

use crate::compile::BlockCache;
use crate::machine::{Machine, RunResult};
use crate::uop::{LoadKind, StoreKind, UopKind};
use crate::IsaError;

/// Bytes of low memory mirrored densely. Covers every address the kernel
/// library touches; anything above falls back to the sparse memory.
const ARENA_BYTES: usize = 1 << 20;
const ARENA_PAGES: usize = ARENA_BYTES / PAGE_SIZE;

std::thread_local! {
    /// Retired arena buffers, reused across runs. Allocating and then
    /// page-faulting a fresh zeroed MiB costs tens of microseconds per
    /// run — a measurable fraction of a whole kernel execution — so
    /// retiring runs scrub exactly the pages they touched and park the
    /// buffer here instead of freeing it. Invariant: a parked buffer is
    /// all-zero.
    static ARENA_POOL: std::cell::Cell<Option<Box<[u8; ARENA_BYTES]>>> =
        const { std::cell::Cell::new(None) };
}

/// Dense mirror of `[0, ARENA_BYTES)` with a dirty-page bitmap.
struct DataArena {
    /// Fixed-size so the arena length is a compile-time constant: the
    /// `addr <= ARENA_BYTES - n` range test then subsumes every slice
    /// bounds check on the hot load/store path.
    bytes: Box<[u8; ARENA_BYTES]>,
    /// Pages stored to since the last [`flush`](Self::flush).
    dirty: [u64; ARENA_PAGES / 64],
    /// Every page that may be nonzero: seeded at mirror time or ever
    /// dirtied. [`retire`](Self::retire) zeros exactly these.
    touched: [u64; ARENA_PAGES / 64],
}

impl DataArena {
    /// Seeds the mirror from every resident page below the arena top.
    fn mirror(mem: &FlatMemory) -> DataArena {
        let mut bytes: Box<[u8; ARENA_BYTES]> = match ARENA_POOL.take() {
            Some(pooled) => pooled,
            None => match vec![0u8; ARENA_BYTES].into_boxed_slice().try_into() {
                Ok(bytes) => bytes,
                Err(_) => unreachable!("boxed slice has length ARENA_BYTES"),
            },
        };
        let mut touched = [0u64; ARENA_PAGES / 64];
        for (base, page) in mem.pages_sorted() {
            // Pages are aligned, so `base < ARENA_BYTES` bounds the copy.
            if (base as usize) < ARENA_BYTES {
                bytes[base as usize..base as usize + PAGE_SIZE].copy_from_slice(&page[..]);
                let pg = base as usize / PAGE_SIZE;
                touched[pg >> 6] |= 1 << (pg & 63);
            }
        }
        DataArena {
            bytes,
            dirty: [0; ARENA_PAGES / 64],
            touched,
        }
    }

    #[inline(always)]
    fn mark(&mut self, offset: usize) {
        let page = offset / PAGE_SIZE;
        self.dirty[page >> 6] |= 1 << (page & 63);
    }

    /// Writes every dirty page back to `mem` and clears the bitmap.
    fn flush(&mut self, mem: &mut FlatMemory) {
        for (w, word) in self.dirty.iter_mut().enumerate() {
            let mut bits = *word;
            self.touched[w] |= bits;
            while bits != 0 {
                let page = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = page * PAGE_SIZE;
                mem.load(base as u64, &self.bytes[base..base + PAGE_SIZE]);
            }
            *word = 0;
        }
    }

    /// Scrubs every touched page back to zero and parks the buffer for
    /// the next run. Call after the final [`flush`](Self::flush).
    fn retire(mut self) {
        for (w, word) in self.touched.iter().enumerate() {
            let mut bits = *word | self.dirty[w];
            while bits != 0 {
                let page = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = page * PAGE_SIZE;
                self.bytes[base..base + PAGE_SIZE].fill(0);
            }
        }
        ARENA_POOL.set(Some(self.bytes));
    }
}

/// One byte, from whichever side of the arena boundary owns it. Only the
/// (rare) boundary-straddling access path uses this.
#[inline]
fn byte_at(arena: &DataArena, mem: &FlatMemory, addr: u64) -> u8 {
    match arena.bytes.get(addr as usize) {
        Some(&b) => b,
        None => mem.read_u8(addr),
    }
}

#[inline]
fn byte_to(arena: &mut DataArena, mem: &mut FlatMemory, addr: u64, value: u8) {
    let a = addr as usize;
    if a < ARENA_BYTES {
        arena.bytes[a] = value;
        arena.mark(a);
    } else {
        mem.write_u8(addr, value);
    }
}

#[inline(always)]
fn load_u32(arena: &DataArena, mem: &FlatMemory, addr: u64) -> u32 {
    let a = addr as usize;
    if addr <= (ARENA_BYTES - 4) as u64 {
        let b = &arena.bytes;
        u32::from_le_bytes([b[a], b[a + 1], b[a + 2], b[a + 3]])
    } else if addr >= ARENA_BYTES as u64 {
        mem.read_u32(addr)
    } else {
        u32::from_le_bytes([
            byte_at(arena, mem, addr),
            byte_at(arena, mem, addr + 1),
            byte_at(arena, mem, addr + 2),
            byte_at(arena, mem, addr + 3),
        ])
    }
}

#[inline(always)]
fn load_u16(arena: &DataArena, mem: &FlatMemory, addr: u64) -> u16 {
    let a = addr as usize;
    if addr <= (ARENA_BYTES - 2) as u64 {
        let b = &arena.bytes;
        u16::from_le_bytes([b[a], b[a + 1]])
    } else if addr >= ARENA_BYTES as u64 {
        mem.read_u16(addr)
    } else {
        u16::from_le_bytes([byte_at(arena, mem, addr), byte_at(arena, mem, addr + 1)])
    }
}

#[inline(always)]
fn load_u8(arena: &DataArena, mem: &FlatMemory, addr: u64) -> u8 {
    byte_at(arena, mem, addr)
}

#[inline(always)]
fn store_u32(arena: &mut DataArena, mem: &mut FlatMemory, addr: u64, value: u32) {
    let a = addr as usize;
    if addr <= (ARENA_BYTES - 4) as u64 {
        arena.bytes[a..a + 4].copy_from_slice(&value.to_le_bytes());
        arena.mark(a);
        arena.mark(a + 3);
    } else if addr >= ARENA_BYTES as u64 {
        mem.write_u32(addr, value);
    } else {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            byte_to(arena, mem, addr + i as u64, *b);
        }
    }
}

#[inline(always)]
fn store_u16(arena: &mut DataArena, mem: &mut FlatMemory, addr: u64, value: u16) {
    let a = addr as usize;
    if addr <= (ARENA_BYTES - 2) as u64 {
        arena.bytes[a..a + 2].copy_from_slice(&value.to_le_bytes());
        arena.mark(a);
        arena.mark(a + 1);
    } else if addr >= ARENA_BYTES as u64 {
        mem.write_u16(addr, value);
    } else {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            byte_to(arena, mem, addr + i as u64, *b);
        }
    }
}

#[inline(always)]
fn store_u8(arena: &mut DataArena, mem: &mut FlatMemory, addr: u64, value: u8) {
    byte_to(arena, mem, addr, value);
}

/// Runs `m` to completion on the compiled backend; the mirror of
/// [`Machine::run`].
pub(crate) fn run_compiled(m: &mut Machine, max_steps: u64) -> Result<RunResult, IsaError> {
    if max_steps == 0 {
        // The interpreter's loop body never runs with a zero budget.
        return Err(IsaError::StepLimit { steps: 0 });
    }
    if m.halted {
        // A step on a halted machine reports the halt without events; the
        // interpreter's run therefore returns after one step.
        return Ok(RunResult {
            trace: Trace::new(),
            steps: 1,
        });
    }
    // Every step pushes at least a fetch event; sizing the trace up front
    // keeps reallocation out of the dispatch loop (capped so tiny runs do
    // not over-allocate).
    let mut trace = Trace::with_capacity(max_steps.min(1 << 17) as usize);

    let mut cache = BlockCache::new();
    let mut arena = DataArena::mirror(&m.mem);
    let mut regs = m.regs;
    let mut pc = m.pc;
    let mut steps: u64 = 0;

    'dispatch: loop {
        let block = match cache.lookup(pc) {
            Some(block) => block,
            None => {
                // Translation reads the sparse memory; sync the mirror
                // first so freshly-stored text (self-modifying code, or a
                // jump into data written this run) is what gets decoded.
                arena.flush(&mut m.mem);
                cache.get_or_translate(pc, &m.mem)
            }
        };
        let entry = block.entry;
        let kinds = &block.kinds[..];
        let fetches = &block.fetches[..];
        let run_end = &block.run_end[..];
        // `i` is the stream index of the next micro-op; the corresponding
        // architectural PC is `entry + 4*i` throughout.
        let mut i: usize = 0;
        loop {
            // Span fast path: `[i, e)` is a straight-line run of plain
            // (register-only) micro-ops. Its fetch events go out as one
            // bulk copy and the step budget is debited once; the execute
            // loop then touches nothing but the register file. Runs that
            // would cross the step limit fall through to the per-uop path,
            // which stops at exactly the right instruction.
            if let Some(&e) = run_end.get(i) {
                let e = e as usize;
                if e > i && steps + (e - i) as u64 <= max_steps {
                    trace.extend_from_slice(&fetches[i..e]);
                    steps += (e - i) as u64;
                    for &k in &kinds[i..e] {
                        match k {
                            UopKind::Nop => {}
                            UopKind::Add { rd, rs1, rs2 } => {
                                regs[rd as usize] =
                                    regs[rs1 as usize].wrapping_add(regs[rs2 as usize]);
                            }
                            UopKind::AddImm { rd, rs1, imm } => {
                                regs[rd as usize] = regs[rs1 as usize].wrapping_add(imm);
                            }
                            UopKind::ShlImm { rd, rs1, sh } => {
                                regs[rd as usize] = regs[rs1 as usize].wrapping_shl(sh);
                            }
                            UopKind::Alu { op, rd, rs1, rs2 } => {
                                // Translation turns `rd == r0` ALU ops into
                                // `Nop`, so the write is always live here.
                                regs[rd as usize] =
                                    op.apply(regs[rs1 as usize], regs[rs2 as usize]);
                            }
                            UopKind::AluImm { op, rd, rs1, imm } => {
                                regs[rd as usize] = op.apply(regs[rs1 as usize], imm);
                            }
                            UopKind::LoadImm { rd, value } => {
                                regs[rd as usize] = value;
                            }
                            _ => unreachable!("plain runs hold register-only micro-ops"),
                        }
                    }
                    i = e;
                    continue;
                }
            }
            let k = match kinds.get(i) {
                Some(&k) => k,
                None => {
                    // A cap-truncated block falls through to its successor.
                    pc = entry.wrapping_add(4 * kinds.len() as u32);
                    continue 'dispatch;
                }
            };
            if steps == max_steps {
                arena.flush(&mut m.mem);
                arena.retire();
                m.regs = regs;
                m.pc = entry.wrapping_add(4 * i as u32);
                return Err(IsaError::StepLimit { steps: max_steps });
            }
            let cur_pc = entry.wrapping_add(4 * i as u32);
            trace.push(fetches[i]);
            steps += 1;
            match k {
                UopKind::Nop => i += 1,
                UopKind::Add { rd, rs1, rs2 } => {
                    regs[rd as usize] = regs[rs1 as usize].wrapping_add(regs[rs2 as usize]);
                    i += 1;
                }
                UopKind::AddImm { rd, rs1, imm } => {
                    regs[rd as usize] = regs[rs1 as usize].wrapping_add(imm);
                    i += 1;
                }
                UopKind::ShlImm { rd, rs1, sh } => {
                    regs[rd as usize] = regs[rs1 as usize].wrapping_shl(sh);
                    i += 1;
                }
                UopKind::Alu { op, rd, rs1, rs2 } => {
                    // Translation turns `rd == r0` ALU ops into `Nop`, so
                    // the write is always live here.
                    regs[rd as usize] = op.apply(regs[rs1 as usize], regs[rs2 as usize]);
                    i += 1;
                }
                UopKind::AluImm { op, rd, rs1, imm } => {
                    regs[rd as usize] = op.apply(regs[rs1 as usize], imm);
                    i += 1;
                }
                UopKind::LoadImm { rd, value } => {
                    regs[rd as usize] = value;
                    i += 1;
                }
                UopKind::Load { kind, rd, rs1, off } => {
                    let addr = regs[rs1 as usize].wrapping_add(off) as u64;
                    let (size, value) = match kind {
                        LoadKind::W => (4u8, load_u32(&arena, &m.mem, addr)),
                        LoadKind::H => (2, load_u16(&arena, &m.mem, addr) as i16 as i32 as u32),
                        LoadKind::Hu => (2, load_u16(&arena, &m.mem, addr) as u32),
                        LoadKind::B => (1, load_u8(&arena, &m.mem, addr) as i8 as i32 as u32),
                        LoadKind::Bu => (1, load_u8(&arena, &m.mem, addr) as u32),
                    };
                    trace.push(MemEvent {
                        addr,
                        kind: AccessKind::Read,
                        size,
                        value,
                    });
                    if rd != 0 {
                        regs[rd as usize] = value;
                    }
                    i += 1;
                }
                UopKind::Store { kind, rs, rs1, off } => {
                    let addr = regs[rs1 as usize].wrapping_add(off) as u64;
                    let value = regs[rs as usize];
                    let size = match kind {
                        StoreKind::W => {
                            store_u32(&mut arena, &mut m.mem, addr, value);
                            4u8
                        }
                        StoreKind::H => {
                            store_u16(&mut arena, &mut m.mem, addr, value as u16);
                            2
                        }
                        StoreKind::B => {
                            store_u8(&mut arena, &mut m.mem, addr, value as u8);
                            1
                        }
                    };
                    trace.push(MemEvent {
                        addr,
                        kind: AccessKind::Write,
                        size,
                        value,
                    });
                    if cache.invalidate(addr, size as u64) {
                        // The store may have rewritten translated text
                        // (possibly this very block); leave for the
                        // dispatcher, which re-translates from current
                        // memory.
                        pc = cur_pc.wrapping_add(4);
                        continue 'dispatch;
                    }
                    i += 1;
                }
                UopKind::Branch {
                    cond,
                    rs1,
                    rs2,
                    idx,
                } => {
                    i = if cond.holds(regs[rs1 as usize], regs[rs2 as usize]) {
                        idx as usize
                    } else {
                        i + 1
                    };
                }
                UopKind::BranchExit {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    if cond.holds(regs[rs1 as usize], regs[rs2 as usize]) {
                        pc = target;
                        continue 'dispatch;
                    }
                    i += 1;
                }
                UopKind::JumpIdx { rd, link, idx } => {
                    if rd != 0 {
                        regs[rd as usize] = link;
                    }
                    i = idx as usize;
                }
                UopKind::JumpOut { rd, link, target } => {
                    if rd != 0 {
                        regs[rd as usize] = link;
                    }
                    pc = target;
                    continue 'dispatch;
                }
                UopKind::Jalr { rd, rs1, imm } => {
                    // Read rs1 before linking: `jalr rd, rd, imm` jumps
                    // through the *old* rd, exactly as the interpreter.
                    let a = regs[rs1 as usize];
                    if rd != 0 {
                        regs[rd as usize] = cur_pc.wrapping_add(4);
                    }
                    pc = a.wrapping_add(imm) & !3;
                    continue 'dispatch;
                }
                UopKind::Halt => {
                    // The interpreter returns before advancing the PC, so
                    // a halted machine's PC points at the halt itself.
                    arena.flush(&mut m.mem);
                    arena.retire();
                    m.regs = regs;
                    m.pc = cur_pc;
                    m.halted = true;
                    return Ok(RunResult { trace, steps });
                }
                UopKind::Illegal => {
                    // The fetch event is emitted (as in the interpreter)
                    // but the PC does not advance.
                    arena.flush(&mut m.mem);
                    arena.retire();
                    m.regs = regs;
                    m.pc = cur_pc;
                    return Err(IsaError::IllegalInstruction {
                        pc: cur_pc,
                        word: fetches[i].value,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Backend;
    use crate::{assemble, Machine};

    fn both(src: &str, max_steps: u64) -> (Machine, Machine, Result<RunResult, IsaError>) {
        let p = assemble(src).expect("test program assembles");
        let mut oracle = Machine::new(&p);
        let mut compiled = Machine::new(&p);
        let expect = oracle.run(max_steps);
        let got = compiled.run_with(Backend::Compiled, max_steps);
        assert_eq!(got, expect, "run results diverged");
        (oracle, compiled, got)
    }

    fn assert_state_matches(oracle: &Machine, compiled: &Machine) {
        assert_eq!(compiled.pc(), oracle.pc(), "pc diverged");
        assert_eq!(compiled.is_halted(), oracle.is_halted(), "halt diverged");
        for i in 0..16u8 {
            let r = crate::Reg::new(i).expect("in range");
            assert_eq!(compiled.reg(r), oracle.reg(r), "r{i} diverged");
        }
    }

    #[test]
    fn loop_kernel_matches_interpreter_exactly() {
        let (oracle, compiled, result) = both(
            r#"
                li r1, 10
                li r2, 0
            loop:
                add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                sw   r2, 0x200(r0)
                halt
            "#,
            1_000,
        );
        assert_state_matches(&oracle, &compiled);
        assert_eq!(compiled.mem().read_u32(0x200), 55);
        assert_eq!(result.expect("halts").steps, 34);
    }

    #[test]
    fn step_limit_leaves_identical_state() {
        let src = "li r1, 1\nloop: addi r1, r1, 1\nj loop";
        let p = assemble(src).expect("assembles");
        for budget in [0u64, 1, 2, 3, 7, 100] {
            let mut oracle = Machine::new(&p);
            let mut compiled = Machine::new(&p);
            let e1 = oracle.run(budget);
            let e2 = compiled.run_with(Backend::Compiled, budget);
            assert_eq!(e2, e1, "budget {budget}");
            assert_state_matches(&oracle, &compiled);
        }
    }

    #[test]
    fn illegal_instruction_leaves_identical_state() {
        let src = ".text\nli r1, 7\n.word 0x78000000\nhalt";
        let p = assemble(src).expect("assembles");
        let mut oracle = Machine::new(&p);
        let mut compiled = Machine::new(&p);
        let e1 = oracle.run(100);
        let e2 = compiled.run_with(Backend::Compiled, 100);
        assert_eq!(e2, e1);
        assert!(matches!(
            e1,
            Err(IsaError::IllegalInstruction { pc: 4, .. })
        ));
        assert_state_matches(&oracle, &compiled);
    }

    #[test]
    fn halted_machine_reruns_identically() {
        let p = assemble("halt").expect("assembles");
        let mut m = Machine::new(&p);
        m.run_with(Backend::Compiled, 10).expect("halts");
        let again = m.run_with(Backend::Compiled, 10).expect("still halted");
        assert_eq!(again.steps, 1);
        assert!(again.trace.is_empty());
    }

    #[test]
    fn traces_are_byte_identical_on_a_memory_heavy_program() {
        let (oracle_run, compiled_run) = {
            let src = r#"
                li r1, 0x12345678
                sw r1, 0x100(r0)
                sb r1, 0x104(r0)
                sh r1, 0x106(r0)
                lw r2, 0x100(r0)
                lb r3, 0x104(r0)
                lbu r4, 0x104(r0)
                lh r5, 0x106(r0)
                lhu r6, 0x106(r0)
                halt
            "#;
            let p = assemble(src).expect("assembles");
            let mut oracle = Machine::new(&p);
            let mut compiled = Machine::new(&p);
            (
                oracle.run(1_000).expect("halts"),
                compiled.run_with(Backend::Compiled, 1_000).expect("halts"),
            )
        };
        assert_eq!(compiled_run.trace, oracle_run.trace);
        assert_eq!(compiled_run.steps, oracle_run.steps);
    }

    #[test]
    fn store_into_own_block_reexecutes_new_text() {
        // The store patches the later `addi r2, r0, 1` (still inside the
        // same translated block) into `addi r2, r0, 99`; both backends
        // must execute the patched instruction.
        // Text layout: lw at 0x0, sw at 0x4, addi at 0x8, halt at 0xc;
        // the patched word is seeded at 0x400 before the run.
        let src = r#"
                lw r3, 0x400(r0)
                sw r3, 8(r0)
                addi r2, r0, 1
                halt
        "#;
        let p = assemble(src).expect("assembles");
        let patched = crate::Inst::I {
            op: crate::Opcode::Addi,
            rd: crate::Reg::new(2).expect("in range"),
            rs1: crate::Reg::ZERO,
            imm: 99,
        }
        .encode();
        let run_one = |backend: Backend| {
            let mut m = Machine::new(&p);
            m.mem_mut().write_u32(0x400, patched);
            let r = m.run_with(backend, 1_000).expect("halts");
            (r, m)
        };
        let (r1, m1) = run_one(Backend::Interpret);
        let (r2, m2) = run_one(Backend::Compiled);
        assert_eq!(m1.reg(crate::Reg::new(2).expect("in range")), 99);
        assert_eq!(m2.reg(crate::Reg::new(2).expect("in range")), 99);
        assert_eq!(r2.trace, r1.trace);
        assert_eq!(r2.steps, r1.steps);
        assert_state_matches(&m1, &m2);
    }
}
