//! Disassembler: render decoded instructions back to assembler syntax.
//!
//! The output round-trips through [`crate::assemble`] (modulo labels —
//! branch targets are printed as absolute addresses, which the assembler
//! accepts), which the tests exercise for every opcode.

use std::fmt;

use crate::inst::{Inst, Opcode};

/// A decoded instruction paired with its address, for PC-relative
/// rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Located {
    /// The instruction's address.
    pub addr: u32,
    /// The decoded instruction.
    pub inst: Inst,
}

fn mnemonic(op: Opcode) -> &'static str {
    use Opcode::*;
    match op {
        Add => "add",
        Sub => "sub",
        And => "and",
        Or => "or",
        Xor => "xor",
        Sll => "sll",
        Srl => "srl",
        Sra => "sra",
        Slt => "slt",
        Sltu => "sltu",
        Mul => "mul",
        Addi => "addi",
        Andi => "andi",
        Ori => "ori",
        Xori => "xori",
        Slli => "slli",
        Srli => "srli",
        Slti => "slti",
        Lui => "lui",
        Lw => "lw",
        Lh => "lh",
        Lb => "lb",
        Lbu => "lbu",
        Lhu => "lhu",
        Sw => "sw",
        Sh => "sh",
        Sb => "sb",
        Beq => "beq",
        Bne => "bne",
        Blt => "blt",
        Bge => "bge",
        Bltu => "bltu",
        Bgeu => "bgeu",
        Jal => "jal",
        Jalr => "jalr",
        Halt => "halt",
    }
}

impl fmt::Display for Located {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match self.inst {
            Inst::Halt => write!(f, "halt"),
            Inst::R { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", mnemonic(op))
            }
            Inst::I { op, rd, rs1, imm } => match op {
                Lw | Lh | Lb | Lbu | Lhu | Sw | Sh | Sb => {
                    write!(f, "{} {rd}, {imm}({rs1})", mnemonic(op))
                }
                Lui => {
                    // The lui field is raw bits; print them unsigned.
                    write!(f, "lui {rd}, {:#x}", (imm as u32) & 0x3_FFFF)
                }
                _ => write!(f, "{} {rd}, {rs1}, {imm}", mnemonic(op)),
            },
            Inst::B { op, rs1, rs2, imm } => {
                let target = self.addr.wrapping_add(4).wrapping_add((imm as u32) << 2);
                write!(f, "{} {rs1}, {rs2}, {target:#x}", mnemonic(op))
            }
            Inst::J { rd, imm, .. } => {
                let target = self.addr.wrapping_add(4).wrapping_add((imm as u32) << 2);
                write!(f, "jal {rd}, {target:#x}")
            }
        }
    }
}

/// Disassembles a word at an address; returns `None` for undecodable
/// words (data mixed into text).
pub fn disassemble_word(addr: u32, word: u32) -> Option<String> {
    Inst::decode(word).map(|inst| Located { addr, inst }.to_string())
}

/// Disassembles a contiguous text image starting at `base`. Undecodable
/// words are rendered as `.word 0x…`.
pub fn disassemble(base: u32, words: &[u32]) -> Vec<String> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let addr = base + 4 * i as u32;
            disassemble_word(addr, w).unwrap_or_else(|| format!(".word {w:#010x}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::inst::Reg;
    use lpmem_util::Props;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn renders_every_format() {
        let cases = [
            (
                Inst::R {
                    op: Opcode::Mul,
                    rd: r(3),
                    rs1: r(4),
                    rs2: r(5),
                },
                "mul r3, r4, r5",
            ),
            (
                Inst::I {
                    op: Opcode::Addi,
                    rd: r(1),
                    rs1: r(2),
                    imm: -7,
                },
                "addi r1, r2, -7",
            ),
            (
                Inst::I {
                    op: Opcode::Lw,
                    rd: r(6),
                    rs1: r(7),
                    imm: 16,
                },
                "lw r6, 16(r7)",
            ),
            (
                Inst::I {
                    op: Opcode::Sw,
                    rd: r(6),
                    rs1: r(7),
                    imm: 0,
                },
                "sw r6, 0(r7)",
            ),
            (Inst::Halt, "halt"),
        ];
        for (inst, expect) in cases {
            assert_eq!(Located { addr: 0, inst }.to_string(), expect);
        }
    }

    #[test]
    fn branch_targets_are_absolute() {
        // bne at 0x8 with offset -2 words targets 0x8 + 4 - 8 = 0x4.
        let inst = Inst::B {
            op: Opcode::Bne,
            rs1: r(1),
            rs2: r(0),
            imm: -2,
        };
        assert_eq!(Located { addr: 8, inst }.to_string(), "bne r1, r0, 0x4");
    }

    #[test]
    fn undecodable_becomes_word_directive() {
        let lines = disassemble(0, &[Inst::Halt.encode(), 0x7800_0000]);
        assert_eq!(lines[0], "halt");
        assert_eq!(lines[1], ".word 0x78000000");
    }

    #[test]
    fn kernel_text_disassembles_fully() {
        // Every word of every kernel's text section must disassemble (the
        // kernels keep data out of .text).
        for &kernel in &crate::Kernel::ALL {
            let program = kernel.program(4, 1);
            let words = program.text_words();
            for (i, &w) in words.iter().enumerate() {
                assert!(
                    disassemble_word(4 * i as u32, w).is_some(),
                    "{}: word {i} ({w:#010x}) undecodable",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn disassembly_reassembles_to_identical_words() {
        let program = crate::Kernel::Fir.program(8, 2);
        let words = program.text_words();
        let source: String = disassemble(0, &words)
            .into_iter()
            .map(|l| format!("    {l}\n"))
            .collect();
        let reassembled = assemble(&source).expect("disassembly must reassemble");
        assert_eq!(reassembled.text_words(), words);
    }

    /// The shrunk counterexamples from the retired proptest regression
    /// corpus (`proptest-regressions/disasm.txt`), replayed explicitly:
    /// proptest was removed in PR 1, which silently stopped these words
    /// from ever being re-checked.
    ///
    /// * `1` — `add r0, r0, r0` with a set don't-care bit: the roundtrip
    ///   must land on the canonical encoding `0`, not the raw word.
    /// * `0xc86c0000` — a `blt` whose raw immediate field is zero.
    /// * `0x5c040000` — a `lui`, whose immediate prints as raw bits.
    #[test]
    fn regression_corpus_words_roundtrip_canonically() {
        for word in [1u32, 0xc86c_0000, 0x5c04_0000] {
            let inst = Inst::decode(word).expect("historical words decode");
            let text = disassemble_word(0, word).expect("decodable");
            let program = assemble(&text).expect("disassembly must parse");
            assert_eq!(
                program.text_words(),
                vec![inst.encode()],
                "word {word:#010x} ({text}) did not roundtrip"
            );
        }
    }

    /// Negative branch/jump offsets: the disassembler's printed target and
    /// the machine's taken-branch target both come from
    /// `pc.wrapping_add(4).wrapping_add((imm as u32) << 2)`; pin the
    /// agreement with asm → disasm → asm roundtrips over backward control
    /// flow, plus an execution check that the printed target is where the
    /// machine actually lands.
    #[test]
    fn negative_offsets_roundtrip_and_match_execution() {
        // A backward branch and a backward jal, written with labels.
        let src = r#"
                addi r1, r0, 2
            loop:
                addi r2, r2, 1
                addi r1, r1, -1
                bne  r1, r0, loop
                jal  r3, fwd
            back:
                addi r4, r4, 7
                halt
            fwd:
                jal  r5, back
        "#;
        let program = assemble(src).expect("assembles");
        let words = program.text_words();

        // The branch at 0xc must print its backward target 0x4, and the
        // jal at 0x1c its backward target 0x14.
        let bne = disassemble_word(0xc, words[3]).expect("decodable");
        assert_eq!(bne, "bne r1, r0, 0x4");
        assert!(
            matches!(Inst::decode(words[3]), Some(Inst::B { imm: -3, .. })),
            "backward branch encodes a negative immediate"
        );
        let jal_back = disassemble_word(0x1c, words[7]).expect("decodable");
        assert_eq!(jal_back, "jal r5, 0x14");
        assert!(
            matches!(Inst::decode(words[7]), Some(Inst::J { imm: -3, .. })),
            "backward jal encodes a negative immediate"
        );

        // Full-text roundtrip: disassembly (absolute targets) reassembles
        // to the identical words.
        let source: String = disassemble(0, &words)
            .into_iter()
            .map(|l| format!("    {l}\n"))
            .collect();
        let reassembled = assemble(&source).expect("disassembly must reassemble");
        assert_eq!(reassembled.text_words(), words);

        // Execution agrees with the printed targets: the loop runs twice
        // and the jal pair executes the `back` block.
        let mut m = crate::Machine::new(&program);
        m.run(1_000).expect("halts");
        assert_eq!(m.reg(r(2)), 2, "backward branch looped exactly twice");
        assert_eq!(m.reg(r(4)), 7, "backward jal reached the back block");
        assert_eq!(m.reg(r(3)), 0x14, "forward jal linked past the branch");
        assert_eq!(m.reg(r(5)), 0x20, "backward jal linked its successor");
    }

    /// Any decodable word disassembles to text that reassembles to its
    /// *canonical* encoding (the decoder ignores don't-care bits, so
    /// the roundtrip is exact modulo re-encoding the decoded form).
    #[test]
    fn display_roundtrips_through_assembler() {
        Props::new("disassembly roundtrips through the assembler")
            .cases(256)
            .run(|rng| {
                let word = rng.next_u32();
                if let Some(inst) = Inst::decode(word) {
                    let text = disassemble_word(0, word).expect("decodable");
                    let program = assemble(&text).expect("disassembly must parse");
                    assert_eq!(program.text_words(), vec![inst.encode()]);
                }
            });
    }
}
