//! The TinyRISC interpreter.

use lpmem_mem::FlatMemory;
use lpmem_trace::{AccessKind, MemEvent, Trace};

use crate::asm::Program;
use crate::inst::{Inst, Opcode, Reg};
use crate::IsaError;

/// Which execution engine drives a [`Machine`] run.
///
/// Both backends execute identical semantics and emit byte-identical
/// traces; the interpreter is the oracle the compiled backend is
/// differentially tested against (DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Fetch/decode/execute interpreter ([`Machine::step`] in a loop).
    Interpret,
    /// Basic-block translator: each block is decoded once into a cached
    /// micro-op stream executed by a tight dispatch loop.
    #[default]
    Compiled,
}

impl Backend {
    /// Both backends, interpreter first.
    pub const ALL: [Backend; 2] = [Backend::Interpret, Backend::Compiled];

    /// Short lowercase name, e.g. `"compiled"`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interpret => "interp",
            Backend::Compiled => "compiled",
        }
    }
}

/// Outcome of a [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The complete memory-access trace (instruction fetches, loads,
    /// stores) in program order.
    pub trace: Trace,
    /// Instructions executed.
    pub steps: u64,
}

/// An in-order TinyRISC core with unified [`FlatMemory`].
///
/// Every executed instruction appends its instruction fetch — and, for
/// loads/stores, its data access — to the run's [`Trace`], which is the
/// input of the energy-optimization flows.
#[derive(Debug, Clone)]
pub struct Machine {
    pub(crate) pc: u32,
    pub(crate) regs: [u32; 16],
    pub(crate) mem: FlatMemory,
    pub(crate) halted: bool,
}

impl Machine {
    /// Loads a program's segments into fresh memory and points the PC at
    /// its entry.
    pub fn new(program: &Program) -> Self {
        let mut mem = FlatMemory::new();
        for (base, bytes) in program.segments() {
            mem.load(*base as u64, bytes);
        }
        Machine {
            pc: program.entry(),
            regs: [0; 16],
            mem,
            halted: false,
        }
    }

    /// The program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads a register (`r0` is always zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `r0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = value;
        }
    }

    /// The machine's memory.
    pub fn mem(&self) -> &FlatMemory {
        &self.mem
    }

    /// Exclusive access to the machine's memory (for seeding inputs).
    pub fn mem_mut(&mut self) -> &mut FlatMemory {
        &mut self.mem
    }

    /// Executes one instruction, appending its accesses to `trace`.
    /// Returns `true` when the machine halts.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::IllegalInstruction`] on an undecodable word.
    pub fn step(&mut self, trace: &mut Trace) -> Result<bool, IsaError> {
        if self.halted {
            return Ok(true);
        }
        let pc = self.pc;
        let word = self.mem.read_u32(pc as u64);
        trace.push(MemEvent::fetch(pc as u64).with_value(word));
        let inst = Inst::decode(word).ok_or(IsaError::IllegalInstruction { pc, word })?;
        let mut next_pc = pc.wrapping_add(4);
        match inst {
            Inst::Halt => {
                self.halted = true;
                return Ok(true);
            }
            Inst::R { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let v = match op {
                    Opcode::Add => a.wrapping_add(b),
                    Opcode::Sub => a.wrapping_sub(b),
                    Opcode::And => a & b,
                    Opcode::Or => a | b,
                    Opcode::Xor => a ^ b,
                    Opcode::Sll => a.wrapping_shl(b & 31),
                    Opcode::Srl => a.wrapping_shr(b & 31),
                    Opcode::Sra => (a as i32).wrapping_shr(b & 31) as u32,
                    Opcode::Slt => ((a as i32) < (b as i32)) as u32,
                    Opcode::Sltu => (a < b) as u32,
                    Opcode::Mul => a.wrapping_mul(b),
                    _ => unreachable!("decoder only produces ALU ops in R-form"),
                };
                self.set_reg(rd, v);
            }
            Inst::I { op, rd, rs1, imm } => {
                let a = self.reg(rs1);
                let simm = imm as u32;
                match op {
                    Opcode::Addi => self.set_reg(rd, a.wrapping_add(simm)),
                    Opcode::Andi => self.set_reg(rd, a & simm),
                    Opcode::Ori => self.set_reg(rd, a | simm),
                    Opcode::Xori => self.set_reg(rd, a ^ simm),
                    Opcode::Slli => self.set_reg(rd, a.wrapping_shl(simm & 31)),
                    Opcode::Srli => self.set_reg(rd, a.wrapping_shr(simm & 31)),
                    Opcode::Slti => self.set_reg(rd, ((a as i32) < imm) as u32),
                    Opcode::Lui => self.set_reg(rd, simm << 14),
                    Opcode::Jalr => {
                        self.set_reg(rd, next_pc);
                        next_pc = a.wrapping_add(simm) & !3;
                    }
                    Opcode::Lw | Opcode::Lh | Opcode::Lhu | Opcode::Lb | Opcode::Lbu => {
                        let addr = a.wrapping_add(simm) as u64;
                        let (size, value) = match op {
                            Opcode::Lw => (4u8, self.mem.read_u32(addr)),
                            Opcode::Lh => (2, self.mem.read_u16(addr) as i16 as i32 as u32),
                            Opcode::Lhu => (2, self.mem.read_u16(addr) as u32),
                            Opcode::Lb => (1, self.mem.read_u8(addr) as i8 as i32 as u32),
                            Opcode::Lbu => (1, self.mem.read_u8(addr) as u32),
                            _ => unreachable!(),
                        };
                        trace.push(MemEvent {
                            addr,
                            kind: AccessKind::Read,
                            size,
                            value,
                        });
                        self.set_reg(rd, value);
                    }
                    Opcode::Sw | Opcode::Sh | Opcode::Sb => {
                        let addr = a.wrapping_add(simm) as u64;
                        let value = self.reg(rd);
                        let size = match op {
                            Opcode::Sw => {
                                self.mem.write_u32(addr, value);
                                4u8
                            }
                            Opcode::Sh => {
                                self.mem.write_u16(addr, value as u16);
                                2
                            }
                            Opcode::Sb => {
                                self.mem.write_u8(addr, value as u8);
                                1
                            }
                            _ => unreachable!(),
                        };
                        trace.push(MemEvent {
                            addr,
                            kind: AccessKind::Write,
                            size,
                            value,
                        });
                    }
                    _ => unreachable!("decoder only produces I-form ops here"),
                }
            }
            Inst::B { op, rs1, rs2, imm } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match op {
                    Opcode::Beq => a == b,
                    Opcode::Bne => a != b,
                    Opcode::Blt => (a as i32) < (b as i32),
                    Opcode::Bge => (a as i32) >= (b as i32),
                    Opcode::Bltu => a < b,
                    Opcode::Bgeu => a >= b,
                    _ => unreachable!("decoder only produces branches in B-form"),
                };
                if taken {
                    next_pc = pc.wrapping_add(4).wrapping_add((imm as u32) << 2);
                }
            }
            Inst::J { rd, imm, .. } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(4).wrapping_add((imm as u32) << 2);
            }
        }
        self.pc = next_pc;
        Ok(false)
    }

    /// Runs until `halt`, collecting the full access trace.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::IllegalInstruction`] for undecodable words and
    /// [`IsaError::StepLimit`] when the program does not halt within
    /// `max_steps` instructions.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, IsaError> {
        let mut trace = Trace::new();
        for steps in 0..max_steps {
            if self.step(&mut trace)? {
                return Ok(RunResult {
                    trace,
                    steps: steps + 1,
                });
            }
        }
        Err(IsaError::StepLimit { steps: max_steps })
    }

    /// Runs until `halt` on the chosen [`Backend`].
    ///
    /// `run_with(Backend::Interpret, n)` is exactly [`Machine::run`];
    /// `Backend::Compiled` executes through the block translator with
    /// identical architectural results, trace bytes, step accounting, and
    /// errors.
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`].
    pub fn run_with(&mut self, backend: Backend, max_steps: u64) -> Result<RunResult, IsaError> {
        match backend {
            Backend::Interpret => self.run(max_steps),
            Backend::Compiled => crate::exec::run_compiled(self, max_steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn run(src: &str) -> (Machine, RunResult) {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let r = m.run(1_000_000).unwrap();
        (m, r)
    }

    #[test]
    fn arithmetic_and_store() {
        let (m, _) = run("li r1, 6\nli r2, 7\nmul r3, r1, r2\nsw r3, 0x100(r0)\nhalt");
        assert_eq!(m.mem().read_u32(0x100), 42);
    }

    #[test]
    fn r0_is_immutable() {
        let (m, _) = run("addi r0, r0, 99\nsw r0, 0x100(r0)\nhalt");
        assert_eq!(m.mem().read_u32(0x100), 0);
    }

    #[test]
    fn loop_counts_down() {
        let (m, r) = run(r#"
                li r1, 10
                li r2, 0
            loop:
                add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                sw   r2, 0x200(r0)
                halt
            "#);
        assert_eq!(m.mem().read_u32(0x200), 55);
        // 2 li + 10 iterations * 3 + sw + halt = 2 + 30 + 2.
        assert_eq!(r.steps, 34);
    }

    #[test]
    fn trace_contains_fetches_and_data() {
        let (_, r) = run("li r1, 1\nsw r1, 0x80(r0)\nlw r2, 0x80(r0)\nhalt");
        let (f, rd, wr) = r.trace.kind_counts();
        assert_eq!(f, 4);
        assert_eq!(rd, 1);
        assert_eq!(wr, 1);
        // The data events carry the effective address.
        let data: Vec<_> = r.trace.data_only().into_iter().collect();
        assert_eq!(data[0].addr, 0x80);
        assert_eq!(data[1].addr, 0x80);
    }

    #[test]
    fn signed_loads_sign_extend() {
        let (m, _) = run(r#"
            .data 0x400
            v: .word 0xffffff80
            .text
                la  r1, v
                lb  r2, (r1)
                sw  r2, 0x500(r0)
                lbu r3, (r1)
                sw  r3, 0x504(r0)
                lh  r4, (r1)
                sw  r4, 0x508(r0)
                halt
            "#);
        assert_eq!(m.mem().read_u32(0x500), 0xFFFF_FF80); // lb sign-extends 0x80
        assert_eq!(m.mem().read_u32(0x504), 0x0000_0080); // lbu zero-extends
        assert_eq!(m.mem().read_u32(0x508), 0xFFFF_FF80); // lh sign-extends 0xff80
    }

    #[test]
    fn byte_and_half_stores() {
        let (m, _) = run(r#"
                li r1, 0x12345678
                sw r1, 0x100(r0)
                li r2, 0xAB
                sb r2, 0x100(r0)
                li r3, 0xCDEF
                sh r3, 0x102(r0)
                halt
            "#);
        assert_eq!(m.mem().read_u32(0x100), 0xCDEF_56AB);
    }

    #[test]
    fn jal_and_jalr_link_and_jump() {
        let (m, _) = run(r#"
                jal  r15, func
                sw   r1, 0x100(r0)
                halt
            func:
                li   r1, 123
                jalr r0, r15, 0
            "#);
        assert_eq!(m.mem().read_u32(0x100), 123);
    }

    #[test]
    fn shifts_and_compares() {
        let (m, _) = run(r#"
                li  r1, -8
                sra r2, r1, r0
                li  r3, 2
                sra r2, r1, r3     # -8 >> 2 = -2
                sw  r2, 0x100(r0)
                srl r4, r1, r3     # logical
                sw  r4, 0x104(r0)
                slt r5, r1, r0     # -8 < 0 -> 1
                sw  r5, 0x108(r0)
                sltu r6, r1, r0    # 0xfffffff8 < 0 unsigned -> 0
                sw  r6, 0x10c(r0)
                halt
            "#);
        assert_eq!(m.mem().read_u32(0x100) as i32, -2);
        assert_eq!(m.mem().read_u32(0x104), 0xFFFF_FFF8u32 >> 2);
        assert_eq!(m.mem().read_u32(0x108), 1);
        assert_eq!(m.mem().read_u32(0x10c), 0);
    }

    #[test]
    fn illegal_instruction_reports_pc() {
        let p = assemble(".text\n.word 0x78000000\nhalt").unwrap();
        let mut m = Machine::new(&p);
        let e = m.run(10).unwrap_err();
        assert!(
            matches!(e, IsaError::IllegalInstruction { pc: 0, .. }),
            "{e}"
        );
    }

    #[test]
    fn step_limit_errors() {
        let p = assemble("loop: j loop").unwrap();
        let mut m = Machine::new(&p);
        assert_eq!(m.run(100).unwrap_err(), IsaError::StepLimit { steps: 100 });
    }

    #[test]
    fn halted_machine_stays_halted() {
        let p = assemble("halt").unwrap();
        let mut m = Machine::new(&p);
        m.run(10).unwrap();
        let mut t = Trace::new();
        assert!(m.step(&mut t).unwrap());
        assert!(t.is_empty());
    }
}
