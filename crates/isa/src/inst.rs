//! Instruction set definition: opcodes, registers, and the 32-bit
//! encode/decode pair.
//!
//! Encoding layout (all instructions are one 32-bit word):
//!
//! ```text
//! R-type:  [31:26 op][25:22 rd ][21:18 rs1][17:14 rs2][13:0  zero  ]
//! I-type:  [31:26 op][25:22 rd ][21:18 rs1][17:0  imm18 (signed)   ]
//! B-type:  [31:26 op][25:22 rs1][21:18 rs2][17:0  imm18 (words)    ]
//! J-type:  [31:26 op][25:22 rd ][21:0  imm22 (words, signed)       ]
//! ```

/// A register index `r0..r15`; `r0` always reads zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register; returns `None` for indices above 15.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 16).then_some(Reg(index))
    }

    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Every TinyRISC opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Opcode {
    // R-type ALU.
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    Sll = 5,
    Srl = 6,
    Sra = 7,
    Slt = 8,
    Sltu = 9,
    Mul = 10,
    // I-type ALU.
    Addi = 16,
    Andi = 17,
    Ori = 18,
    Xori = 19,
    Slli = 20,
    Srli = 21,
    Slti = 22,
    Lui = 23,
    // Loads / stores (I-type, offset(rs1)).
    Lw = 32,
    Lh = 33,
    Lb = 34,
    Lbu = 35,
    Lhu = 36,
    Sw = 40,
    Sh = 41,
    Sb = 42,
    // Branches (B-type).
    Beq = 48,
    Bne = 49,
    Blt = 50,
    Bge = 51,
    Bltu = 52,
    Bgeu = 53,
    // Jumps.
    Jal = 56,  // J-type
    Jalr = 57, // I-type
    Halt = 63,
}

impl Opcode {
    /// Decodes the 6-bit opcode field.
    pub fn from_bits(bits: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match bits {
            0 => Add,
            1 => Sub,
            2 => And,
            3 => Or,
            4 => Xor,
            5 => Sll,
            6 => Srl,
            7 => Sra,
            8 => Slt,
            9 => Sltu,
            10 => Mul,
            16 => Addi,
            17 => Andi,
            18 => Ori,
            19 => Xori,
            20 => Slli,
            21 => Srli,
            22 => Slti,
            23 => Lui,
            32 => Lw,
            33 => Lh,
            34 => Lb,
            35 => Lbu,
            36 => Lhu,
            40 => Sw,
            41 => Sh,
            42 => Sb,
            48 => Beq,
            49 => Bne,
            50 => Blt,
            51 => Bge,
            52 => Bltu,
            53 => Bgeu,
            56 => Jal,
            57 => Jalr,
            63 => Halt,
            _ => return None,
        })
    }
}

/// Range of an 18-bit signed immediate.
pub const IMM18_MIN: i32 = -(1 << 17);
/// Maximum value of an 18-bit signed immediate.
pub const IMM18_MAX: i32 = (1 << 17) - 1;
/// Range of a 22-bit signed immediate.
pub const IMM22_MIN: i32 = -(1 << 21);
/// Maximum value of a 22-bit signed immediate.
pub const IMM22_MAX: i32 = (1 << 21) - 1;

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // field meanings are given per variant
pub enum Inst {
    /// R-type: `op rd, rs1, rs2`.
    R {
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// I-type: `op rd, rs1, imm` (ALU), `op rd, imm(rs1)` (memory), or
    /// `jalr rd, rs1, imm`.
    I {
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// B-type: `op rs1, rs2, word_offset` (PC-relative, in words, from the
    /// instruction after the branch).
    B {
        op: Opcode,
        rs1: Reg,
        rs2: Reg,
        imm: i32,
    },
    /// J-type: `jal rd, word_offset`.
    J { op: Opcode, rd: Reg, imm: i32 },
    /// `halt`.
    Halt,
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

impl Inst {
    /// Encodes the instruction into its 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if an immediate is out of range for its field; the assembler
    /// validates ranges before constructing `Inst` values.
    pub fn encode(self) -> u32 {
        match self {
            Inst::R { op, rd, rs1, rs2 } => {
                (op as u32) << 26
                    | (rd.index() as u32) << 22
                    | (rs1.index() as u32) << 18
                    | (rs2.index() as u32) << 14
            }
            Inst::I { op, rd, rs1, imm } => {
                assert!(
                    (IMM18_MIN..=IMM18_MAX).contains(&imm),
                    "imm18 out of range: {imm}"
                );
                (op as u32) << 26
                    | (rd.index() as u32) << 22
                    | (rs1.index() as u32) << 18
                    | (imm as u32 & 0x3_FFFF)
            }
            Inst::B { op, rs1, rs2, imm } => {
                assert!(
                    (IMM18_MIN..=IMM18_MAX).contains(&imm),
                    "imm18 out of range: {imm}"
                );
                (op as u32) << 26
                    | (rs1.index() as u32) << 22
                    | (rs2.index() as u32) << 18
                    | (imm as u32 & 0x3_FFFF)
            }
            Inst::J { op, rd, imm } => {
                assert!(
                    (IMM22_MIN..=IMM22_MAX).contains(&imm),
                    "imm22 out of range: {imm}"
                );
                (op as u32) << 26 | (rd.index() as u32) << 22 | (imm as u32 & 0x3F_FFFF)
            }
            Inst::Halt => (Opcode::Halt as u32) << 26,
        }
    }

    /// Decodes a 32-bit word; returns `None` for an unknown opcode.
    pub fn decode(word: u32) -> Option<Inst> {
        let op = Opcode::from_bits((word >> 26) as u8)?;
        let rd = Reg(((word >> 22) & 0xF) as u8);
        let rs1 = Reg(((word >> 18) & 0xF) as u8);
        let rs2 = Reg(((word >> 14) & 0xF) as u8);
        use Opcode::*;
        Some(match op {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul => {
                Inst::R { op, rd, rs1, rs2 }
            }
            // `lui` does not read rs1; normalize the don't-care field so
            // decode yields the canonical encoding.
            Lui => Inst::I {
                op,
                rd,
                rs1: Reg(0),
                imm: sext(word & 0x3_FFFF, 18),
            },
            Addi | Andi | Ori | Xori | Slli | Srli | Slti | Lw | Lh | Lb | Lbu | Lhu | Sw | Sh
            | Sb | Jalr => Inst::I {
                op,
                rd,
                rs1,
                imm: sext(word & 0x3_FFFF, 18),
            },
            Beq | Bne | Blt | Bge | Bltu | Bgeu => Inst::B {
                op,
                rs1: rd,
                rs2: rs1,
                imm: sext(word & 0x3_FFFF, 18),
            },
            Jal => Inst::J {
                op,
                rd,
                imm: sext(word & 0x3F_FFFF, 22),
            },
            Halt => Inst::Halt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn reg_bounds() {
        assert!(Reg::new(15).is_some());
        assert!(Reg::new(16).is_none());
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(r(7).to_string(), "r7");
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sext(0x3_FFFF, 18), -1);
        assert_eq!(sext(0x2_0000, 18), IMM18_MIN);
        assert_eq!(sext(0x1_FFFF, 18), IMM18_MAX);
        assert_eq!(sext(5, 18), 5);
    }

    #[test]
    fn encode_decode_roundtrip_r() {
        let i = Inst::R {
            op: Opcode::Mul,
            rd: r(3),
            rs1: r(4),
            rs2: r(5),
        };
        assert_eq!(Inst::decode(i.encode()), Some(i));
    }

    #[test]
    fn encode_decode_roundtrip_i_negative_imm() {
        let i = Inst::I {
            op: Opcode::Addi,
            rd: r(1),
            rs1: r(2),
            imm: -42,
        };
        assert_eq!(Inst::decode(i.encode()), Some(i));
    }

    #[test]
    fn encode_decode_roundtrip_branch() {
        let i = Inst::B {
            op: Opcode::Bne,
            rs1: r(9),
            rs2: r(10),
            imm: -100,
        };
        assert_eq!(Inst::decode(i.encode()), Some(i));
    }

    #[test]
    fn encode_decode_roundtrip_jal() {
        let i = Inst::J {
            op: Opcode::Jal,
            rd: r(15),
            imm: IMM22_MIN,
        };
        assert_eq!(Inst::decode(i.encode()), Some(i));
    }

    #[test]
    fn halt_roundtrip() {
        assert_eq!(Inst::decode(Inst::Halt.encode()), Some(Inst::Halt));
    }

    #[test]
    fn unknown_opcode_decodes_to_none() {
        assert_eq!(Inst::decode(30 << 26), None);
    }

    #[test]
    #[should_panic(expected = "imm18 out of range")]
    fn oversized_imm_panics() {
        let _ = Inst::I {
            op: Opcode::Addi,
            rd: r(1),
            rs1: r(1),
            imm: IMM18_MAX + 1,
        }
        .encode();
    }

    #[test]
    fn every_opcode_roundtrips_through_bits() {
        use Opcode::*;
        for op in [
            Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul, Addi, Andi, Ori, Xori, Slli,
            Srli, Slti, Lui, Lw, Lh, Lb, Lbu, Lhu, Sw, Sh, Sb, Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal,
            Jalr, Halt,
        ] {
            assert_eq!(Opcode::from_bits(op as u8), Some(op));
        }
    }
}
