//! Basic-block translation and the translation cache.
//!
//! [`translate`] decodes a straight-line region starting at an entry PC
//! into a [`UopBlock`]: it reads words from memory, decodes each one once,
//! and keeps going past *conditional* branches (their fall-through path
//! stays in the block) until it hits an unconditional control transfer
//! (`jal`, `jalr`, `halt`), an undecodable word, or the block-size cap.
//! A second pass resolves every branch/`jal` target that lands inside the
//! decoded range to a stream index, turning loops into intra-block jumps
//! the dispatcher never leaves.
//!
//! [`BlockCache`] keys translated blocks by entry PC in a `BTreeMap`
//! (deterministic iteration; lint rule D01) behind `Rc` so a block can be
//! executed while the cache is mutated. Stores are checked against a
//! conservative `[lo, hi)` summary of all translated text; a store that
//! intersects it evicts every overlapping block, which is what keeps
//! self-modifying code correct: the dispatcher re-translates from current
//! memory on the next block entry.

use std::collections::BTreeMap;
use std::rc::Rc;

use lpmem_mem::FlatMemory;
use lpmem_trace::MemEvent;

use crate::inst::{Inst, Opcode};
use crate::uop::{AluOp, Cond, LoadKind, StoreKind, UopBlock, UopKind};

/// Translation stops after this many instructions even without a
/// terminator; the dispatcher chains into a follow-on block.
const MAX_BLOCK: usize = 256;

/// Upper bound on a block's byte footprint, used to bound the eviction
/// range scan.
const MAX_BLOCK_BYTES: u64 = 4 * MAX_BLOCK as u64;

fn alu_r(op: Opcode) -> AluOp {
    match op {
        Opcode::Add => AluOp::Add,
        Opcode::Sub => AluOp::Sub,
        Opcode::And => AluOp::And,
        Opcode::Or => AluOp::Or,
        Opcode::Xor => AluOp::Xor,
        Opcode::Sll => AluOp::Sll,
        Opcode::Srl => AluOp::Srl,
        Opcode::Sra => AluOp::Sra,
        Opcode::Slt => AluOp::Slt,
        Opcode::Sltu => AluOp::Sltu,
        Opcode::Mul => AluOp::Mul,
        _ => unreachable!("decoder only produces ALU ops in R-form"),
    }
}

fn cond_of(op: Opcode) -> Cond {
    match op {
        Opcode::Beq => Cond::Eq,
        Opcode::Bne => Cond::Ne,
        Opcode::Blt => Cond::Lt,
        Opcode::Bge => Cond::Ge,
        Opcode::Bltu => Cond::Ltu,
        Opcode::Bgeu => Cond::Geu,
        _ => unreachable!("decoder only produces branches in B-form"),
    }
}

/// `true` when decoding cannot continue past this instruction.
fn is_terminator(inst: &Option<Inst>) -> bool {
    match inst {
        None | Some(Inst::Halt) | Some(Inst::J { .. }) => true,
        Some(Inst::I { op, .. }) => *op == Opcode::Jalr,
        _ => false,
    }
}

/// The PC-relative target of a branch/`jal` at `pc`, the interpreter's
/// exact formula.
fn rel_target(pc: u32, imm: i32) -> u32 {
    pc.wrapping_add(4).wrapping_add((imm as u32) << 2)
}

/// Decodes and translates the basic block entered at `entry`.
pub(crate) fn translate(entry: u32, mem: &FlatMemory) -> UopBlock {
    // Pass 1: linear decode until a terminator or the cap. Stop early if
    // the PC would wrap past the top of the address space so stream
    // indices stay monotonic.
    let mut decoded: Vec<(u32, Option<Inst>)> = Vec::new();
    let mut pc = entry;
    loop {
        let word = mem.read_u32(pc as u64);
        let inst = Inst::decode(word);
        let stop = is_terminator(&inst);
        decoded.push((word, inst));
        match pc.checked_add(4) {
            Some(next) if !stop && decoded.len() < MAX_BLOCK => pc = next,
            _ => break,
        }
    }
    let len = decoded.len() as u32;

    // Pass 2: lower to micro-ops, resolving in-range control-flow targets
    // to stream indices. `wrapping_sub` keeps the containment test exact
    // even for entries near the top of the address space.
    let in_block = |target: u32| -> Option<u32> {
        let rel = target.wrapping_sub(entry);
        (rel.is_multiple_of(4) && rel / 4 < len).then_some(rel / 4)
    };
    let mut kinds = Vec::with_capacity(decoded.len());
    let mut fetches = Vec::with_capacity(decoded.len());
    for (i, &(word, inst)) in decoded.iter().enumerate() {
        let pc = entry.wrapping_add(4 * i as u32);
        let kind = match inst {
            None => UopKind::Illegal,
            Some(Inst::Halt) => UopKind::Halt,
            Some(Inst::R { op, rd, rs1, rs2 }) => {
                let (rd, rs1, rs2) = (rd.index() as u8, rs1.index() as u8, rs2.index() as u8);
                if rd == 0 {
                    UopKind::Nop
                } else if op == Opcode::Add {
                    UopKind::Add { rd, rs1, rs2 }
                } else {
                    UopKind::Alu {
                        op: alu_r(op),
                        rd,
                        rs1,
                        rs2,
                    }
                }
            }
            Some(Inst::I { op, rd, rs1, imm }) => {
                lower_i(op, rd.index() as u8, rs1.index() as u8, imm, pc)
            }
            Some(Inst::B { op, rs1, rs2, imm }) => {
                let target = rel_target(pc, imm);
                let (cond, rs1, rs2) = (cond_of(op), rs1.index() as u8, rs2.index() as u8);
                match in_block(target) {
                    Some(idx) => UopKind::Branch {
                        cond,
                        rs1,
                        rs2,
                        idx,
                    },
                    None => UopKind::BranchExit {
                        cond,
                        rs1,
                        rs2,
                        target,
                    },
                }
            }
            Some(Inst::J { rd, imm, .. }) => {
                let target = rel_target(pc, imm);
                let (rd, link) = (rd.index() as u8, pc.wrapping_add(4));
                match in_block(target) {
                    Some(idx) => UopKind::JumpIdx { rd, link, idx },
                    None => UopKind::JumpOut { rd, link, target },
                }
            }
        };
        kinds.push(kind);
        fetches.push(MemEvent::fetch(pc as u64).with_value(word));
    }

    // Pass 3: mark plain spans. Computed right-to-left so each index sees
    // the end of the maximal straight-line ALU run starting there; a
    // non-plain uop is its own (empty) run.
    let mut run_end = vec![0u32; kinds.len()];
    for i in (0..kinds.len()).rev() {
        // A non-plain successor is its own run head (`run_end[i+1] ==
        // i+1`), so chaining through it still yields this run's end.
        run_end[i] = if !kinds[i].is_plain() {
            i as u32
        } else if i + 1 == kinds.len() {
            kinds.len() as u32
        } else {
            run_end[i + 1]
        };
    }

    UopBlock {
        entry,
        kinds,
        fetches,
        run_end,
    }
}

/// Lowers an I-format instruction (ALU-immediate, load, store, `jalr`).
fn lower_i(op: Opcode, rd: u8, rs1: u8, imm: i32, pc: u32) -> UopKind {
    let simm = imm as u32;
    let alu = |aop: AluOp, imm: u32| {
        if rd == 0 {
            UopKind::Nop
        } else if aop == AluOp::Add && rs1 == 0 {
            // `addi rd, r0, imm` is a constant materialization.
            UopKind::LoadImm { rd, value: imm }
        } else if aop == AluOp::Add {
            UopKind::AddImm { rd, rs1, imm }
        } else if aop == AluOp::Sll {
            UopKind::ShlImm { rd, rs1, sh: imm }
        } else {
            UopKind::AluImm {
                op: aop,
                rd,
                rs1,
                imm,
            }
        }
    };
    match op {
        Opcode::Addi => alu(AluOp::Add, simm),
        Opcode::Andi => alu(AluOp::And, simm),
        Opcode::Ori => alu(AluOp::Or, simm),
        Opcode::Xori => alu(AluOp::Xor, simm),
        // The interpreter masks shift amounts to 5 bits; pre-mask here.
        Opcode::Slli => alu(AluOp::Sll, simm & 31),
        Opcode::Srli => alu(AluOp::Srl, simm & 31),
        Opcode::Slti => alu(AluOp::Slt, simm),
        Opcode::Lui => {
            if rd == 0 {
                UopKind::Nop
            } else {
                UopKind::LoadImm {
                    rd,
                    value: simm << 14,
                }
            }
        }
        Opcode::Lw => load(LoadKind::W, rd, rs1, simm),
        Opcode::Lh => load(LoadKind::H, rd, rs1, simm),
        Opcode::Lhu => load(LoadKind::Hu, rd, rs1, simm),
        Opcode::Lb => load(LoadKind::B, rd, rs1, simm),
        Opcode::Lbu => load(LoadKind::Bu, rd, rs1, simm),
        Opcode::Sw => store(StoreKind::W, rd, rs1, simm),
        Opcode::Sh => store(StoreKind::H, rd, rs1, simm),
        Opcode::Sb => store(StoreKind::B, rd, rs1, simm),
        Opcode::Jalr => UopKind::Jalr { rd, rs1, imm: simm },
        _ => unreachable!("decoder only produces I-form ops here: {op:?} at {pc:#x}"),
    }
}

fn load(kind: LoadKind, rd: u8, rs1: u8, off: u32) -> UopKind {
    // Loads to r0 keep the load path: the data read event must still be
    // emitted even though the register write is dead.
    UopKind::Load { kind, rd, rs1, off }
}

fn store(kind: StoreKind, rs: u8, rs1: u8, off: u32) -> UopKind {
    UopKind::Store { kind, rs, rs1, off }
}

/// Slots in the direct-mapped front cache: large enough that a kernel's
/// working set of block entries rarely collides, small enough to clear
/// cheaply on eviction.
const FRONT_SLOTS: usize = 64;

/// The per-run translation cache, keyed by block entry PC.
#[derive(Debug, Default)]
pub(crate) struct BlockCache {
    blocks: BTreeMap<u32, Rc<UopBlock>>,
    /// Direct-mapped front line over `blocks`, indexed by
    /// `(pc >> 2) % FRONT_SLOTS`. Block transitions happen every handful
    /// of instructions in loop-heavy code, so the common repeat lookup
    /// must be an array probe, not a tree walk. Cleared wholesale on any
    /// eviction (rare: only self-modifying code pays).
    front: Vec<Option<Rc<UopBlock>>>,
    /// Conservative summary of all translated text: no cached block's
    /// bytes lie outside `[lo, hi)`. Grows monotonically (eviction keeps
    /// it conservative), so the common store-misses-text case is one
    /// range test.
    lo: u64,
    hi: u64,
}

impl BlockCache {
    pub(crate) fn new() -> Self {
        BlockCache {
            blocks: BTreeMap::new(),
            front: vec![None; FRONT_SLOTS],
            lo: u64::MAX,
            hi: 0,
        }
    }

    #[inline(always)]
    fn slot(pc: u32) -> usize {
        (pc >> 2) as usize % FRONT_SLOTS
    }

    /// Returns the cached block entered at `pc`, if any. Separate from
    /// [`get_or_translate`](Self::get_or_translate) so the dispatcher can
    /// sync lazily-mirrored memory back into the [`FlatMemory`] before a
    /// translation reads it — but only on a miss.
    #[inline]
    pub(crate) fn lookup(&mut self, pc: u32) -> Option<Rc<UopBlock>> {
        if let Some(block) = &self.front[Self::slot(pc)] {
            if block.entry == pc {
                return Some(Rc::clone(block));
            }
        }
        let block = self.blocks.get(&pc).map(Rc::clone)?;
        self.front[Self::slot(pc)] = Some(Rc::clone(&block));
        Some(block)
    }

    /// Returns the block entered at `pc`, translating it on first use.
    pub(crate) fn get_or_translate(&mut self, pc: u32, mem: &FlatMemory) -> Rc<UopBlock> {
        if let Some(block) = self.lookup(pc) {
            return block;
        }
        let block = Rc::new(translate(pc, mem));
        self.lo = self.lo.min(block.entry as u64);
        self.hi = self.hi.max(block.end());
        self.blocks.insert(pc, Rc::clone(&block));
        self.front[Self::slot(pc)] = Some(Rc::clone(&block));
        block
    }

    /// Handles a store of `size` bytes at `addr`: evicts every cached
    /// block whose text overlaps the written bytes. Returns `true` when
    /// the store touched the translated-text summary range, in which case
    /// the dispatcher must leave its current block (it may be stale).
    pub(crate) fn invalidate(&mut self, addr: u64, size: u64) -> bool {
        let (w_lo, w_hi) = (addr, addr + size);
        if w_hi <= self.lo || w_lo >= self.hi {
            return false;
        }
        // Only blocks whose entry lies in (w_lo - MAX_BLOCK_BYTES, w_hi)
        // can reach the written range.
        let scan_from = w_lo.saturating_sub(MAX_BLOCK_BYTES) as u32;
        let scan_to = w_hi.min(u32::MAX as u64 + 1);
        let stale: Vec<u32> = self
            .blocks
            .range(scan_from..)
            .take_while(|(&entry, _)| (entry as u64) < scan_to)
            .filter(|(&entry, block)| (entry as u64) < w_hi && block.end() > w_lo)
            .map(|(&entry, _)| entry)
            .collect();
        if !stale.is_empty() {
            // The front line may alias evicted blocks; drop it wholesale
            // rather than tracking which slots are affected.
            self.front.iter_mut().for_each(|s| *s = None);
        }
        for entry in stale {
            self.blocks.remove(&entry);
        }
        true
    }

    /// Number of cached blocks (test hook).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn mem_of(src: &str) -> FlatMemory {
        let p = assemble(src).expect("test program assembles");
        let mut mem = FlatMemory::new();
        for (base, bytes) in p.segments() {
            mem.load(*base as u64, bytes);
        }
        mem
    }

    #[test]
    fn straight_line_block_ends_at_halt() {
        let mem = mem_of("addi r1, r0, 5\nadd r2, r1, r1\nhalt");
        let b = translate(0, &mem);
        assert_eq!(b.kinds.len(), 3);
        assert!(matches!(b.kinds[0], UopKind::LoadImm { rd: 1, value: 5 }));
        assert!(matches!(b.kinds[2], UopKind::Halt));
    }

    #[test]
    fn backward_branch_resolves_to_stream_index() {
        let mem = mem_of("addi r1, r0, 3\nloop: addi r1, r1, -1\nbne r1, r0, loop\nhalt");
        let b = translate(0, &mem);
        assert!(
            matches!(b.kinds[2], UopKind::Branch { idx: 1, .. }),
            "{:?}",
            b.kinds[2]
        );
    }

    #[test]
    fn backward_jal_resolves_to_stream_index_and_terminates_block() {
        let mem = mem_of("add r1, r1, r2\njal r15, 0\nhalt");
        let b = translate(0, &mem);
        // jal is an unconditional transfer: decoding stops after it.
        assert_eq!(b.kinds.len(), 2);
        assert!(matches!(
            b.kinds[1],
            UopKind::JumpIdx {
                rd: 15,
                link: 8,
                idx: 0
            }
        ));
    }

    #[test]
    fn forward_branch_out_of_block_exits() {
        // jal terminates the block at index 1, so the branch target (the
        // halt at 0xc) is outside the decoded range.
        let mem = mem_of("beq r0, r0, 0xc\njal r0, 0x8\nhalt");
        let b = translate(0, &mem);
        assert_eq!(b.kinds.len(), 2);
        assert!(matches!(
            b.kinds[0],
            UopKind::BranchExit { target: 0xc, .. }
        ));
    }

    #[test]
    fn illegal_word_terminates_block() {
        let mem = mem_of(".text\nadd r1, r1, r1\n.word 0x78000000\nhalt");
        let b = translate(0, &mem);
        assert_eq!(b.kinds.len(), 2);
        assert!(matches!(b.kinds[1], UopKind::Illegal));
    }

    #[test]
    fn unmapped_memory_translates_as_nops_up_to_the_cap() {
        // Word 0 decodes as `add r0, r0, r0`; an untouched region is an
        // endless run of them, cut off by the block cap.
        let mem = FlatMemory::new();
        let b = translate(0x1000, &mem);
        assert_eq!(b.kinds.len(), MAX_BLOCK);
        assert!(b.kinds.iter().all(|&k| k == UopKind::Nop));
    }

    #[test]
    fn cache_hits_reuse_and_invalidation_evicts() {
        let mem = mem_of("addi r1, r0, 5\nhalt");
        let mut cache = BlockCache::new();
        let a = cache.get_or_translate(0, &mem);
        let b = cache.get_or_translate(0, &mem);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // A store far from text is a cheap miss.
        assert!(!cache.invalidate(0x8000, 4));
        assert_eq!(cache.len(), 1);
        // A store into the block's text evicts it.
        assert!(cache.invalidate(4, 4));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn invalidation_only_evicts_overlapping_blocks() {
        let mem = mem_of("addi r1, r0, 5\nhalt");
        let mut cache = BlockCache::new();
        cache.get_or_translate(0, &mem); // words [0x0, 0x8)
        cache.get_or_translate(0x100, &mem); // unrelated region
        assert_eq!(cache.len(), 2);
        // Hits the summary range but only overlaps the block at 0.
        assert!(cache.invalidate(0, 1));
        assert_eq!(cache.len(), 1);
    }
}
