//! T01 fixture: hash-iteration order flows into a JSONL emission path.
//! The taint pass proves the flow and the heuristic D01 is subsumed.

use std::collections::HashMap;

pub fn jsonl_body(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, hits) in counts.iter() {
        out.push_str(&format!("\"{name}\":{hits},"));
    }
    out
}
