//! D03 fixture: ad-hoc arithmetic on raw seeds instead of
//! `SplitMix64::derive`.

pub fn child_seed(seed: u64, index: u64) -> u64 {
    seed ^ (index << 32)
}

pub fn stream_seed(base_seed: u64) -> u64 {
    base_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
