//! A01 fixture: raw narrowing casts in energy accounting (the file name
//! places it inside the energy crate for the path classifier).

pub fn picojoules(total: f64) -> u32 {
    total as u32
}

pub fn bank_index(raw: u64) -> u16 {
    raw as u16
}

// Negative case: widening casts carry no precision risk.
pub fn widen(raw: u32) -> u64 {
    u64::from(raw)
}
