//! D05 fixture: float accumulation over unordered iteration.

use std::collections::HashMap;

pub fn total_energy(pj: &HashMap<String, f64>) -> f64 {
    pj.values().sum::<f64>()
}
