//! A01 fixture: narrowing casts over fault-campaign counters (the file
//! name places it inside the fault crate for the path classifier).

pub fn truncate_counter(injected: u64) -> u32 {
    injected as u32
}

// Negative case: masked checked conversion states the invariant.
pub fn checked(word: u64) -> u32 {
    u32::try_from(word & 0xFFFF_FFFF).expect("masked to 32 bits")
}
