//! T02 fixture (caller half): imports the hash-tainted API across the
//! unit boundary, which is what arms the cross-unit finding.

use t02_api::order_hint;

pub fn first(set: &std::collections::HashSet<u64>) -> Option<u64> {
    order_hint(set).into_iter().next()
}
