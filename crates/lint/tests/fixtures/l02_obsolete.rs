//! L02 fixture: a suppression whose underlying site the semantic pass
//! proves safe — the clock reading dies locally, so the D02 it silenced
//! is retracted and the allow itself becomes the finding.

pub fn tick() -> u64 {
    // lpmem-lint: allow(D02, reason = "fixture: the reading never escapes")
    let _probe = std::time::Instant::now();
    7
}
