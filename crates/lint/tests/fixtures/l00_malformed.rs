//! L00 fixture: suppressions that don't parse or lack a reason.

// lpmem-lint: allow(D01)
pub fn missing_reason() {}

// lpmem-lint: allow(D02, reason = "")
pub fn empty_reason() {}

// lpmem-lint: allow(D9X, reason = "unknown rule id")
pub fn unknown_rule() {}
