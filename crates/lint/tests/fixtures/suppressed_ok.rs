//! Suppression fixture: a reasoned allow silences its diagnostic (and is
//! counted as used, so no L01 either).

pub fn child_seed(seed: u64) -> u64 {
    // lpmem-lint: allow(D03, reason = "fixture: demonstrates a valid suppression")
    seed ^ 0x9e37_79b9
}
