//! L01 fixture: a well-formed suppression with nothing to suppress.

// lpmem-lint: allow(D04, reason = "defensive: nothing here can panic")
pub fn tidy() -> u64 {
    42
}
