//! D02 fixture: wall-clock reads outside the sanctioned bench timer.
//! Both readings escape through the public return value, so the
//! semantic pass keeps the heuristic findings alive.

pub fn stamp() -> (u128, u64) {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    let since_epoch = wall
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    (t0.elapsed().as_nanos(), since_epoch)
}
