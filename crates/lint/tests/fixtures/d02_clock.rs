//! D02 fixture: wall-clock reads outside the sanctioned bench timer.

pub fn stamp() -> u128 {
    let t0 = std::time::Instant::now();
    let _wall = std::time::SystemTime::now();
    t0.elapsed().as_nanos()
}
