// Parser crash regression: a file truncated mid-expression inside
// parentheses. The transparent-paren rewrite used to re-span the inner
// path to include the `(`, so the span no longer round-tripped to the
// identifier text. Found by the seeded truncation fuzz
// (LPMEM_PROP_SEED=0xdc2530e05a30abb1) on crates/compress/src/model.rs.
pub fn truncated(line: u32) -> u32 {
    let x = (line.
