// Parser regression: struct *patterns* reaching the expression parser
// through `matches!` arguments. A bare `..` inside the braces used to be
// parsed as a struct-update base, consuming the closing `}` and cascading
// into recovery; item-position macro invocations (`impl_x!(…);`,
// `std::thread_local! { … }`) used to be unmodeled entirely.
pub enum Kind {
    Nop,
    Add { lhs: u32, rhs: u32 },
}

pub fn is_alu(k: &Kind) -> bool {
    matches!(k, Kind::Nop | Kind::Add { .. })
}

pub fn has_big_lhs(k: &Kind) -> bool {
    matches!(k, Kind::Add { lhs: 7, .. })
}

macro_rules! mark {
    ($t:ty) => {
        impl Marked for $t {}
    };
}

pub trait Marked {}
mark!(u32);

std::thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<u8>> = std::cell::RefCell::new(Vec::new());
}
