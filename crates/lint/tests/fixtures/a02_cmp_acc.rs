//! A02 fixture: an unchecked integer product absorbed by an accounting
//! accumulator, next to the checked form the rule asks for.

pub struct EnergyAcc {
    pub total_pj_q: u64,
}

impl EnergyAcc {
    pub fn absorb(&mut self, events: u64, pj_per_event_q: u64) {
        self.total_pj_q += events * pj_per_event_q;
    }

    // Negative case: the checked product names its bound, so no A02.
    pub fn absorb_checked(&mut self, events: u64, pj_per_event_q: u64) {
        self.total_pj_q += events
            .checked_mul(pj_per_event_q)
            .expect("fixture invariant: event count is bounded by the trace length");
    }
}
