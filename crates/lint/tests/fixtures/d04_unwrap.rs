//! D04 fixture: panicking escape hatches in library code.

pub fn first_line(text: &str) -> &str {
    text.lines().next().unwrap()
}

pub fn parse(text: &str) -> u64 {
    text.parse().expect("")
}

// Negative case: a documented invariant message is allowed.
pub fn head(items: &[u64]) -> u64 {
    *items.first().expect("caller guarantees a non-empty slice")
}

// Negative case: test code may unwrap freely.
#[cfg(test)]
mod tests {
    #[test]
    fn inside_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
