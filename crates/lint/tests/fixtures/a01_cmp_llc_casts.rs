//! A01 fixture: narrowing casts over shared-LLC outcome counters (the
//! file name places it inside the cmp crate for the path classifier).

pub fn truncate_lookups(lookups: u64) -> u32 {
    lookups as u32
}

// Negative case: a checked conversion states the invariant instead.
pub fn checked_banks(banks: u64) -> u32 {
    u32::try_from(banks).expect("bank counts fit in 32 bits")
}
