//! D01 fixture: unordered hash iteration leaking into emission.

use std::collections::{HashMap, HashSet};

pub fn dump(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (name, hits) in counts.iter() {
        out.push_str(&format!("{name}={hits}\n"));
    }
    out
}

pub fn scaled(weights: &HashMap<u64, f64>) -> Vec<f64> {
    let mut out = Vec::new();
    for w in weights {
        out.push(w.1 * 2.0);
    }
    out
}

// Negative case: collect-then-sort re-establishes order, so no diagnostic.
pub fn sorted_names(set: &HashSet<String>) -> Vec<String> {
    let mut names: Vec<String> = set.iter().cloned().collect();
    names.sort();
    names
}

// Negative case: an order-free integer fold is fine.
pub fn total(counts: &HashMap<String, u64>) -> u64 {
    counts.values().sum()
}
