//! T02 fixture (API half): a public function returns a value whose
//! order depends on hash iteration, and another unit consumes it.

use std::collections::HashSet;

pub fn order_hint(set: &HashSet<u64>) -> Vec<u64> {
    set.iter().copied().collect()
}

// Negative case: a BTree collect re-establishes order before the value
// crosses the API, so no T02 fires here.
pub fn sorted_hint(set: &HashSet<u64>) -> Vec<u64> {
    let ordered: std::collections::BTreeSet<u64> = set.iter().copied().collect();
    ordered.into_iter().collect()
}
