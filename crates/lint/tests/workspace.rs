//! Live-workspace self-test: the repo this linter ships in must itself be
//! lint-clean — zero unsuppressed diagnostics, with every suppression
//! carrying a reason and matching a real finding (no L00/L01 either, since
//! those *are* diagnostics when they fire).

use std::path::Path;

use lpmem_lint::{lint_root, render_text, Options};

#[test]
fn live_workspace_has_zero_unsuppressed_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_root(&root, &Options::default()).expect("workspace lint");
    assert!(
        report.files > 50,
        "workspace walk looks wrong: only {} files",
        report.files
    );
    assert!(
        report.diags.is_empty(),
        "the workspace must stay lint-clean; unsuppressed diagnostics:\n{}",
        render_text(&report.diags)
    );
    // Suppressions exist (the triaged seed-tree findings) and every one of
    // them is used — an unused suppression would have produced an L01
    // diagnostic above.
    assert!(
        !report.suppressed.is_empty(),
        "the seed-tree triage left reasoned suppressions; finding none \
         suggests the walk missed the crates"
    );
}
