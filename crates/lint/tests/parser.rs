//! Parser coverage gates (DESIGN.md §14).
//!
//! Three properties, in escalating order of hostility:
//!
//! 1. **Total workspace coverage.** The parser consumes every `.rs` file
//!    in the live workspace with *zero* recovery — the grammar models the
//!    whole Rust subset this repo writes. A new language construct that
//!    the parser can't model fails here first, loudly, instead of silently
//!    degrading the taint analysis that sits on top of the AST.
//! 2. **Span round-trip.** Every AST span is a valid, char-boundary byte
//!    range of the original source, items and statements nest, and
//!    leaf-token spans reproduce their exact source text.
//! 3. **Seeded truncation fuzz.** Random byte-prefixes of real workspace
//!    files (the nastiest malformed input: always almost-valid) must parse
//!    without panicking. Counterexamples get pinned as regression
//!    fixtures in `tests/fixtures/parser_crash_*.rs`.

use std::fs;
use std::path::Path;

use lpmem_lint::ast::{
    walk_block, walk_item_exprs, Expr, ExprKind, Item, ItemKind, SourceFile, Span,
};
use lpmem_lint::engine::workspace_files;
use lpmem_lint::parse::parse_file;
use lpmem_util::Props;

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn check_span(span: Span, src: &str, what: &str, rel: &str) {
    let (lo, hi) = (span.lo as usize, span.hi as usize);
    assert!(
        lo <= hi && hi <= src.len(),
        "{rel}: {what} span {lo}..{hi} out of bounds (len {})",
        src.len()
    );
    assert!(
        src.is_char_boundary(lo) && src.is_char_boundary(hi),
        "{rel}: {what} span {lo}..{hi} splits a char"
    );
    if lo < hi {
        let line = src[..lo].bytes().filter(|b| *b == b'\n').count() as u32 + 1;
        assert_eq!(
            span.line, line,
            "{rel}: {what} span {lo}..{hi} claims line {} but starts on line {line}",
            span.line
        );
    }
}

fn check_item_spans(item: &Item, src: &str, rel: &str) {
    check_span(item.span, src, "item", rel);
    match &item.kind {
        ItemKind::Impl(imp) => {
            for it in &imp.items {
                check_item_spans(it, src, rel);
            }
        }
        ItemKind::Trait(tr) => {
            for it in &tr.items {
                check_item_spans(it, src, rel);
            }
        }
        ItemKind::Mod(m) => {
            if let Some(items) = &m.items {
                for it in items {
                    check_item_spans(it, src, rel);
                }
            }
        }
        ItemKind::Fn(func) => {
            check_span(func.name_span, src, "fn name", rel);
            if !func.name.is_empty() {
                let (lo, hi) = (func.name_span.lo as usize, func.name_span.hi as usize);
                assert_eq!(
                    &src[lo..hi],
                    func.name,
                    "{rel}: fn name span does not round-trip"
                );
            }
        }
        _ => {}
    }
    walk_item_exprs(item, &mut |e: &Expr| {
        check_span(e.span, src, "expr", rel);
        // Leaf spans reproduce their exact source text.
        match &e.kind {
            ExprKind::Lit(text) => {
                let (lo, hi) = (e.span.lo as usize, e.span.hi as usize);
                assert_eq!(
                    &src[lo..hi],
                    text,
                    "{rel}: literal span does not round-trip"
                );
            }
            ExprKind::Path(segs) if segs.len() == 1 && !segs[0].is_empty() => {
                let (lo, hi) = (e.span.lo as usize, e.span.hi as usize);
                // Synthesized format-capture paths point at the whole
                // string literal; a turbofish (`f::<T>`) is stripped from
                // the segments but kept in the span; plain paths
                // reproduce the identifier exactly.
                let text = &src[lo..hi];
                assert!(
                    text == segs[0]
                        || text.starts_with(&format!("{}::", segs[0]))
                        || text.starts_with('"')
                        || text.starts_with('r'),
                    "{rel}: path span `{text}` != segment `{}`",
                    segs[0]
                );
            }
            _ => {}
        }
    });
}

fn parse_and_check(rel: &str, src: &str) -> SourceFile {
    let file = parse_file(src);
    for item in &file.items {
        check_item_spans(item, src, rel);
    }
    file
}

#[test]
fn parser_consumes_every_workspace_file_without_recovery() {
    let root = repo_root();
    let files = workspace_files(&root).expect("workspace walk");
    assert!(files.len() > 50, "walk looks wrong: {} files", files.len());
    let mut failures = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel)).expect("read source");
        let file = parse_and_check(rel, &src);
        if file.recovered > 0 {
            failures.push(format!(
                "{rel}: {} recoveries at lines {:?}",
                file.recovered, file.recovered_lines
            ));
        }
        assert!(
            !file.items.is_empty() || src.trim().is_empty(),
            "{rel}: parsed to zero items"
        );
    }
    assert!(
        failures.is_empty(),
        "the parser must model the whole workspace; files needing recovery:\n{}",
        failures.join("\n")
    );
}

#[test]
fn parser_survives_seeded_truncations_of_real_files() {
    let root = repo_root();
    let files = workspace_files(&root).expect("workspace walk");
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|rel| {
            let src = fs::read_to_string(root.join(rel)).expect("read source");
            (rel.clone(), src)
        })
        .collect();
    Props::new("parser survives truncated workspace files")
        .cases(256)
        .run(|rng| {
            let (rel, src) = &sources[(rng.next_u64() % sources.len() as u64) as usize];
            if src.is_empty() {
                return;
            }
            let mut cut = (rng.next_u64() % src.len() as u64) as usize;
            while !src.is_char_boundary(cut) {
                cut -= 1;
            }
            let truncated = &src[..cut];
            // Must not panic; spans must stay inside the truncated text.
            parse_and_check(&format!("{rel}[..{cut}]"), truncated);
        });
}

#[test]
fn parser_crash_regressions_stay_fixed() {
    // Counterexamples found while developing the parser, pinned forever.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut found = 0;
    for entry in fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if !name.starts_with("parser_crash_") {
            continue;
        }
        found += 1;
        let src = fs::read_to_string(&path).expect("read crash fixture");
        parse_and_check(name, &src);
    }
    assert!(found > 0, "expected at least one parser_crash_* fixture");
}

#[test]
fn block_statements_nest_within_their_function() {
    // Structural sanity on one hand-written file: statement expressions
    // sit inside their enclosing block's span.
    let src = r#"
pub fn outer(n: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(i);
    }
    acc
}
"#;
    let file = parse_and_check("inline.rs", src);
    assert_eq!(file.recovered, 0);
    for item in &file.items {
        if let ItemKind::Fn(func) = &item.kind {
            let body = func.body.as_ref().expect("body");
            walk_block(body, &mut |e| {
                assert!(
                    e.span.lo >= body.span.lo && e.span.hi <= body.span.hi,
                    "expr span escapes its block"
                );
            });
        }
    }
}
