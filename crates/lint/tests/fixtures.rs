//! Fixture-corpus golden test: linting the deliberately-bad snippets under
//! `tests/fixtures/` must reproduce the byte-exact diagnostics stored in
//! `tests/fixtures_golden.txt`.
//!
//! To regenerate after an intentional rule change, run with
//! `LPMEM_GOLDEN_PRINT=1` (e.g. `LPMEM_GOLDEN_PRINT=1 cargo test -p
//! lpmem-lint --test fixtures -- --nocapture`) and paste the printed
//! diagnostics over `fixtures_golden.txt`.

use std::path::Path;

use lpmem_lint::{lint_root, render_json, render_text, Options};

const GOLDEN: &str = include_str!("fixtures_golden.txt");

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_diagnostics_match_the_golden_file() {
    let report = lint_root(&fixtures_dir(), &Options::default()).expect("fixtures lint");
    let text = render_text(&report.diags);
    if std::env::var("LPMEM_GOLDEN_PRINT").is_ok() {
        println!("--- fixtures_golden.txt ---");
        print!("{text}");
        println!("---------------------------");
    }
    assert_eq!(
        text, GOLDEN,
        "fixture diagnostics drifted from the golden file; if the rule \
         change is intentional, regenerate with LPMEM_GOLDEN_PRINT=1"
    );
    // The corpus carries exactly one well-formed, matching suppression
    // (suppressed_ok.rs), proving suppressions actually suppress.
    assert_eq!(report.suppressed.len(), 1);
    assert_eq!(report.suppressed[0].rule, "D03");
    assert_eq!(report.suppressed[0].path, "suppressed_ok.rs");
}

#[test]
fn every_rule_fires_at_least_once_on_the_corpus() {
    let report = lint_root(&fixtures_dir(), &Options::default()).expect("fixtures lint");
    for rule in lpmem_lint::CATALOG {
        assert!(
            report.diags.iter().any(|d| d.rule == rule.id)
                || report.suppressed.iter().any(|d| d.rule == rule.id),
            "rule {} never fired on the fixture corpus",
            rule.id
        );
    }
}

#[test]
fn fixture_output_is_byte_stable_across_runs() {
    let a = lint_root(&fixtures_dir(), &Options::default()).expect("first run");
    let b = lint_root(&fixtures_dir(), &Options::default()).expect("second run");
    assert_eq!(render_text(&a.diags), render_text(&b.diags));
    assert_eq!(render_json(&a.diags), render_json(&b.diags));
    assert_eq!(a.suppressed, b.suppressed);
    assert_eq!(a.files, b.files);
}
