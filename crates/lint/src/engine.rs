//! The lint engine: walks the workspace, runs the rules, applies
//! suppressions, and reports.
//!
//! # Suppression grammar
//!
//! ```text
//! // lpmem-lint: allow(D01, reason = "merge is commutative")
//! // lpmem-lint: allow(D02, D03, reason = "run instrumentation only")
//! ```
//!
//! The reason is mandatory and must be non-empty: a suppression is a
//! reviewed claim that a flagged site is sound, and the claim is the
//! reason. A suppression comment covers the line it sits on; a comment on
//! a line of its own covers the next line that has code. Malformed
//! suppressions are themselves diagnostics (**L00**), and suppressions
//! that suppress nothing are too (**L01**) — dead allowances rot into
//! false documentation.
//!
//! # Determinism
//!
//! The walk collects files first and sorts them by relative path, rules
//! emit in token order, and diagnostics sort by (path, line, rule), so two
//! runs over the same tree produce identical bytes — the property the
//! golden fixture suite pins.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Diag;
use crate::lexer::{lex, Comment, LexOutput};
use crate::resolve::Workspace;
use crate::rules::{is_source_rule, run_rules, FileContext};
use crate::taint;

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Restrict to these rule ids (`None` = all rules plus the L-series
    /// meta-rules; a filter disables L00/L01/L02 unless listed, and runs
    /// the semantic phase only when a T-series or A02 rule is listed —
    /// heuristic-only filters also skip semantic retraction).
    pub rules: Option<BTreeSet<String>>,
    /// Restrict the walk to relative paths with one of these prefixes.
    pub paths: Vec<String>,
}

/// Analysis counters (surfaced by `lint --bench-json`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Files scanned.
    pub files: usize,
    /// Source lines scanned.
    pub lines: usize,
    /// Functions summarized by the semantic phase.
    pub functions: usize,
    /// Taint sites discovered.
    pub taint_sites: usize,
    /// Call edges resolved (workspace, trait, modeled std/constructor).
    pub resolved_calls: usize,
    /// Call edges left unresolved.
    pub unresolved_calls: usize,
    /// Heuristic diagnostics retracted by the semantic phase.
    pub retracted: usize,
}

/// One run's outcome.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Unsuppressed diagnostics, sorted and deduplicated.
    pub diags: Vec<Diag>,
    /// Diagnostics silenced by a reasoned suppression, sorted.
    pub suppressed: Vec<Diag>,
    /// Number of files scanned.
    pub files: usize,
    /// Analysis counters.
    pub stats: Stats,
}

/// One parsed suppression comment.
#[derive(Debug)]
struct Suppression {
    /// Line of the comment itself (L-series diagnostics anchor here).
    comment_line: u32,
    /// Line the suppression covers.
    target_line: u32,
    /// Rules it allows.
    rules: Vec<String>,
    /// Which of `rules` actually suppressed something.
    used: Vec<bool>,
}

/// Lints one file's source text. The engine and the fixture tests share
/// this entry point; `rel_path` drives rule applicability. The file forms
/// a one-file workspace for the semantic phase.
pub fn lint_source(rel_path: &str, src: &str, opts: &Options) -> (Vec<Diag>, Vec<Diag>) {
    let report = lint_files(&[(rel_path.to_string(), src.to_string())], opts);
    (report.diags, report.suppressed)
}

/// Lints a set of files as ONE workspace: phase A runs the per-file
/// heuristic rules, phase B builds the resolved workspace and runs the
/// inter-procedural taint analysis (T01/T02/A02), retracts heuristic
/// diagnostics the flow analysis proves safe or subsumes, then applies
/// suppressions per file (L00 malformed, L01 unused, L02 obsolete).
pub fn lint_files(inputs: &[(String, String)], opts: &Options) -> Report {
    struct FileWork {
        rel: String,
        heur: Vec<Diag>,
        meta: Vec<Diag>,
        supps: Vec<Suppression>,
    }
    let mut works = Vec::with_capacity(inputs.len());
    let mut all_heur = Vec::new();
    let mut lines = 0usize;
    for (rel, src) in inputs {
        lines += src.lines().count();
        let LexOutput { tokens, comments } = lex(src);
        let ctx = FileContext::new(rel, &tokens);
        let heur = run_rules(&ctx, opts.rules.as_ref());
        let mut meta = Vec::new();
        let supps = parse_suppressions(rel, &comments, &tokens, &mut meta);
        all_heur.extend(heur.iter().cloned());
        works.push(FileWork {
            rel: rel.clone(),
            heur,
            meta,
            supps,
        });
    }

    // Phase B: semantic analysis over the resolved workspace. A `--rules`
    // filter without any semantic rule skips it entirely (pure heuristic
    // mode, no retraction).
    let semantic = opts
        .rules
        .as_ref()
        .is_none_or(|f| ["T01", "T02", "A02"].iter().any(|r| f.contains(*r)));
    let (sem_diags, retract, mut stats) = if semantic {
        let ws = Workspace::build(inputs);
        let out = taint::analyze(&ws, &all_heur);
        let stats = Stats {
            files: inputs.len(),
            lines,
            functions: out.stats.functions,
            taint_sites: out.stats.taint_sites,
            resolved_calls: out.stats.resolved_calls,
            unresolved_calls: out.stats.unresolved_calls,
            retracted: out.retract.len(),
        };
        let keep = |d: &Diag| opts.rules.as_ref().is_none_or(|f| f.contains(d.rule));
        let diags: Vec<Diag> = out.diags.into_iter().filter(|d| keep(d)).collect();
        (diags, out.retract, stats)
    } else {
        (
            Vec::new(),
            BTreeSet::new(),
            Stats {
                files: inputs.len(),
                lines,
                ..Stats::default()
            },
        )
    };

    let mut report = Report::default();
    for mut w in works {
        let mut diags: Vec<Diag> = w
            .heur
            .into_iter()
            .filter(|d| !retract.contains(&(d.path.clone(), d.line, d.rule.to_string())))
            .collect();
        diags.extend(sem_diags.iter().filter(|d| d.path == w.rel).cloned());
        diags.sort();
        diags.dedup();

        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        'diag: for d in diags {
            for s in w.supps.iter_mut() {
                if s.target_line == d.line {
                    if let Some(r) = s.rules.iter().position(|r| r == d.rule) {
                        s.used[r] = true;
                        suppressed.push(d);
                        continue 'diag;
                    }
                }
            }
            kept.push(d);
        }

        // Meta-rules run only on full-catalog scans: under a `--rules`
        // filter most suppressions are trivially "unused" and L00 noise
        // would follow.
        if opts.rules.is_none() {
            kept.append(&mut w.meta);
            for s in &w.supps {
                for (rule, used) in s.rules.iter().zip(&s.used) {
                    if *used {
                        continue;
                    }
                    let obsolete = retract.contains(&(w.rel.clone(), s.target_line, rule.clone()));
                    kept.push(if obsolete {
                        Diag {
                            path: w.rel.clone(),
                            line: s.comment_line,
                            rule: "L02",
                            message: format!(
                                "suppression for {rule} is obsolete: semantic analysis \
                                 proves the line {} site safe",
                                s.target_line
                            ),
                        }
                    } else {
                        Diag {
                            path: w.rel.clone(),
                            line: s.comment_line,
                            rule: "L01",
                            message: format!(
                                "suppression for {rule} does not match any diagnostic \
                                 on line {}",
                                s.target_line
                            ),
                        }
                    });
                }
            }
        }

        kept.sort();
        kept.dedup();
        suppressed.sort();
        report.diags.extend(kept);
        report.suppressed.extend(suppressed);
    }
    report.files = inputs.len();
    stats.files = inputs.len();
    report.stats = stats;
    report.diags.sort();
    report.suppressed.sort();
    report
}

/// Parses every `lpmem-lint` comment; malformed ones become L00 diags.
fn parse_suppressions(
    rel_path: &str,
    comments: &[Comment],
    tokens: &[crate::lexer::Token],
    meta: &mut Vec<Diag>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/**`) never carry suppressions —
        // they routinely *mention* the grammar (this module included).
        if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
            continue;
        }
        let Some(at) = c.text.find("lpmem-lint") else {
            continue;
        };
        let bad = |why: String| Diag {
            path: rel_path.to_string(),
            line: c.line,
            rule: "L00",
            message: why,
        };
        let rest = c.text[at + "lpmem-lint".len()..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            meta.push(bad(
                "malformed suppression: expected `lpmem-lint: allow(RULE…, \
                 reason = \"…\")`"
                    .to_string(),
            ));
            continue;
        };
        let rest = rest.trim();
        // `allow(…)` with nothing but whitespace after the final paren.
        let body = match rest.strip_prefix("allow(") {
            Some(r) => match r.rfind(')') {
                Some(p) if r[p + 1..].trim().is_empty() => Some(r[..p].trim()),
                _ => None,
            },
            None => None,
        };
        let Some(body) = body else {
            meta.push(bad(
                "malformed suppression: expected `allow(RULE…, reason = \"…\")` \
                 after `lpmem-lint:`"
                    .to_string(),
            ));
            continue;
        };
        let mut rules = Vec::new();
        let mut reason: Option<String> = None;
        let mut ok = true;
        for item in split_args(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if let Some(r) = item.strip_prefix("reason") {
                let r = r.trim_start();
                match r.strip_prefix('=').map(str::trim) {
                    Some(q) if q.len() >= 2 && q.starts_with('"') && q.ends_with('"') => {
                        reason = Some(q[1..q.len() - 1].to_string());
                    }
                    _ => {
                        meta.push(bad(
                            "malformed suppression: reason must be `reason = \"…\"`".to_string(),
                        ));
                        ok = false;
                        break;
                    }
                }
            } else if is_source_rule(item) {
                rules.push(item.to_string());
            } else {
                meta.push(bad(format!("malformed suppression: unknown rule `{item}`")));
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        match &reason {
            None => {
                meta.push(bad("suppression missing its mandatory reason".to_string()));
                continue;
            }
            Some(r) if r.trim().is_empty() => {
                meta.push(bad("suppression reason is empty".to_string()));
                continue;
            }
            Some(_) => {}
        }
        if rules.is_empty() {
            meta.push(bad("suppression allows no rules".to_string()));
            continue;
        }
        let target_line = target_line_for(c.line, tokens);
        let used = vec![false; rules.len()];
        out.push(Suppression {
            comment_line: c.line,
            target_line,
            rules,
            used,
        });
    }
    out
}

/// Splits a suppression body on top-level commas (commas inside the quoted
/// reason do not split).
fn split_args(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, ch) in body.char_indices() {
        match ch {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    parts.push(&body[start..]);
    parts
}

/// The line a suppression comment covers: its own line when code shares
/// it, otherwise the next line carrying code.
fn target_line_for(comment_line: u32, tokens: &[crate::lexer::Token]) -> u32 {
    if tokens.iter().any(|t| t.line == comment_line) {
        return comment_line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > comment_line)
        .min()
        .unwrap_or(comment_line)
}

/// Collects the workspace's lintable files: `crates/`, `src/`, `tests/`,
/// and `examples/` under `root`, skipping `target` and any `fixtures`
/// corpus directories. Returned paths are root-relative, forward-slashed,
/// and sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    // A bare directory of snippets (the fixture corpus itself) lints too.
    if files.is_empty() {
        walk(root, root, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, root: &Path, files: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name, "target" | "fixtures") || name.starts_with('.') {
                continue;
            }
            walk(&path, root, files)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                files.push(rel.join("/"));
            }
        }
    }
    Ok(())
}

/// Lints everything under `root` per `opts`. All selected files form one
/// workspace, so the semantic phase sees cross-file and cross-crate
/// flows.
pub fn lint_root(root: &Path, opts: &Options) -> io::Result<Report> {
    let mut inputs = Vec::new();
    for rel in workspace_files(root)? {
        if !opts.paths.is_empty() && !opts.paths.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        let src = fs::read_to_string(root.join(&rel))?;
        inputs.push((rel, src));
    }
    Ok(lint_files(&inputs, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> (Vec<Diag>, Vec<Diag>) {
        lint_source(rel, src, &Options::default())
    }

    // A clock read escaping through an uncalled pub fn's return value:
    // the semantic phase cannot prove it safe, so D02 stays live for the
    // suppression to match.
    const ESCAPING_CLOCK: &str =
        "pub fn wall() -> u128 { std::time::Instant::now().elapsed().as_nanos() }";

    #[test]
    fn same_line_suppression_silences_the_diagnostic() {
        let src = format!("{ESCAPING_CLOCK} // lpmem-lint: allow(D02, reason = \"doc example\")\n");
        let (diags, suppressed) = run("crates/x/src/lib.rs", &src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].rule, "D02");
    }

    #[test]
    fn own_line_suppression_covers_the_next_code_line() {
        let src = format!(
            "\n// lpmem-lint: allow(D02, reason = \"startup banner only\")\n{ESCAPING_CLOCK}\n"
        );
        let (diags, suppressed) = run("crates/x/src/lib.rs", &src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert_eq!(suppressed[0].line, 3);
    }

    #[test]
    fn retracted_diagnostic_turns_its_suppression_into_l02() {
        // The clock value dies locally: the heuristic D02 is retracted,
        // so the suppression covering it is obsolete (L02, anchored at
        // the comment), not merely unused (L01).
        let src = "fn t() -> u64 {\n\
                   // lpmem-lint: allow(D02, reason = \"now stale\")\n\
                   let t0 = std::time::Instant::now();\n\
                   let _ = t0.elapsed();\n\
                   7\n\
                   }\n";
        let (diags, suppressed) = run("crates/x/src/lib.rs", src);
        assert!(suppressed.is_empty(), "unexpected: {suppressed:?}");
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].rule, "L02");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("obsolete"));
    }

    #[test]
    fn one_comment_can_allow_multiple_rules() {
        let src = "// lpmem-lint: allow(D02, D03, reason = \"timing the seed mixer demo\")\nlet t = (Instant::now(), my_seed ^ 3);\n";
        let (diags, suppressed) = run("crates/x/src/lib.rs", src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert_eq!(suppressed.len(), 2);
    }

    #[test]
    fn missing_reason_is_l00() {
        let src = format!("// lpmem-lint: allow(D02)\n{ESCAPING_CLOCK}\n");
        let (diags, _) = run("crates/x/src/lib.rs", &src);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        // The suppression is void, so the D02 survives alongside the L00.
        assert_eq!(rules, vec!["L00", "D02"]);
    }

    #[test]
    fn empty_reason_unknown_rule_and_typos_are_l00() {
        for src in [
            "// lpmem-lint: allow(D02, reason = \"\")\n",
            "// lpmem-lint: allow(D99, reason = \"x\")\n",
            "// lpmem-lint: allow(L01, reason = \"meta-rules are unsuppressible\")\n",
            "// lpmem-lint allow(D02, reason = \"missing colon\")\n",
            "// lpmem-lint: allow(reason = \"no rules\")\n",
        ] {
            let (diags, _) = run("crates/x/src/lib.rs", src);
            assert_eq!(diags.len(), 1, "for {src:?}: {diags:?}");
            assert_eq!(diags[0].rule, "L00", "for {src:?}");
        }
    }

    #[test]
    fn unused_suppressions_are_l01() {
        let src = "// lpmem-lint: allow(D04, reason = \"stale claim\")\nlet x = 1;\n";
        let (diags, _) = run("crates/x/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "L01");
        assert!(diags[0].message.contains("D04"));
    }

    #[test]
    fn reasons_may_contain_commas_and_parens() {
        let src = format!("{ESCAPING_CLOCK} // lpmem-lint: allow(D02, reason = \"a, b (c), d\")\n");
        let (diags, suppressed) = run("crates/x/src/lib.rs", &src);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
        assert_eq!(suppressed.len(), 1);
    }

    #[test]
    fn rule_filter_disables_meta_rules() {
        let opts = Options {
            rules: Some(["D02".to_string()].into_iter().collect()),
            paths: Vec::new(),
        };
        let src = "// lpmem-lint: allow(D04, reason = \"would be L01 unfiltered\")\nuse std::time::Instant;\n";
        let (diags, _) = lint_source("crates/x/src/lib.rs", src, &opts);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec!["D02"]);
    }

    #[test]
    fn walk_is_sorted_and_skips_fixtures() {
        let tmp = std::env::temp_dir().join(format!("lpmem_lint_walk_{}", std::process::id()));
        let mk = |p: &str| {
            let full = tmp.join(p);
            fs::create_dir_all(full.parent().expect("joined path has a parent"))
                .expect("create test tree");
            fs::write(full, "fn x() {}\n").expect("write test file");
        };
        mk("crates/b/src/lib.rs");
        mk("crates/a/src/lib.rs");
        mk("crates/a/tests/fixtures/bad.rs");
        mk("src/lib.rs");
        mk("tests/t.rs");
        let files = workspace_files(&tmp).expect("walk succeeds");
        fs::remove_dir_all(&tmp).ok();
        assert_eq!(
            files,
            vec![
                "crates/a/src/lib.rs",
                "crates/b/src/lib.rs",
                "src/lib.rs",
                "tests/t.rs"
            ]
        );
    }
}
