//! A lightweight Rust lexer: a token stream with comment, string, and
//! attribute awareness — deliberately *not* a parser.
//!
//! The rule engine only needs to answer questions like "is this `unwrap`
//! identifier real code or part of a doc comment?", "which line does this
//! suppression comment sit on?", and "what tokens follow `.iter()` inside
//! the same statement?". A full grammar would buy precision the rules do
//! not need at a hermeticity cost the workspace cannot pay (no `syn`, no
//! registry — DESIGN.md §5), so the lexer handles exactly the lexical
//! structure that matters:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments, kept separately
//!   so suppressions can be parsed out of them;
//! * string-family literals: `"…"` with escapes, raw strings `r#"…"#`,
//!   byte/C prefixes (`b""`, `br#""#`, `c""`, `cr#""#`), and char literals
//!   (`'a'`, `'\n'`) disambiguated from lifetimes (`'a`);
//! * attributes `#[…]` / `#![…]`, captured as single tokens (strings inside
//!   them are honoured) so `#[cfg(test)]` regions are cheap to find;
//! * identifiers, numbers, and single-character punctuation.
//!
//! Every token carries its 1-based source line, which is all the
//! diagnostics need.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `let`, `as`).
    Ident,
    /// Numeric literal (`42`, `0xFF`, `1.5e3`, `2003u64`).
    Number,
    /// String-family literal, quotes and prefix included (`"x"`, `r#"y"#`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`), including the quote.
    Lifetime,
    /// Single punctuation character (`.`, `^`, `{`).
    Punct,
    /// A whole attribute, brackets included (`#[cfg(test)]`).
    Attr,
}

/// One code token with its 1-based source line and byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first byte in the source.
    pub lo: u32,
    /// Byte offset one past the token's last byte in the source.
    pub hi: u32,
}

impl Token {
    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// `true` when this token is exactly the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// `true` when `next` starts at the byte where this token ends — the
    /// parser uses adjacency to reassemble multi-character operators
    /// (`::`, `->`, `<<`, `+=`) out of single-character punctuation.
    pub fn touches(&self, next: &Token) -> bool {
        self.hi == next.lo
    }
}

/// One comment (line or block), with the comment markers stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body without `//`, `/*`, or `*/` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexer's output: code tokens and comments, in source order.
#[derive(Debug, Clone, Default)]
pub struct LexOutput {
    /// Code tokens (comments excluded).
    pub tokens: Vec<Token>,
    /// All comments, doc comments included.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source into tokens and comments.
///
/// The lexer never fails: malformed input (an unterminated string, a stray
/// byte) degrades into punctuation tokens rather than an error, because a
/// linter must keep scanning whatever it is given.
pub fn lex(src: &str) -> LexOutput {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    /// Byte offset of the cursor (chars are variable-width).
    byte: u32,
    /// Byte offset where the token being lexed started.
    tok_start: u32,
    src: std::marker::PhantomData<&'a str>,
    out: LexOutput,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            byte: 0,
            tok_start: 0,
            src: std::marker::PhantomData,
            out: LexOutput::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(ch) = c {
            self.pos += 1;
            self.byte += ch.len_utf8() as u32;
            if ch == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            lo: self.tok_start,
            hi: self.byte,
        });
    }

    fn run(mut self) -> LexOutput {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            self.tok_start = self.byte;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    let text = self.string_literal(String::new());
                    self.push(TokenKind::Str, text, line);
                }
                '\'' => self.quote(line),
                '#' => self.attr_or_punct(line),
                _ if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_string(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Consumes a `"…"` literal (opening quote at the cursor) and returns
    /// `prefix` + the full literal text.
    fn string_literal(&mut self, mut prefix: String) -> String {
        prefix.push('"');
        self.bump();
        while let Some(c) = self.bump() {
            prefix.push(c);
            if c == '\\' {
                if let Some(esc) = self.bump() {
                    prefix.push(esc);
                }
            } else if c == '"' {
                break;
            }
        }
        prefix
    }

    /// Consumes a raw string `#…#"…"#…#` (cursor on the first `#` or `"`)
    /// and returns `prefix` + the full literal text.
    fn raw_string_literal(&mut self, mut prefix: String) -> String {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            prefix.push('#');
            self.bump();
        }
        if self.peek(0) != Some('"') {
            return prefix; // `r#foo` raw identifier — handled by caller.
        }
        prefix.push('"');
        self.bump();
        'outer: while let Some(c) = self.bump() {
            prefix.push(c);
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    prefix.push('#');
                    self.bump();
                }
                break;
            }
        }
        prefix
    }

    /// `'` — either a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump();
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.bump();
            let mut text = String::from("'");
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                } else if c == '\'' {
                    break;
                }
            }
            self.push(TokenKind::Char, text, line);
        }
    }

    /// `#` — an attribute `#[…]` / `#![…]`, or plain punctuation.
    fn attr_or_punct(&mut self, line: u32) {
        let bracket_at = if self.peek(1) == Some('[') {
            1
        } else if self.peek(1) == Some('!') && self.peek(2) == Some('[') {
            2
        } else {
            self.bump();
            self.push(TokenKind::Punct, "#".to_string(), line);
            return;
        };
        let mut text = String::from("#");
        if bracket_at == 2 {
            text.push('!');
        }
        for _ in 0..=bracket_at {
            self.bump();
        }
        text.push('[');
        let mut depth = 1usize;
        while let Some(c) = self.peek(0) {
            match c {
                '"' => {
                    let s = self.string_literal(String::new());
                    text.push_str(&s);
                }
                '[' => {
                    depth += 1;
                    text.push(c);
                    self.bump();
                }
                ']' => {
                    depth -= 1;
                    text.push(c);
                    self.bump();
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::Attr, text, line);
    }

    /// Identifier, keyword, or a string literal with an `r`/`b`/`c` prefix.
    fn ident_or_prefixed_string(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let next = self.peek(0);
        let raw = matches!(text.as_str(), "r" | "br" | "cr");
        let plain = matches!(text.as_str(), "b" | "c");
        if raw && (next == Some('"') || next == Some('#')) {
            let lit = self.raw_string_literal(text);
            // `r#ident` raw identifiers come back without a quote: the
            // consumed `#` stays part of the text; treat them as idents.
            if lit.contains('"') {
                self.push(TokenKind::Str, lit, line);
            } else {
                let trimmed = lit.trim_end_matches('#').to_string();
                let mut rest = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        rest.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Ident, trimmed + &rest, line);
            }
        } else if plain && next == Some('"') {
            let lit = self.string_literal(text);
            self.push(TokenKind::Str, lit, line);
        } else if text == "b" && next == Some('\'') {
            self.quote(line);
            // Merge the prefix into the produced char token.
            if let Some(last) = self.out.tokens.last_mut() {
                last.text.insert(0, 'b');
                last.line = line;
            }
        } else {
            self.push(TokenKind::Ident, text, line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1.5` continues the number; `1..n` and `1.method()` do not.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        text.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let out = lex("// unwrap() here\nlet x = 1; /* unwrap() */\n");
        assert!(!out.tokens.iter().any(|t| t.text.contains("unwrap")));
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert_eq!(out.comments[0].text, " unwrap() here");
        assert_eq!(out.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let out = lex("/* a /* b */ c */ real");
        assert_eq!(out.comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ real"), vec!["real"]);
        assert_eq!(out.comments[0].text, " a /* b */ c ");
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r#"let s = "unwrap() \" HashMap"; t"#;
        assert_eq!(idents(src), vec!["let", "s", "t"]);
    }

    #[test]
    fn raw_and_prefixed_strings_lex_as_one_token() {
        let out = lex(r##"let s = r#"a " b"#; let t = b"x"; let u = r"y";"##);
        let strs: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec![r##"r#"a " b"#"##, r#"b"x""#, r#"r"y""#]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn attributes_are_single_tokens() {
        let out = lex("#[cfg(test)]\n#[doc = \"has ] bracket\"]\nmod tests {}");
        let attrs: Vec<&Token> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Attr)
            .collect();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].text, "#[cfg(test)]");
        assert_eq!(attrs[0].line, 1);
        assert_eq!(attrs[1].text, "#[doc = \"has ] bracket\"]");
    }

    #[test]
    fn inner_attributes_lex_too() {
        let out = lex("#![allow(dead_code)] fn x() {}");
        assert_eq!(out.tokens[0].kind, TokenKind::Attr);
        assert_eq!(out.tokens[0].text, "#![allow(dead_code)]");
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let out = lex("for i in 0..10 { let f = 1.5; let g = 2.max(3); }");
        let nums: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2", "3"]);
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let out = lex("let a = \"x\ny\";\nlet b = 1;");
        let b = out.tokens.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(b, Some(3));
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let out = lex("let s = \"never closed");
        assert_eq!(out.tokens.last().map(|t| t.kind), Some(TokenKind::Str));
    }
}
