//! `lpmem-lint`: the workspace's hermetic determinism-and-accounting
//! linter.
//!
//! The sweep and explore engines promise byte-identical JSONL at any
//! worker count, and the energy flows make exact-pJ claims — invariants
//! the golden suites only catch *after* they break. This crate enforces
//! them statically, in two phases. A hand-rolled lexer ([`lexer`]) feeds
//! the heuristic rule engine ([`rules`], [`engine`]), which walks every
//! workspace source file and emits deterministic diagnostics ([`diag`]).
//! On full-catalog runs a semantic phase then parses each file into an
//! AST ([`parse`], [`ast`]), resolves the workspace symbol table and
//! call graph ([`resolve`]), and runs an inter-procedural determinism
//! taint analysis ([`taint`]) that adds the T-series and A02 findings,
//! retracts heuristic findings it proves safe, and flags the
//! suppressions those retractions make obsolete (L02). Because the
//! build is hermetic (DESIGN.md §5) there is no `syn`, no
//! `clippy-utils`, and no registry: the linter is built in-tree, from
//! nothing but `std`, and is itself subject to every rule it enforces.
//!
//! See `docs/lint-rules.md` for the rule catalog and DESIGN.md §9/§14
//! for the architecture. The `lint` binary (`cargo run -p lpmem-lint
//! --bin lint -- --deny`) is the fourth tier-1 gate in
//! `scripts/verify.sh`.
//!
//! ```
//! use lpmem_lint::{lint_source, Options};
//!
//! let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
//! let (diags, _suppressed) = lint_source("crates/x/src/lib.rs", src, &Options::default());
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "D04");
//! ```

pub mod ast;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parse;
pub mod resolve;
pub mod rules;
pub mod taint;

pub use diag::{render_json, render_text, Diag};
pub use engine::{lint_files, lint_root, lint_source, workspace_files, Options, Report, Stats};
pub use rules::{FileContext, RuleInfo, CATALOG};
