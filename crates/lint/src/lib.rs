//! `lpmem-lint`: the workspace's hermetic determinism-and-accounting
//! linter.
//!
//! The sweep and explore engines promise byte-identical JSONL at any
//! worker count, and the energy flows make exact-pJ claims — invariants
//! the golden suites only catch *after* they break. This crate enforces
//! them statically: a hand-rolled lexer ([`lexer`]) feeds a rule engine
//! ([`rules`], [`engine`]) that walks every workspace source file and
//! emits deterministic diagnostics ([`diag`]). Because the build is
//! hermetic (DESIGN.md §5) there is no `syn`, no `clippy-utils`, and no
//! registry: the linter is built in-tree, from nothing but `std`, and is
//! itself subject to every rule it enforces.
//!
//! See `docs/lint-rules.md` for the rule catalog and DESIGN.md §9 for the
//! architecture. The `lint` binary (`cargo run -p lpmem-lint --bin lint --
//! --deny`) is the fourth tier-1 gate in `scripts/verify.sh`.
//!
//! ```
//! use lpmem_lint::{lint_source, Options};
//!
//! let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
//! let (diags, _suppressed) = lint_source("crates/x/src/lib.rs", src, &Options::default());
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "D04");
//! ```

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diag::{render_json, render_text, Diag};
pub use engine::{lint_root, lint_source, workspace_files, Options, Report};
pub use rules::{FileContext, RuleInfo, CATALOG};
