//! The spanned AST produced by [`crate::parse`].
//!
//! This is a *linter's* AST, not a compiler's: it covers the Rust subset
//! the workspace actually writes (items, impls, fn bodies, expressions,
//! match, closures) with enough fidelity for call-graph construction and
//! taint propagation, and degrades gracefully everywhere else. Regions the
//! parser cannot understand become [`ExprKind::Unknown`] /
//! [`ItemKind::Verbatim`] nodes that still carry exact byte spans, so the
//! span round-trip property (`tests/parser.rs`) holds even on inputs the
//! grammar does not model.
//!
//! Types and patterns are deliberately shallow: a [`Ty`] keeps its source
//! text plus the outermost nominal *head* (`&mut HashMap<K, V>` →
//! `HashMap`) and the heads of its top-level generic arguments, which is
//! exactly what the receiver-type heuristics in [`crate::resolve`] and the
//! hash-container typing in [`crate::taint`] consume. A [`Pat`] keeps its
//! bound identifiers. Nothing here allocates beyond the strings it shows.

/// A byte range into the lexed source plus the 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first byte.
    pub lo: u32,
    /// Byte offset one past the last byte.
    pub hi: u32,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Span {
    /// The empty span at offset zero (used by synthesized nodes).
    pub const NULL: Span = Span {
        lo: 0,
        hi: 0,
        line: 0,
    };

    /// A span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            line: if self.line == 0 || (other.line != 0 && other.line < self.line) {
                other.line
            } else {
                self.line
            },
        }
    }
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Number of regions the parser had to skip (error recovery). Zero on
    /// every file the grammar fully models; the parser property test pins
    /// this at zero for the live workspace.
    pub recovered: u32,
    /// 1-based lines of the first 64 recoveries (diagnostic aid).
    pub recovered_lines: Vec<u32>,
}

/// One item (top-level or nested in a block/impl/mod).
#[derive(Debug)]
pub struct Item {
    /// Bytes of the whole item, attributes excluded.
    pub span: Span,
    /// Carries any `pub` visibility.
    pub vis_pub: bool,
    /// Carries `#[cfg(test)]` / `#[test]` (directly; nesting is resolved
    /// by the consumer walking enclosing items).
    pub cfg_test: bool,
    /// What the item is.
    pub kind: ItemKind,
}

/// Item payloads.
#[derive(Debug)]
pub enum ItemKind {
    /// `fn` (free, associated, or trait-provided).
    Fn(Box<FnItem>),
    /// `impl Ty { … }` / `impl Trait for Ty { … }`.
    Impl(ImplItem),
    /// `mod name;` or `mod name { … }`.
    Mod(ModItem),
    /// `use …;`, expanded to leaf bindings.
    Use(UseItem),
    /// `struct` with named fields (tuple/unit structs keep empty fields).
    Struct(StructItem),
    /// `enum` with variant names.
    Enum(EnumItem),
    /// `trait Name { … }`.
    Trait(TraitItem),
    /// `const NAME: Ty = …;` or `static NAME: Ty = …;`.
    Const(ConstItem),
    /// `type Alias = …;`.
    TypeAlias(String),
    /// `macro_rules! name { … }` (body skipped).
    MacroDef(String),
    /// Anything the grammar does not model (`extern` blocks, parse
    /// recoveries). The span still covers the skipped bytes.
    Verbatim,
}

/// One function.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Span of the name identifier (diagnostics anchor here).
    pub name_span: Span,
    /// `true` when the parameter list starts with a `self` receiver.
    pub has_self: bool,
    /// Named parameters (receiver excluded).
    pub params: Vec<Param>,
    /// Return type, if written.
    pub ret: Option<Ty>,
    /// Body; `None` for trait-required fns and foreign fns.
    pub body: Option<Block>,
}

/// One named function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding names introduced by the parameter pattern.
    pub bindings: Vec<String>,
    /// Declared type.
    pub ty: Ty,
}

/// A shallow type: source text plus nominal head and top-level argument
/// heads (`Mutex<HashMap<u64, f64>>` → head `Mutex`, args `[HashMap]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ty {
    /// Exact source text, whitespace-normalized to single spaces.
    pub text: String,
    /// Outermost nominal head: refs, `mut`, parens, `impl`/`dyn` stripped;
    /// slices are `[]`, tuples `()`, fn-pointers/bounds `fn`.
    pub head: String,
    /// Heads of the top-level generic arguments, in order.
    pub args: Vec<String>,
}

impl Ty {
    /// The head after seeing through the workspace's standard wrappers
    /// (`&`, `Option`, `Mutex`, `Arc`, `Rc`, `Box`, `Vec` keep the rule
    /// useful for `Mutex<HashMap<…>>` fields).
    pub fn unwrapped_head(&self) -> &str {
        let mut head = self.head.as_str();
        let mut args = &self.args;
        let mut hops = 0;
        while matches!(
            head,
            "Option" | "Mutex" | "RwLock" | "Arc" | "Rc" | "Box" | "RefCell"
        ) && hops < 4
        {
            match args.first() {
                Some(first) => {
                    head = first;
                    // Only one level of argument heads is recorded, so
                    // deeper nests stop here (conservatively).
                    args = &EMPTY_ARGS;
                }
                None => break,
            }
            hops += 1;
        }
        head
    }
}

static EMPTY_ARGS: Vec<String> = Vec::new();

/// One `impl` block.
#[derive(Debug)]
pub struct ImplItem {
    /// Head of the implemented type (`Frontier`, `SweepReport`).
    pub ty_head: String,
    /// Trait name for `impl Trait for Ty`.
    pub trait_name: Option<String>,
    /// Associated items.
    pub items: Vec<Item>,
}

/// One `mod` item.
#[derive(Debug)]
pub struct ModItem {
    /// Module name.
    pub name: String,
    /// Inline body; `None` for `mod name;` (resolved by file layout).
    pub items: Option<Vec<Item>>,
}

/// One `use` item, flattened: each leaf becomes `(visible_name, path)`.
#[derive(Debug)]
pub struct UseItem {
    /// `(name in scope, full path segments)` pairs; globs record the
    /// prefix with a trailing `*` name.
    pub leaves: Vec<(String, Vec<String>)>,
}

/// One `struct` item with its named fields.
#[derive(Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Named fields with shallow types (empty for tuple/unit structs).
    pub fields: Vec<(String, Ty)>,
}

/// One `enum` item.
#[derive(Debug)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// Variant names.
    pub variants: Vec<String>,
}

/// One `trait` item.
#[derive(Debug)]
pub struct TraitItem {
    /// Trait name.
    pub name: String,
    /// Associated items (provided methods carry bodies).
    pub items: Vec<Item>,
}

/// One `const`/`static` item.
#[derive(Debug)]
pub struct ConstItem {
    /// Item name.
    pub name: String,
    /// Declared type, when parsed.
    pub ty: Option<Ty>,
    /// Initializer expression.
    pub init: Option<Expr>,
}

/// A `{ … }` block.
#[derive(Debug)]
pub struct Block {
    /// Bytes from `{` through `}`.
    pub span: Span,
    /// Statements in order; a trailing expression is a
    /// [`Stmt::Expr`] with `semi == false`.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let pat[: ty] [= init] [else { … }];`
    Let(LetStmt),
    /// Expression statement; `semi` records the trailing `;`.
    Expr(Expr, bool),
    /// A nested item.
    Item(Item),
}

/// One `let` statement.
#[derive(Debug)]
pub struct LetStmt {
    /// Bytes of the whole statement.
    pub span: Span,
    /// Binding pattern.
    pub pat: Pat,
    /// Declared type, when annotated.
    pub ty: Option<Ty>,
    /// Initializer.
    pub init: Option<Expr>,
    /// Diverging `else` block of `let … else`.
    pub els: Option<Block>,
}

/// A shallow pattern: bound names plus the covered bytes.
#[derive(Debug, Clone)]
pub struct Pat {
    /// Bytes of the pattern.
    pub span: Span,
    /// Identifiers the pattern binds (heuristic; struct-pattern field
    /// names and enum paths excluded).
    pub bindings: Vec<String>,
}

/// One expression.
#[derive(Debug)]
pub struct Expr {
    /// Bytes of the expression.
    pub span: Span,
    /// Payload.
    pub kind: ExprKind,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Arm pattern.
    pub pat: Pat,
    /// `if` guard.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// Binary operators the analysis distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `^`
    BitXor,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`, `!=`, `<`, `<=`, `>`, `>=`
    Cmp,
    /// `&&`, `||`
    Logic,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `*`
    Deref,
}

/// Expression payloads.
#[derive(Debug)]
pub enum ExprKind {
    /// Literal (number, string, char, `true`/`false`); the token text.
    Lit(String),
    /// Path: `x`, `a::b::C` (turbofish arguments stripped).
    Path(Vec<String>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// `&expr` / `&mut expr`.
    Ref {
        /// `&mut`.
        mutable: bool,
        /// Referenced expression.
        inner: Box<Expr>,
    },
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `lhs = rhs` (`op` `None`) or `lhs op= rhs`.
    Assign {
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `expr as Ty`.
    Cast(Box<Expr>, Ty),
    /// `callee(args…)`.
    Call {
        /// Called expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.method::<T>(args…)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Span of the method identifier.
        method_span: Span,
        /// Turbofish type argument head, when written
        /// (`collect::<Vec<_>>` → `Vec`).
        turbofish: Option<String>,
        /// Arguments (receiver excluded).
        args: Vec<Expr>,
    },
    /// `base.field` (also tuple indices: `pair.0`).
    Field(Box<Expr>, String),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `(a, b, …)`; one-element groups are transparent parens.
    Tuple(Vec<Expr>),
    /// `[a, b, …]` and `[x; n]`.
    Array(Vec<Expr>),
    /// `Path { field: expr, …, ..rest }`.
    StructLit {
        /// Struct path.
        path: Vec<String>,
        /// Field initializers (shorthand `x` becomes `(x, Path(x))`).
        fields: Vec<(String, Expr)>,
        /// `..rest` base.
        rest: Option<Box<Expr>>,
    },
    /// `path!(args…)`; string-literal arguments containing inline format
    /// captures (`"{name}"`) contribute synthesized `Path` arguments.
    MacroCall {
        /// Macro path (without `!`).
        path: Vec<String>,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
    },
    /// `if cond { … } [else …]`; `cond` is an [`ExprKind::LetCond`] for
    /// `if let`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else expression (a block or another `if`).
        els: Option<Box<Expr>>,
    },
    /// `let pat = scrut` appearing as a condition.
    LetCond {
        /// Pattern.
        pat: Pat,
        /// Scrutinee.
        scrut: Box<Expr>,
    },
    /// `match scrut { arms… }`.
    Match {
        /// Scrutinee.
        scrut: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
    },
    /// `while cond { … }` (cond may be a `LetCond`).
    While {
        /// Condition.
        cond: Box<Expr>,
        /// Body.
        body: Block,
    },
    /// `for pat in iter { … }`.
    ForLoop {
        /// Loop pattern.
        pat: Pat,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
    },
    /// `loop { … }`.
    Loop(Block),
    /// A block expression.
    Block(Block),
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Parameter patterns.
        params: Vec<Pat>,
        /// Body expression.
        body: Box<Expr>,
    },
    /// `return [expr]`.
    Return(Option<Box<Expr>>),
    /// `break ['label] [expr]`.
    Break(Option<Box<Expr>>),
    /// `continue ['label]`.
    Continue,
    /// `expr?`.
    Try(Box<Expr>),
    /// `lo..hi` / `lo..=hi` with optional ends.
    Range(Option<Box<Expr>>, Option<Box<Expr>>),
    /// A region the parser skipped; the span covers the bytes.
    Unknown,
}

impl Expr {
    /// Convenience constructor.
    pub fn new(span: Span, kind: ExprKind) -> Expr {
        Expr { span, kind }
    }

    /// The path segments when this is a plain path expression.
    pub fn as_path(&self) -> Option<&[String]> {
        match &self.kind {
            ExprKind::Path(segs) => Some(segs),
            _ => None,
        }
    }

    /// The single identifier when this is a one-segment path.
    pub fn as_ident(&self) -> Option<&str> {
        match self.as_path() {
            Some([one]) => Some(one),
            _ => None,
        }
    }
}

/// Walks `expr` and every sub-expression (blocks included), calling `f` on
/// each node in pre-order. Closure bodies are walked too — the analyses
/// treat them as inline code of the enclosing function.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Lit(_) | ExprKind::Path(_) | ExprKind::Continue | ExprKind::Unknown => {}
        ExprKind::Unary(_, e)
        | ExprKind::Ref { inner: e, .. }
        | ExprKind::Cast(e, _)
        | ExprKind::Field(e, _)
        | ExprKind::Try(e) => walk_expr(e, f),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Tuple(xs) | ExprKind::Array(xs) => {
            for x in xs {
                walk_expr(x, f);
            }
        }
        ExprKind::StructLit { fields, rest, .. } => {
            for (_, e) in fields {
                walk_expr(e, f);
            }
            if let Some(r) = rest {
                walk_expr(r, f);
            }
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_expr(e, f);
            }
        }
        ExprKind::LetCond { scrut, .. } => walk_expr(scrut, f),
        ExprKind::Match { scrut, arms } => {
            walk_expr(scrut, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_block(body, f);
        }
        ExprKind::ForLoop { iter, body, .. } => {
            walk_expr(iter, f);
            walk_block(body, f);
        }
        ExprKind::Loop(b) | ExprKind::Block(b) => walk_block(b, f),
        ExprKind::Closure { body, .. } => walk_expr(body, f),
        ExprKind::Return(e) | ExprKind::Break(e) => {
            if let Some(e) = e {
                walk_expr(e, f);
            }
        }
        ExprKind::Range(lo, hi) => {
            if let Some(lo) = lo {
                walk_expr(lo, f);
            }
            if let Some(hi) = hi {
                walk_expr(hi, f);
            }
        }
    }
}

/// Walks every expression in a block (see [`walk_expr`]).
pub fn walk_block<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    walk_expr(init, f);
                }
                if let Some(els) = &l.els {
                    walk_block(els, f);
                }
            }
            Stmt::Expr(e, _) => walk_expr(e, f),
            Stmt::Item(item) => walk_item_exprs(item, f),
        }
    }
}

/// Walks every expression under an item (nested fns, consts, impls).
pub fn walk_item_exprs<'a>(item: &'a Item, f: &mut dyn FnMut(&'a Expr)) {
    match &item.kind {
        ItemKind::Fn(func) => {
            if let Some(body) = &func.body {
                walk_block(body, f);
            }
        }
        ItemKind::Impl(imp) => {
            for it in &imp.items {
                walk_item_exprs(it, f);
            }
        }
        ItemKind::Trait(tr) => {
            for it in &tr.items {
                walk_item_exprs(it, f);
            }
        }
        ItemKind::Mod(m) => {
            if let Some(items) = &m.items {
                for it in items {
                    walk_item_exprs(it, f);
                }
            }
        }
        ItemKind::Const(c) => {
            if let Some(init) = &c.init {
                walk_expr(init, f);
            }
        }
        ItemKind::Use(_)
        | ItemKind::Struct(_)
        | ItemKind::Enum(_)
        | ItemKind::TypeAlias(_)
        | ItemKind::MacroDef(_)
        | ItemKind::Verbatim => {}
    }
}
