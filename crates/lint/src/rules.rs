//! The D-series/A-series rule catalog and its token-level implementations.
//!
//! Every rule targets a hazard this workspace has actually shipped code
//! against (see `docs/lint-rules.md` for the catalog with trigger
//! examples):
//!
//! * **D01** — unsorted iteration over a `HashMap`/`HashSet` feeding
//!   serialization or accumulation: the byte-identity killer for the sweep
//!   and explore JSONL reports.
//! * **D02** — `std::time::Instant`/`SystemTime` outside
//!   `lpmem-util::bench`: wall-clock time must never reach a scored path.
//! * **D03** — seed construction by raw arithmetic instead of
//!   `SplitMix64::derive`: ad-hoc `seed ^ c` schemes decorrelate poorly
//!   and cannot express coordinate paths.
//! * **D04** — `unwrap()` / `expect("")` in library (non-test, non-bin)
//!   code: invariants must be named or typed.
//! * **D05** — float accumulation (`sum::<f64>()`) over an unordered hash
//!   iteration: float addition does not commute bit-for-bit.
//! * **A01** — raw narrowing `as` casts inside the accounting crates
//!   (`lpmem-energy`, `lpmem-fault`, `lpmem-cmp`): silent truncation
//!   corrupts exact-energy claims, fault-campaign counters, and shared-LLC
//!   outcome counters alike.
//!
//! The implementations are deliberately heuristic: token patterns plus
//! file-local binding tracking, no type inference. False positives are the
//! design — the reasoned suppression (`// lpmem-lint: allow(D01, reason =
//! "…")`) is how a human records *why* a flagged site is sound, which is
//! the auditability the DATE 2003 reproductions need.

use std::collections::BTreeSet;

use crate::diag::Diag;
use crate::lexer::{Token, TokenKind};

/// One catalog entry.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule identifier (`D01`).
    pub id: &'static str,
    /// One-line summary shown by `lint --list`.
    pub summary: &'static str,
}

/// The full rule catalog, in identifier order.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        id: "D01",
        summary: "unsorted HashMap/HashSet iteration feeding emission or accumulation",
    },
    RuleInfo {
        id: "D02",
        summary: "Instant/SystemTime outside lpmem-util::bench",
    },
    RuleInfo {
        id: "D03",
        summary: "seed construction by raw arithmetic instead of SplitMix64::derive",
    },
    RuleInfo {
        id: "D04",
        summary: "unwrap()/expect(\"\") in library (non-test, non-bin) code",
    },
    RuleInfo {
        id: "D05",
        summary: "float accumulation over unordered hash iteration",
    },
    RuleInfo {
        id: "A01",
        summary: "narrowing `as` cast inside accounting code (energy, fault, cmp)",
    },
    RuleInfo {
        id: "A02",
        summary: "unchecked integer product absorbed by an accounting accumulator",
    },
    RuleInfo {
        id: "T01",
        summary: "nondeterministic value flows into an emission path (taint analysis)",
    },
    RuleInfo {
        id: "T02",
        summary: "hash-order/worker taint returned across a crate API boundary",
    },
    RuleInfo {
        id: "L00",
        summary: "malformed lpmem-lint suppression comment",
    },
    RuleInfo {
        id: "L01",
        summary: "suppression that suppresses nothing",
    },
    RuleInfo {
        id: "L02",
        summary: "obsolete suppression: semantic analysis proves the site safe",
    },
];

/// `true` when `id` names a suppressible source rule (not a meta-rule).
pub fn is_source_rule(id: &str) -> bool {
    CATALOG.iter().any(|r| r.id == id && !r.id.starts_with('L'))
}

/// Hash-container iteration methods whose order is arbitrary.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Tokens that make an iteration statement order-insensitive: an explicit
/// sort, a collect into an ordered container, or a terminal fold whose
/// result cannot depend on visit order.
const ORDER_SAFE: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "count",
    "len",
    "any",
    "all",
    "contains",
    "contains_key",
    "is_empty",
    "min",
    "max",
];

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileContext<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel_path: &'a str,
    /// Code tokens of the file.
    pub tokens: &'a [Token],
    /// Library code: D04 applies. False for tests/benches/examples/bins.
    pub is_library: bool,
    /// Inside an accounting crate (energy, fault, cmp): A01 applies.
    pub is_accounting: bool,
    /// The sanctioned wall-clock module (`util/src/bench.rs`): D02 exempt.
    pub exempt_time: bool,
    /// The PRNG implementation itself (`util/src/rng.rs`): D03 exempt.
    pub exempt_seed: bool,
    /// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items.
    test_regions: Vec<(u32, u32)>,
    /// File-local identifiers bound to a `HashMap`/`HashSet`.
    hash_vars: BTreeSet<String>,
}

impl<'a> FileContext<'a> {
    /// Classifies `rel_path` and precomputes test regions and hash
    /// bindings from the token stream.
    pub fn new(rel_path: &'a str, tokens: &'a [Token]) -> Self {
        let segments: Vec<&str> = rel_path.split('/').collect();
        let file = segments.last().copied().unwrap_or("");
        let non_library = segments
            .iter()
            .any(|s| matches!(*s, "tests" | "benches" | "examples" | "bin"))
            || matches!(file, "main.rs" | "build.rs");
        FileContext {
            rel_path,
            tokens,
            is_library: !non_library,
            is_accounting: segments
                .iter()
                .any(|s| s.contains("energy") || s.contains("fault") || s.contains("cmp")),
            exempt_time: rel_path.ends_with("util/src/bench.rs"),
            exempt_seed: rel_path.ends_with("util/src/rng.rs"),
            test_regions: test_regions(tokens),
            hash_vars: collect_hash_vars(tokens),
        }
    }

    /// `true` when `line` is inside a `#[cfg(test)]`/`#[test]` item.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// The hash-container bindings found in this file (for tests).
    pub fn hash_vars(&self) -> &BTreeSet<String> {
        &self.hash_vars
    }

    fn diag(&self, line: u32, rule: &'static str, message: String) -> Diag {
        Diag {
            path: self.rel_path.to_string(),
            line,
            rule,
            message,
        }
    }
}

/// Runs every source rule (optionally restricted to `filter`) over a file.
pub fn run_rules(ctx: &FileContext<'_>, filter: Option<&BTreeSet<String>>) -> Vec<Diag> {
    let on = |id: &str| filter.is_none_or(|f| f.contains(id));
    let mut diags = Vec::new();
    if on("D01") || on("D05") {
        diags.extend(d01_d05(ctx, on("D01"), on("D05")));
    }
    if on("D02") {
        diags.extend(d02(ctx));
    }
    if on("D03") {
        diags.extend(d03(ctx));
    }
    if on("D04") {
        diags.extend(d04(ctx));
    }
    if on("A01") {
        diags.extend(a01(ctx));
    }
    diags.sort();
    diags.dedup();
    diags
}

/// Finds `#[cfg(test)]` / `#[test]` item regions as line ranges.
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Attr || !attr_mentions_test(&t.text) {
            continue;
        }
        // First `{` after the attribute opens the item; match it.
        let Some(open) = tokens[i..].iter().position(|t| t.is_punct('{')) else {
            continue;
        };
        let open = i + open;
        let mut depth = 0i64;
        let mut close_line = tokens[tokens.len() - 1].line;
        for t in &tokens[open..] {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close_line = t.line;
                    break;
                }
            }
        }
        regions.push((t.line, close_line));
    }
    regions
}

/// `true` when an attribute's text contains `test` as a whole word
/// (`#[cfg(test)]`, `#[test]` — but not `#[cfg(feature = "latest")]`).
fn attr_mentions_test(attr: &str) -> bool {
    let bytes = attr.as_bytes();
    let is_word = |b: u8| b == b'_' || b.is_ascii_alphanumeric();
    attr.match_indices("test").any(|(at, _)| {
        let before_ok = at == 0 || !is_word(bytes[at - 1]);
        let after = at + "test".len();
        let after_ok = after >= bytes.len() || !is_word(bytes[after]);
        before_ok && after_ok
    })
}

/// Collects identifiers bound to `HashMap`/`HashSet`: `let` bindings with
/// constructor right-hand sides, and `name: …HashMap<…>` annotations
/// (fields, parameters, annotated lets).
fn collect_hash_vars(tokens: &[Token]) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if let Some(name) = binding_name_before(tokens, i) {
            vars.insert(name);
        }
    }
    vars
}

/// Walks backwards from a `HashMap`/`HashSet` token to the identifier it
/// is bound to, if the surrounding tokens look like a binding.
fn binding_name_before(tokens: &[Token], at: usize) -> Option<String> {
    let mut j = at;
    let mut steps = 0;
    while j > 0 && steps < 16 {
        j -= 1;
        steps += 1;
        let t = &tokens[j];
        match t.kind {
            // Type-path elements: keep walking.
            TokenKind::Ident | TokenKind::Lifetime | TokenKind::Number => continue,
            TokenKind::Punct => {
                let c = t.text.chars().next()?;
                match c {
                    '<' | '>' | '&' | '(' | ')' | ',' => continue,
                    ':' => {
                        // `::` is a path separator; skip the pair.
                        if j > 0 && tokens[j - 1].is_punct(':') {
                            j -= 1;
                            continue;
                        }
                        // Annotation: the name sits just before the colon.
                        let name = &tokens[j.checked_sub(1)?];
                        if name.kind == TokenKind::Ident && !is_keyword(&name.text) {
                            return Some(name.text.clone());
                        }
                        return None;
                    }
                    '=' => {
                        // `let [mut] name = HashMap::new()` or a plain
                        // statement-initial `name = HashMap::new()`.
                        let name = &tokens[j.checked_sub(1)?];
                        if name.kind != TokenKind::Ident || is_keyword(&name.text) {
                            return None;
                        }
                        let before = j.checked_sub(2).map(|k| &tokens[k]);
                        let anchored = match before {
                            None => true,
                            Some(b) => {
                                b.is_ident("let")
                                    || b.is_ident("mut")
                                    || b.is_punct(';')
                                    || b.is_punct('{')
                                    || b.is_punct('}')
                            }
                        };
                        return anchored.then(|| name.text.clone());
                    }
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
    None
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "pub"
            | "fn"
            | "impl"
            | "struct"
            | "enum"
            | "match"
            | "if"
            | "else"
            | "for"
            | "in"
            | "while"
            | "return"
            | "use"
            | "mod"
            | "where"
            | "as"
            | "ref"
    )
}

/// D01 + D05: iteration over a file-local hash container that neither
/// sorts nor ends in an order-insensitive fold.
fn d01_d05(ctx: &FileContext<'_>, emit_d01: bool, emit_d05: bool) -> Vec<Diag> {
    let tokens = ctx.tokens;
    let mut diags = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        // Pattern a: `name.iter()` / `name.values()` / … on a hash binding.
        let method_site = t.kind == TokenKind::Ident
            && ctx.hash_vars.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.iter().any(|im| m.is_ident(im)))
            && tokens.get(i + 3).is_some_and(|p| p.is_punct('('));
        if method_site {
            let stmt = statement_span(tokens, i);
            match classify_statement(tokens, stmt) {
                StatementOrder::Safe => {}
                StatementOrder::FloatSum if emit_d05 => diags.push(ctx.diag(
                    t.line,
                    "D05",
                    format!(
                        "float accumulation over unordered iteration of `{}`; \
                         sort the keys before summing",
                        t.text
                    ),
                )),
                StatementOrder::FloatSum => {}
                StatementOrder::Unordered if emit_d01 => diags.push(ctx.diag(
                    t.line,
                    "D01",
                    format!(
                        "unsorted iteration over hash container `{}`; sort before \
                         emitting or folding (or use a BTreeMap/BTreeSet)",
                        t.text
                    ),
                )),
                StatementOrder::Unordered => {}
            }
            continue;
        }
        // Pattern b: `for pat in [&][mut] name {` over a hash binding.
        if t.is_ident("for") && emit_d01 {
            if let Some(name) = for_loop_over_hash(ctx, tokens, i) {
                diags.push(ctx.diag(
                    t.line,
                    "D01",
                    format!(
                        "for-loop over hash container `{name}` visits entries in \
                         arbitrary order; iterate sorted keys instead"
                    ),
                ));
            }
        }
    }
    diags
}

/// How a hash-iteration statement treats visit order.
enum StatementOrder {
    /// Sorted, collected into an ordered container, or order-free fold.
    Safe,
    /// Ends in a float sum: order reaches the bits of the result.
    FloatSum,
    /// Order leaks and nothing re-establishes it.
    Unordered,
}

/// The token range of the statement containing index `at`, plus a small
/// look-ahead window after it (for the `let v = …collect(); v.sort();`
/// idiom).
fn statement_span(tokens: &[Token], at: usize) -> (usize, usize) {
    // Backwards to the previous `;`, `{`, or `}` at relative depth zero.
    let mut start = at;
    let mut depth = 0i64;
    while start > 0 {
        let t = &tokens[start - 1];
        let c = t.text.chars().next();
        match (t.kind, c) {
            (TokenKind::Punct, Some(')' | ']' | '}')) => depth += 1,
            (TokenKind::Punct, Some('(' | '[' | '{')) => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            (TokenKind::Punct, Some(';')) if depth == 0 => break,
            _ => {}
        }
        start -= 1;
    }
    // Forwards to the closing `;` (or the end of the enclosing block).
    let mut end = at;
    let mut depth = 0i64;
    while end < tokens.len() {
        let t = &tokens[end];
        let c = t.text.chars().next();
        match (t.kind, c) {
            (TokenKind::Punct, Some('(' | '[' | '{')) => depth += 1,
            (TokenKind::Punct, Some(')' | ']' | '}')) => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            (TokenKind::Punct, Some(';')) if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    (start, end)
}

/// Classifies one iteration statement, looking ahead for the
/// collect-then-sort idiom.
fn classify_statement(tokens: &[Token], (start, end): (usize, usize)) -> StatementOrder {
    let stmt = &tokens[start..end.min(tokens.len())];
    let has = |name: &str| stmt.iter().any(|t| t.is_ident(name));
    let float_sum = (has("sum") || has("product")) && (has("f64") || has("f32"));
    if float_sum {
        return StatementOrder::FloatSum;
    }
    if ORDER_SAFE.iter().any(|s| has(s)) {
        return StatementOrder::Safe;
    }
    // Integer folds are order-free; `sum` with no float type in sight is
    // accepted (float sums are written with an explicit `::<f64>` turbofish
    // or annotation everywhere in this workspace).
    if has("sum") || has("product") {
        return StatementOrder::Safe;
    }
    // Look-ahead: `let [mut] v = …collect…;` followed shortly by `v.sort…`.
    if has("collect") && stmt.first().is_some_and(|t| t.is_ident("let")) {
        let mut name_at = 1;
        if stmt.get(name_at).is_some_and(|t| t.is_ident("mut")) {
            name_at += 1;
        }
        if let Some(name) = stmt.get(name_at).filter(|t| t.kind == TokenKind::Ident) {
            let look = &tokens[end..tokens.len().min(end + 48)];
            for (k, t) in look.iter().enumerate() {
                if t.is_ident(&name.text)
                    && look.get(k + 1).is_some_and(|n| n.is_punct('.'))
                    && look
                        .get(k + 2)
                        .is_some_and(|m| m.kind == TokenKind::Ident && m.text.starts_with("sort"))
                {
                    return StatementOrder::Safe;
                }
            }
        }
    }
    StatementOrder::Unordered
}

/// Detects `for pat in [&][mut] name {` over a hash binding; returns the
/// binding name.
fn for_loop_over_hash(ctx: &FileContext<'_>, tokens: &[Token], at: usize) -> Option<String> {
    // Find `in` at depth zero before the loop body opens.
    let mut depth = 0i64;
    let mut j = at + 1;
    let in_at = loop {
        let t = tokens.get(j)?;
        let c = t.text.chars().next();
        match (t.kind, c) {
            (TokenKind::Punct, Some('(' | '[')) => depth += 1,
            (TokenKind::Punct, Some(')' | ']')) => depth -= 1,
            (TokenKind::Punct, Some('{')) if depth == 0 => return None,
            (TokenKind::Ident, _) if depth == 0 && t.text == "in" => break j,
            _ => {}
        }
        j += 1;
    };
    // Between `in` and `{`: only `&`/`mut` plus exactly one identifier,
    // which must be a hash binding (method iterations are pattern a).
    let mut name: Option<&str> = None;
    let mut k = in_at + 1;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct('{') {
            break;
        }
        match t.kind {
            TokenKind::Punct if t.is_punct('&') => {}
            TokenKind::Ident if t.text == "mut" => {}
            TokenKind::Ident if name.is_none() => name = Some(&t.text),
            _ => return None,
        }
        k += 1;
    }
    let name = name?;
    ctx.hash_vars.contains(name).then(|| name.to_string())
}

/// D02: wall-clock time sources outside the sanctioned bench timer.
fn d02(ctx: &FileContext<'_>) -> Vec<Diag> {
    if ctx.exempt_time || ctx.rel_path.split('/').any(|s| s == "benches") {
        return Vec::new();
    }
    ctx.tokens
        .iter()
        .filter(|t| t.is_ident("Instant") || t.is_ident("SystemTime"))
        .map(|t| {
            ctx.diag(
                t.line,
                "D02",
                format!(
                    "`{}` outside lpmem-util::bench: wall-clock time must stay \
                     off scored paths",
                    t.text
                ),
            )
        })
        .collect()
}

/// D03: arithmetic on raw seed values.
fn d03(ctx: &FileContext<'_>) -> Vec<Diag> {
    if ctx.exempt_seed {
        return Vec::new();
    }
    let tokens = ctx.tokens;
    let mut diags = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !t.text.to_ascii_lowercase().contains("seed")
            || !t.text.starts_with(|c: char| c.is_lowercase() || c == '_')
        {
            continue;
        }
        let next = tokens.get(i + 1);
        let after = tokens.get(i + 2);
        let arith_next = match next {
            Some(n) if n.kind == TokenKind::Punct => match n.text.chars().next() {
                Some('+' | '^' | '*' | '%') => true,
                Some('-') => !after.is_some_and(|a| a.is_punct('>')),
                Some('<') => after.is_some_and(|a| a.is_punct('<')),
                Some('>') => after.is_some_and(|a| a.is_punct('>')),
                _ => false,
            },
            _ => false,
        };
        let wrapping_next = next.is_some_and(|n| n.is_punct('.'))
            && after.is_some_and(|a| {
                a.kind == TokenKind::Ident
                    && (a.text.starts_with("wrapping_")
                        || a.text.starts_with("rotate_")
                        || a.text.starts_with("overflowing_"))
            });
        let prev = i.checked_sub(1).map(|k| &tokens[k]);
        let arith_prev = prev.is_some_and(|p| {
            p.kind == TokenKind::Punct
                && matches!(p.text.chars().next(), Some('+' | '^' | '*' | '%'))
        });
        if arith_next || wrapping_next || arith_prev {
            diags.push(ctx.diag(
                t.line,
                "D03",
                format!(
                    "arithmetic on raw seed `{}`; derive child seeds with \
                     SplitMix64::derive(base, path)",
                    t.text
                ),
            ));
        }
    }
    diags
}

/// D04: `unwrap()` and `expect("")` in library code outside test regions.
fn d04(ctx: &FileContext<'_>) -> Vec<Diag> {
    if !ctx.is_library {
        return Vec::new();
    }
    let tokens = ctx.tokens;
    let mut diags = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if ctx.in_test_code(t.line) {
            continue;
        }
        let preceded_by_dot = i > 0 && tokens[i - 1].is_punct('.');
        if !preceded_by_dot {
            continue;
        }
        if t.is_ident("unwrap")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(')'))
        {
            diags.push(
                ctx.diag(
                    t.line,
                    "D04",
                    "`unwrap()` in library code; return a typed error or use \
                 expect(\"<invariant>\")"
                        .to_string(),
                ),
            );
        } else if t.is_ident("expect")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 2).is_some_and(|n| {
                n.kind == TokenKind::Str && matches!(n.text.as_str(), "\"\"" | "r\"\"")
            })
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            diags.push(
                ctx.diag(
                    t.line,
                    "D04",
                    "`expect(\"\")` carries no invariant; state why the value must \
                 exist"
                        .to_string(),
                ),
            );
        }
    }
    diags
}

/// A01: narrowing `as` casts in accounting code (energy totals, fault
/// counters).
fn a01(ctx: &FileContext<'_>) -> Vec<Diag> {
    if !ctx.is_accounting || !ctx.is_library {
        return Vec::new();
    }
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
    let tokens = ctx.tokens;
    let mut diags = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") || ctx.in_test_code(t.line) {
            continue;
        }
        if let Some(ty) = tokens.get(i + 1) {
            if ty.kind == TokenKind::Ident && NARROW.contains(&ty.text.as_str()) {
                diags.push(ctx.diag(
                    t.line,
                    "A01",
                    format!(
                        "narrowing `as {}` cast in accounting code; use a \
                         checked conversion or widen the accumulator",
                        ty.text
                    ),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags_for(path: &str, src: &str) -> Vec<Diag> {
        let out = lex(src);
        let ctx = FileContext::new(path, &out.tokens);
        run_rules(&ctx, None)
    }

    fn rules_of(diags: &[Diag]) -> Vec<&str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d01_flags_unsorted_iteration_and_for_loops() {
        let src = r#"
            use std::collections::HashMap;
            fn emit(m: &HashMap<String, u64>) -> String {
                let mut out = String::new();
                for (k, v) in m {
                    out.push_str(&format!("{k}={v}"));
                }
                let pairs: Vec<_> = m.iter().collect();
                out.push_str(&format!("{}", pairs.len()));
                out
            }
        "#;
        let d = diags_for("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&d), vec!["D01", "D01"]);
    }

    #[test]
    fn d01_accepts_sorted_and_order_free_uses() {
        let src = r#"
            use std::collections::HashMap;
            fn ok(m: &HashMap<u64, u64>) -> (usize, u64, Vec<u64>) {
                let n = m.keys().count();
                let total: u64 = m.values().sum();
                let mut ks: Vec<u64> = m.keys().copied().collect();
                ks.sort_unstable();
                (n, total, ks)
            }
        "#;
        assert!(diags_for("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d05_flags_float_sums_over_hash_iteration() {
        let src = r#"
            use std::collections::HashMap;
            fn bad(m: &HashMap<u64, f64>) -> f64 {
                m.values().sum::<f64>()
            }
        "#;
        let d = diags_for("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&d), vec!["D05"]);
    }

    #[test]
    fn d02_fires_everywhere_but_the_bench_timer() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_of(&diags_for("crates/x/src/lib.rs", src)),
            vec!["D02", "D02"]
        );
        assert!(diags_for("crates/util/src/bench.rs", src).is_empty());
        assert!(diags_for("crates/x/benches/b.rs", src).is_empty());
    }

    #[test]
    fn d03_flags_seed_arithmetic_but_not_derive() {
        let bad = "fn f(seed: u64) -> u64 { seed ^ 0x9e37 }";
        assert_eq!(
            rules_of(&diags_for("crates/x/src/lib.rs", bad)),
            vec!["D03"]
        );
        let shifted = "fn f(seed: u64) -> u64 { seed << 2 }";
        assert_eq!(
            rules_of(&diags_for("crates/x/src/lib.rs", shifted)),
            vec!["D03"]
        );
        let good = "fn f(seed: u64) -> u64 { SplitMix64::derive(seed, &[1]) }";
        assert!(diags_for("crates/x/src/lib.rs", good).is_empty());
        // Type-position idents (`Seed`) and `->` arrows never trigger.
        let typey = "fn f<S: Seed + Clone>(s: S) -> u64 { 0 }";
        assert!(diags_for("crates/x/src/lib.rs", typey).is_empty());
        // The PRNG implementation itself is exempt.
        assert!(diags_for("crates/util/src/rng.rs", bad).is_empty());
    }

    #[test]
    fn d04_distinguishes_library_test_and_bin_code() {
        let src = r#"
            fn lib_code(v: Option<u32>) -> u32 { v.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        let d = diags_for("crates/x/src/lib.rs", src);
        assert_eq!(rules_of(&d), vec!["D04"]);
        assert_eq!(d[0].line, 2);
        assert!(diags_for("crates/x/src/bin/tool.rs", src).is_empty());
        assert!(diags_for("crates/x/tests/t.rs", src).is_empty());
    }

    #[test]
    fn d04_flags_empty_expect_only() {
        let empty = r#"fn f(v: Option<u32>) -> u32 { v.expect("") }"#;
        assert_eq!(
            rules_of(&diags_for("crates/x/src/lib.rs", empty)),
            vec!["D04"]
        );
        let named = r#"fn f(v: Option<u32>) -> u32 { v.expect("v is validated above") }"#;
        assert!(diags_for("crates/x/src/lib.rs", named).is_empty());
        // `unwrap_or` family is not `unwrap`.
        let or = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }";
        assert!(diags_for("crates/x/src/lib.rs", or).is_empty());
    }

    #[test]
    fn a01_fires_only_in_accounting_library_code() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(
            rules_of(&diags_for("crates/energy/src/sram.rs", src)),
            vec!["A01"]
        );
        // The fault crate's campaign counters are accounting too.
        assert_eq!(
            rules_of(&diags_for("crates/fault/src/campaign.rs", src)),
            vec!["A01"]
        );
        // As are the CMP crate's LLC counters and the CMP flow wiring.
        assert_eq!(
            rules_of(&diags_for("crates/cmp/src/sim.rs", src)),
            vec!["A01"]
        );
        assert_eq!(
            rules_of(&diags_for("crates/core/src/flows/cmp.rs", src)),
            vec!["A01"]
        );
        assert!(diags_for("crates/mem/src/cache.rs", src).is_empty());
        // "cmp" matches the path segment, not "compress".
        assert!(diags_for("crates/compress/src/diff.rs", src).is_empty());
        let widen = "fn f(x: u32) -> u64 { x as u64 }";
        assert!(diags_for("crates/energy/src/sram.rs", widen).is_empty());
        assert!(diags_for("crates/fault/src/codec.rs", widen).is_empty());
    }

    #[test]
    fn comments_strings_and_attrs_never_trigger() {
        let src = r#"
            // seed ^ 1, Instant::now(), map.unwrap()
            /* let x = HashMap::new(); x.iter() */
            #[doc = "Instant seed ^ 2 unwrap()"]
            fn quiet() -> &'static str { "Instant seed ^ 3 .unwrap()" }
        "#;
        assert!(diags_for("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hash_binding_detection_covers_the_workspace_idioms() {
        let src = r#"
            use std::collections::{HashMap, HashSet};
            struct S { part_cache: Mutex<HashMap<u64, f64>> }
            fn f(weights: &HashMap<(usize, usize), u64>) {
                let mut seen: HashSet<String> = HashSet::new();
                let mut fresh = HashMap::new();
                let collected: Vec<(u64, u64)> = pairs.iter().copied().collect::<HashMap<_, _>>().into_iter().collect();
            }
        "#;
        let out = lex(src);
        let ctx = FileContext::new("crates/x/src/lib.rs", &out.tokens);
        let vars: Vec<&str> = ctx.hash_vars().iter().map(|s| s.as_str()).collect();
        assert_eq!(vars, vec!["fresh", "part_cache", "seen", "weights"]);
    }
}
