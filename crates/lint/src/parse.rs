//! Recursive-descent parser from the [`crate::lexer`] token stream to the
//! spanned AST in [`crate::ast`].
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never loop.** Every index goes through `get`; every
//!    loop either consumes a token or breaks. Malformed input degrades to
//!    [`ExprKind::Unknown`] / [`ItemKind::Verbatim`] nodes (counted in
//!    [`SourceFile::recovered`]) instead of an error — a linter must keep
//!    scanning whatever it is given, and the parser property test feeds it
//!    truncated files on purpose.
//! 2. **Exact spans.** Every node's span is the byte range of the tokens
//!    it consumed, so diagnostics anchor precisely and the span round-trip
//!    property holds even through recovery.
//! 3. **Cover the workspace, degrade elsewhere.** The grammar models the
//!    Rust subset this repo writes — items, impls, traits, fn bodies, the
//!    full expression grammar with match/closures/ranges, `let else`,
//!    labels, turbofish. Generic parameter lists, where-clauses and bounds
//!    are *skipped* (balanced), not modeled: the analyses never need them.
//!
//! The lexer emits single-character punctuation; multi-character operators
//! (`::`, `->`, `<<`, `+=`, `=>`, `..`) are reassembled here via byte
//! adjacency ([`crate::lexer::Token::touches`]), which is also what keeps
//! `a < -b` distinct from `a <- b`-style misreads.

use crate::ast::*;
use crate::lexer::{lex, Token, TokenKind};

/// Parses one source file. Infallible: syntax the grammar does not model
/// becomes `Unknown`/`Verbatim` nodes and bumps `recovered`.
pub fn parse_file(src: &str) -> SourceFile {
    let toks = lex(src).tokens;
    let mut p = Parser {
        toks,
        pos: 0,
        recovered: 0,
        recovered_lines: Vec::new(),
    };
    let mut items = Vec::new();
    while p.peek().is_some() {
        let before = p.pos;
        let cfg_test = p.skip_attrs();
        if p.peek().is_none() {
            break;
        }
        items.push(p.parse_item(cfg_test));
        if p.pos == before {
            // Guaranteed progress even if an item parse went nowhere.
            p.bump();
            p.recovered += 1;
        }
    }
    SourceFile {
        items,
        recovered: p.recovered,
        recovered_lines: p.recovered_lines,
    }
}

/// Identifiers that can never be pattern bindings or path heads.
const PAT_KEYWORDS: &[&str] = &[
    "ref", "mut", "box", "if", "in", "as", "else", "true", "false", "self", "Self", "crate",
    "super", "move",
];

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    recovered: u32,
    recovered_lines: Vec<u32>,
}

fn tok_span(t: &Token) -> Span {
    Span {
        lo: t.lo,
        hi: t.hi,
        line: t.line,
    }
}

impl Parser {
    // ── token plumbing ───────────────────────────────────────────────

    fn t(&self, n: usize) -> Option<&Token> {
        self.toks.get(self.pos + n)
    }

    fn peek(&self) -> Option<&Token> {
        self.t(0)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Records a recovery (with its source line, for diagnosing which
    /// construct the grammar failed to model).
    fn recover_here(&mut self) {
        self.recovered += 1;
        if self.recovered_lines.len() < 64 {
            let line = self.cur_span().line;
            self.recovered_lines.push(line);
        }
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().map(|t| t.is_punct(c)).unwrap_or(false)
    }

    fn at_ident(&self, name: &str) -> bool {
        self.peek().map(|t| t.is_ident(name)).unwrap_or(false)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `true` when the tokens at the cursor spell the multi-character
    /// operator `op` with no intervening bytes.
    fn at_op(&self, op: &str) -> bool {
        let mut prev: Option<&Token> = None;
        for (i, c) in op.chars().enumerate() {
            match self.t(i) {
                Some(t) if t.is_punct(c) => {
                    if let Some(p) = prev {
                        if !p.touches(t) {
                            return false;
                        }
                    }
                    prev = Some(t);
                }
                _ => return false,
            }
        }
        true
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            for _ in op.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Span at the cursor (or an empty span at end of input).
    fn cur_span(&self) -> Span {
        match self.peek() {
            Some(t) => tok_span(t),
            None => {
                let hi = self.toks.last().map(|t| t.hi).unwrap_or(0);
                let line = self.toks.last().map(|t| t.line).unwrap_or(0);
                Span { lo: hi, hi, line }
            }
        }
    }

    /// Span of the last consumed token (or the cursor span).
    fn prev_span(&self) -> Span {
        if self.pos == 0 {
            return self.cur_span();
        }
        match self.toks.get(self.pos - 1) {
            Some(t) => tok_span(t),
            None => self.cur_span(),
        }
    }

    /// Skips leading attribute tokens; `true` if any mentions `test`.
    fn skip_attrs(&mut self) -> bool {
        let mut test = false;
        while let Some(t) = self.peek() {
            if t.kind != TokenKind::Attr {
                break;
            }
            if t.text.contains("test") {
                test = true;
            }
            self.bump();
        }
        test
    }

    /// Consumes a balanced `(…)`/`[…]`/`{…}` region starting at the
    /// cursor's opening delimiter. No-op if not at one.
    fn skip_balanced(&mut self) {
        let open = match self.peek() {
            Some(t) if t.kind == TokenKind::Punct => match t.text.chars().next() {
                Some(c @ ('(' | '[' | '{')) => c,
                _ => return,
            },
            _ => return,
        };
        let close = match open {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        self.bump();
        let mut depth = 1u32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if t.kind == TokenKind::Punct {
                // Other delimiter families nest independently; a stray
                // mismatched closer inside is tolerated (recovery).
            }
            self.bump();
        }
    }

    /// Consumes a balanced `<…>` generic region (cursor on `<`). Handles
    /// `->` inside fn-pointer bounds and `>>` closing two levels.
    fn skip_generics(&mut self) {
        if !self.at_punct('<') {
            return;
        }
        self.bump();
        let mut angle = 1i32;
        let mut paren = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
                if paren < 0 {
                    return; // enclosing paren closes first: bail out
                }
            } else if t.is_punct('-') && self.at_op("->") {
                self.bump();
                self.bump();
                continue;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
                if angle == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    // ── types ────────────────────────────────────────────────────────

    /// Scans a type as a balanced token run, stopping at depth 0 on any
    /// of `stop_puncts` or `stop_idents`. Returns the token index range.
    fn scan_ty_range(&mut self, stop_puncts: &[char], stop_idents: &[&str]) -> (usize, usize) {
        let start = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 {
                if t.kind == TokenKind::Punct {
                    let c = t.text.chars().next().unwrap_or(' ');
                    if stop_puncts.contains(&c) {
                        // `->` pairs are part of fn-pointer types, never
                        // a stop; `::` is a path separator, not a `:`.
                        let pair = (c == '-' && self.at_op("->")) || (c == ':' && self.at_op("::"));
                        if !pair {
                            break;
                        }
                    }
                }
                if t.kind == TokenKind::Ident && stop_idents.iter().any(|k| t.text == *k) {
                    break;
                }
            }
            if t.is_punct('-') && self.at_op("->") {
                self.bump();
                self.bump();
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') || t.is_punct('}') {
                if depth == 0 {
                    break; // the enclosing context's closer
                }
                depth -= 1;
            }
            self.bump();
        }
        (start, self.pos)
    }

    /// Parses a type (see [`scan_ty_range`][Self::scan_ty_range]).
    fn parse_ty(&mut self, stop_puncts: &[char], stop_idents: &[&str]) -> Ty {
        let (start, end) = self.scan_ty_range(stop_puncts, stop_idents);
        ty_from_tokens(&self.toks[start..end])
    }

    // ── patterns ─────────────────────────────────────────────────────

    /// Scans a pattern as a balanced token run, collecting bound names.
    ///
    /// `stop_puncts` / `stop_idents` apply at depth 0 only; `:` stops only
    /// when not part of `::`, `=` only when not part of `..=` or `=>`
    /// (callers that want to stop *at* `=>` include `=` in the stops and
    /// the `=>` form is detected here).
    fn parse_pat(&mut self, stop_puncts: &[char], stop_idents: &[&str]) -> Pat {
        let start_span = self.cur_span();
        let mut bindings = Vec::new();
        let mut depth = 0i32;
        let mut last_hi = start_span;
        let mut prev_pathsep = false;
        let mut empty = true;
        while let Some(t) = self.peek() {
            // Path separators pass through whole (and mark the next ident
            // as a path segment, never a binding).
            if self.at_op("::") {
                self.bump();
                self.bump();
                prev_pathsep = true;
                empty = false;
                last_hi = self.prev_span();
                continue;
            }
            if depth == 0 {
                if t.kind == TokenKind::Punct {
                    let c = t.text.chars().next().unwrap_or(' ');
                    if stop_puncts.contains(&c) {
                        // `..=`'s `=` is part of a range pattern, not a
                        // stop; a bare `=` (or the `=` of `=>`) stops.
                        let is_range_eq = c == '='
                            && self
                                .toks
                                .get(self.pos.wrapping_sub(1))
                                .map(|p| p.is_punct('.'))
                                .unwrap_or(false);
                        if !is_range_eq {
                            break;
                        }
                    }
                }
                if t.kind == TokenKind::Ident && stop_idents.iter().any(|k| t.text == *k) {
                    break;
                }
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            if t.kind == TokenKind::Ident {
                let name = t.text.clone();
                let lower = name
                    .chars()
                    .next()
                    .map(|c| c.is_lowercase() || c == '_')
                    .unwrap_or(false);
                let next_blocks = {
                    // Paths (`x::`), calls (`x(`), struct paths (`x {`),
                    // macros (`x!`), and — inside a struct pattern —
                    // field names (`x:`) don't bind.
                    let path = self.at_op_at(1, "::");
                    match self.t(1) {
                        Some(n) => {
                            path || (n.is_punct(':') && depth > 0)
                                || n.is_punct('(')
                                || n.is_punct('{')
                                || n.is_punct('!')
                        }
                        None => false,
                    }
                };
                if lower
                    && name != "_"
                    && !prev_pathsep
                    && !next_blocks
                    && !PAT_KEYWORDS.contains(&name.as_str())
                {
                    bindings.push(name);
                }
            }
            prev_pathsep = false;
            if let Some(t) = self.bump() {
                last_hi = tok_span(&t);
                empty = false;
            }
        }
        let span = if empty {
            Span {
                lo: start_span.lo,
                hi: start_span.lo,
                line: start_span.line,
            }
        } else {
            start_span.to(last_hi)
        };
        Pat { span, bindings }
    }

    /// `at_op` at a lookahead offset.
    fn at_op_at(&self, n: usize, op: &str) -> bool {
        let mut prev: Option<&Token> = None;
        for (i, c) in op.chars().enumerate() {
            match self.t(n + i) {
                Some(t) if t.is_punct(c) => {
                    if let Some(p) = prev {
                        if !p.touches(t) {
                            return false;
                        }
                    }
                    prev = Some(t);
                }
                _ => return false,
            }
        }
        true
    }

    // ── items ────────────────────────────────────────────────────────

    fn parse_item(&mut self, cfg_test: bool) -> Item {
        let start = self.cur_span();
        let mut vis_pub = false;
        if self.eat_ident("pub") {
            vis_pub = true;
            if self.at_punct('(') {
                self.skip_balanced(); // pub(crate), pub(super)
            }
        }
        self.eat_ident("unsafe");
        let kind = if self.at_ident("fn") {
            self.bump();
            ItemKind::Fn(Box::new(self.parse_fn()))
        } else if self.at_ident("const") || self.at_ident("static") {
            self.bump();
            if self.at_ident("fn") {
                self.bump();
                ItemKind::Fn(Box::new(self.parse_fn()))
            } else {
                self.eat_ident("mut");
                self.parse_const_rest()
            }
        } else if self.at_ident("struct") {
            self.bump();
            self.parse_struct_rest()
        } else if self.at_ident("enum") {
            self.bump();
            self.parse_enum_rest()
        } else if self.at_ident("impl") {
            self.bump();
            self.parse_impl_rest()
        } else if self.at_ident("trait") {
            self.bump();
            self.parse_trait_rest()
        } else if self.at_ident("mod") {
            self.bump();
            self.parse_mod_rest()
        } else if self.at_ident("use") {
            self.bump();
            self.parse_use_rest()
        } else if self.at_ident("type") {
            self.bump();
            let name = self.ident_or_empty();
            self.skip_to_semi();
            ItemKind::TypeAlias(name)
        } else if self.at_ident("macro_rules") {
            self.bump();
            self.eat_punct('!');
            let name = self.ident_or_empty();
            self.skip_balanced();
            self.eat_punct(';');
            ItemKind::MacroDef(name)
        } else if self.at_item_macro_invoke() {
            // Item-position macro invocation: `std::thread_local! { … }`,
            // `impl_sample_range!(u8, …);` — path, `!`, one balanced
            // delimiter. The expansion is opaque to the analyses.
            while self
                .peek()
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false)
            {
                self.bump();
                if !self.eat_op("::") {
                    break;
                }
            }
            self.eat_punct('!');
            self.skip_balanced();
            self.eat_punct(';');
            ItemKind::Verbatim
        } else {
            // extern blocks, stray tokens: recover to an item boundary.
            self.recover_here();
            self.skip_item_like();
            ItemKind::Verbatim
        };
        Item {
            span: start.to(self.prev_span()),
            vis_pub,
            cfg_test,
            kind,
        }
    }

    /// Does the cursor start an item-position macro invocation
    /// (`seg(::seg)* !` followed by a delimiter)?
    fn at_item_macro_invoke(&self) -> bool {
        let mut i = 0usize;
        loop {
            match self.t(i) {
                Some(t) if t.kind == TokenKind::Ident => i += 1,
                _ => return false,
            }
            if self.at_op_at(i, "::") {
                i += 2;
                continue;
            }
            break;
        }
        match (self.t(i), self.t(i + 1)) {
            (Some(bang), Some(delim)) => {
                bang.is_punct('!')
                    && (delim.is_punct('(') || delim.is_punct('[') || delim.is_punct('{'))
            }
            _ => false,
        }
    }

    fn ident_or_empty(&mut self) -> String {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let s = t.text.clone();
                self.bump();
                s
            }
            _ => String::new(),
        }
    }

    /// Recovery: consume through the next depth-0 `;`, or one balanced
    /// `{…}` region, whichever comes first.
    fn skip_item_like(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 {
                if t.is_punct(';') {
                    self.bump();
                    return;
                }
                if t.is_punct('{') {
                    self.skip_balanced();
                    return;
                }
                if t.is_punct('}') {
                    return; // enclosing block's closer
                }
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            }
            self.bump();
        }
    }

    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if depth == 0 && t.is_punct(';') {
                self.bump();
                return;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                if depth == 0 {
                    return;
                }
                depth -= 1;
            }
            self.bump();
        }
    }

    /// Cursor just after `fn`.
    fn parse_fn(&mut self) -> FnItem {
        let name_span = self.cur_span();
        let name = self.ident_or_empty();
        self.skip_generics();
        let mut has_self = false;
        let mut params = Vec::new();
        if self.eat_punct('(') {
            while let Some(t) = self.peek() {
                if t.is_punct(')') {
                    self.bump();
                    break;
                }
                let before = self.pos;
                self.skip_attrs();
                // Receiver forms: self / &self / &mut self / mut self /
                // &'a self, optionally `self: Ty`.
                let save = self.pos;
                self.eat_punct('&');
                if let Some(t) = self.peek() {
                    if t.kind == TokenKind::Lifetime {
                        self.bump();
                    }
                }
                self.eat_ident("mut");
                if self.eat_ident("self") {
                    has_self = true;
                    if self.eat_punct(':') {
                        self.parse_ty(&[','], &[]);
                    }
                } else {
                    self.pos = save;
                    let pat = self.parse_pat(&[':', ','], &[]);
                    let ty = if self.eat_punct(':') {
                        self.parse_ty(&[','], &[])
                    } else {
                        empty_ty()
                    };
                    params.push(Param {
                        bindings: pat.bindings,
                        ty,
                    });
                }
                self.eat_punct(',');
                if self.pos == before {
                    self.bump();
                    self.recover_here();
                }
            }
        }
        let ret = if self.eat_op("->") {
            Some(self.parse_ty(&['{', ';', ','], &["where"]))
        } else {
            None
        };
        if self.at_ident("where") {
            self.scan_ty_range(&['{', ';'], &[]);
        }
        let body = if self.at_punct('{') {
            Some(self.parse_block())
        } else {
            self.eat_punct(';');
            None
        };
        FnItem {
            name,
            name_span,
            has_self,
            params,
            ret,
            body,
        }
    }

    fn parse_const_rest(&mut self) -> ItemKind {
        let name = self.ident_or_empty();
        let ty = if self.eat_punct(':') {
            Some(self.parse_ty(&['=', ';'], &[]))
        } else {
            None
        };
        let init = if self.eat_punct('=') {
            Some(self.parse_expr(0, false))
        } else {
            None
        };
        self.eat_punct(';');
        ItemKind::Const(ConstItem { name, ty, init })
    }

    fn parse_struct_rest(&mut self) -> ItemKind {
        let name = self.ident_or_empty();
        self.skip_generics();
        if self.at_ident("where") {
            self.scan_ty_range(&['{', ';', '('], &[]);
        }
        let mut fields = Vec::new();
        if self.at_punct('(') {
            self.skip_balanced(); // tuple struct: fields untyped here
            self.eat_punct(';');
        } else if self.eat_punct('{') {
            while let Some(t) = self.peek() {
                if t.is_punct('}') {
                    self.bump();
                    break;
                }
                let before = self.pos;
                self.skip_attrs();
                if self.eat_ident("pub") && self.at_punct('(') {
                    self.skip_balanced();
                }
                let fname = self.ident_or_empty();
                let fty = if self.eat_punct(':') {
                    self.parse_ty(&[','], &[])
                } else {
                    empty_ty()
                };
                if !fname.is_empty() {
                    fields.push((fname, fty));
                }
                self.eat_punct(',');
                if self.pos == before {
                    self.bump();
                    self.recover_here();
                }
            }
        } else {
            self.eat_punct(';'); // unit struct
        }
        ItemKind::Struct(StructItem { name, fields })
    }

    fn parse_enum_rest(&mut self) -> ItemKind {
        let name = self.ident_or_empty();
        self.skip_generics();
        let mut variants = Vec::new();
        if self.eat_punct('{') {
            while let Some(t) = self.peek() {
                if t.is_punct('}') {
                    self.bump();
                    break;
                }
                let before = self.pos;
                self.skip_attrs();
                let vname = self.ident_or_empty();
                if !vname.is_empty() {
                    variants.push(vname);
                }
                if self.at_punct('(') || self.at_punct('{') {
                    self.skip_balanced();
                }
                if self.eat_punct('=') {
                    self.parse_expr(0, false); // explicit discriminant
                }
                self.eat_punct(',');
                if self.pos == before {
                    self.bump();
                    self.recover_here();
                }
            }
        } else {
            self.eat_punct(';');
        }
        ItemKind::Enum(EnumItem { name, variants })
    }

    fn parse_impl_rest(&mut self) -> ItemKind {
        self.skip_generics();
        let first = self.parse_ty(&['{'], &["for", "where"]);
        let (trait_name, ty) = if self.eat_ident("for") {
            let target = self.parse_ty(&['{'], &["where"]);
            (Some(first.head.clone()), target)
        } else {
            (None, first)
        };
        if self.at_ident("where") {
            self.scan_ty_range(&['{'], &[]);
        }
        let items = self.parse_item_list();
        ItemKind::Impl(ImplItem {
            ty_head: ty.head,
            trait_name,
            items,
        })
    }

    fn parse_trait_rest(&mut self) -> ItemKind {
        let name = self.ident_or_empty();
        self.skip_generics();
        if self.at_punct(':') && !self.at_op("::") {
            self.bump();
            self.scan_ty_range(&['{'], &["where"]);
        }
        if self.at_ident("where") {
            self.scan_ty_range(&['{'], &[]);
        }
        let items = self.parse_item_list();
        ItemKind::Trait(TraitItem { name, items })
    }

    fn parse_mod_rest(&mut self) -> ItemKind {
        let name = self.ident_or_empty();
        let items = if self.at_punct('{') {
            Some(self.parse_item_list())
        } else {
            self.eat_punct(';');
            None
        };
        ItemKind::Mod(ModItem { name, items })
    }

    /// A `{ item* }` region (impl/trait/mod bodies).
    fn parse_item_list(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        if !self.eat_punct('{') {
            return items;
        }
        while let Some(t) = self.peek() {
            if t.is_punct('}') {
                self.bump();
                break;
            }
            let before = self.pos;
            let cfg_test = self.skip_attrs();
            if self.at_punct('}') {
                continue;
            }
            items.push(self.parse_item(cfg_test));
            if self.pos == before {
                self.bump();
                self.recover_here();
            }
        }
        items
    }

    fn parse_use_rest(&mut self) -> ItemKind {
        let mut leaves = Vec::new();
        self.parse_use_tree(Vec::new(), &mut leaves);
        self.skip_to_semi();
        ItemKind::Use(UseItem { leaves })
    }

    fn parse_use_tree(&mut self, mut prefix: Vec<String>, leaves: &mut Vec<(String, Vec<String>)>) {
        loop {
            if self.at_punct('{') {
                self.bump();
                while let Some(t) = self.peek() {
                    if t.is_punct('}') {
                        self.bump();
                        return;
                    }
                    let before = self.pos;
                    self.parse_use_tree(prefix.clone(), leaves);
                    self.eat_punct(',');
                    if self.pos == before {
                        self.bump();
                        self.recover_here();
                    }
                }
                return;
            }
            if self.at_punct('*') {
                self.bump();
                let mut path = prefix.clone();
                path.push("*".to_string());
                leaves.push(("*".to_string(), path));
                return;
            }
            let seg = self.ident_or_empty();
            if seg.is_empty() {
                return;
            }
            if seg == "self" {
                let name = prefix.last().cloned().unwrap_or_default();
                leaves.push((name, prefix));
                return;
            }
            prefix.push(seg);
            if self.eat_op("::") {
                continue;
            }
            let name = if self.eat_ident("as") {
                self.ident_or_empty()
            } else {
                prefix.last().cloned().unwrap_or_default()
            };
            leaves.push((name, prefix));
            return;
        }
    }

    // ── blocks & statements ──────────────────────────────────────────

    fn parse_block(&mut self) -> Block {
        let start = self.cur_span();
        let mut stmts = Vec::new();
        if !self.eat_punct('{') {
            return Block {
                span: Span {
                    lo: start.lo,
                    hi: start.lo,
                    line: start.line,
                },
                stmts,
            };
        }
        while let Some(t) = self.peek() {
            if t.is_punct('}') {
                self.bump();
                break;
            }
            let before = self.pos;
            let cfg_test = self.skip_attrs();
            if self.at_punct('}') {
                continue;
            }
            if self.at_punct(';') {
                self.bump();
                continue;
            }
            if self.at_stmt_item() {
                stmts.push(Stmt::Item(self.parse_item(cfg_test)));
            } else if self.at_ident("let") {
                stmts.push(Stmt::Let(self.parse_let()));
            } else {
                let expr = self.parse_expr(0, false);
                let semi = self.eat_punct(';');
                stmts.push(Stmt::Expr(expr, semi));
            }
            if self.pos == before {
                self.bump();
                self.recover_here();
            }
        }
        Block {
            span: start.to(self.prev_span()),
            stmts,
        }
    }

    /// Does the cursor start a nested item (vs an expression statement)?
    fn at_stmt_item(&self) -> bool {
        let t = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => t,
            _ => return false,
        };
        match t.text.as_str() {
            "fn" | "struct" | "enum" | "impl" | "trait" | "mod" | "use" | "type"
            | "macro_rules" | "pub" | "static" => true,
            // `const X: T = …;` is an item; `const` can't start an expr.
            "const" => true,
            // `unsafe {` is a block expression, `unsafe fn` an item.
            "unsafe" => !self.t(1).map(|n| n.is_punct('{')).unwrap_or(false),
            _ => false,
        }
    }

    fn parse_let(&mut self) -> LetStmt {
        let start = self.cur_span();
        self.bump(); // let
        let pat = self.parse_pat(&[':', '=', ';'], &["else"]);
        let ty = if self.at_punct(':') && !self.at_op("::") {
            self.bump();
            Some(self.parse_ty(&['=', ';'], &["else"]))
        } else {
            None
        };
        let init = if self.at_punct('=') && !self.at_op("==") {
            self.bump();
            Some(self.parse_expr(0, false))
        } else {
            None
        };
        let els = if self.eat_ident("else") {
            Some(self.parse_block())
        } else {
            None
        };
        self.eat_punct(';');
        LetStmt {
            span: start.to(self.prev_span()),
            pat,
            ty,
            init,
            els,
        }
    }

    // ── expressions ──────────────────────────────────────────────────

    /// Pratt entry: unary/postfix core, then binary operators down to
    /// `min_bp`. `no_struct` suppresses `Path { … }` struct literals (set
    /// in `if`/`while`/`match`/`for`-header positions).
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let lhs = self.parse_unary(no_struct);
        self.parse_binary(lhs, min_bp, no_struct)
    }

    fn parse_binary(&mut self, mut lhs: Expr, min_bp: u8, no_struct: bool) -> Expr {
        loop {
            let (ntok, l_bp, r_bp, op) = match self.peek_bin_op() {
                Some(x) => x,
                None => return lhs,
            };
            if l_bp < min_bp {
                return lhs;
            }
            for _ in 0..ntok {
                self.bump();
            }
            match op {
                PeekedOp::Bin(b) => {
                    let rhs = self.parse_expr(r_bp, no_struct);
                    let span = lhs.span.to(rhs.span);
                    lhs = Expr::new(span, ExprKind::Binary(b, Box::new(lhs), Box::new(rhs)));
                }
                PeekedOp::Assign(b) => {
                    let rhs = self.parse_expr(r_bp, no_struct);
                    let span = lhs.span.to(rhs.span);
                    lhs = Expr::new(
                        span,
                        ExprKind::Assign {
                            op: b,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                    );
                }
                PeekedOp::Range => {
                    let hi = if self.can_start_expr(no_struct) {
                        Some(Box::new(self.parse_expr(r_bp, no_struct)))
                    } else {
                        None
                    };
                    let span = match &hi {
                        Some(h) => lhs.span.to(h.span),
                        None => lhs.span.to(self.prev_span()),
                    };
                    lhs = Expr::new(span, ExprKind::Range(Some(Box::new(lhs)), hi));
                }
            }
        }
    }

    /// Longest-match binary operator at the cursor.
    /// Returns `(token_count, l_bp, r_bp, op)`.
    fn peek_bin_op(&self) -> Option<(usize, u8, u8, PeekedOp)> {
        use BinOp::*;
        // Hard stops that look like operator prefixes.
        if self.at_op("=>") || self.at_op("->") || self.at_op("::") {
            return None;
        }
        let bin = |p: u8, b: BinOp, n: usize| Some((n, 2 * p, 2 * p + 1, PeekedOp::Bin(b)));
        let asg = |b: Option<BinOp>, n: usize| Some((n, 2, 1, PeekedOp::Assign(b)));
        // 3-char first.
        if self.at_op("<<=") {
            return asg(Some(Shl), 3);
        }
        if self.at_op(">>=") {
            return asg(Some(Shr), 3);
        }
        if self.at_op("..=") {
            return Some((3, 2, 3, PeekedOp::Range));
        }
        // 2-char.
        if self.at_op("==") {
            return bin(4, Cmp, 2);
        }
        if self.at_op("!=") {
            return bin(4, Cmp, 2);
        }
        if self.at_op("<=") {
            return bin(4, Cmp, 2);
        }
        if self.at_op(">=") {
            return bin(4, Cmp, 2);
        }
        if self.at_op("&&") {
            return bin(3, Logic, 2);
        }
        if self.at_op("||") {
            return bin(2, Logic, 2);
        }
        if self.at_op("<<") {
            return bin(8, Shl, 2);
        }
        if self.at_op(">>") {
            return bin(8, Shr, 2);
        }
        if self.at_op("+=") {
            return asg(Some(Add), 2);
        }
        if self.at_op("-=") {
            return asg(Some(Sub), 2);
        }
        if self.at_op("*=") {
            return asg(Some(Mul), 2);
        }
        if self.at_op("/=") {
            return asg(Some(Div), 2);
        }
        if self.at_op("%=") {
            return asg(Some(Rem), 2);
        }
        if self.at_op("&=") {
            return asg(Some(BitAnd), 2);
        }
        if self.at_op("|=") {
            return asg(Some(BitOr), 2);
        }
        if self.at_op("^=") {
            return asg(Some(BitXor), 2);
        }
        if self.at_op("..") {
            return Some((2, 2, 3, PeekedOp::Range));
        }
        // 1-char.
        if self.at_punct('+') {
            return bin(9, Add, 1);
        }
        if self.at_punct('-') {
            return bin(9, Sub, 1);
        }
        if self.at_punct('*') {
            return bin(10, Mul, 1);
        }
        if self.at_punct('/') {
            return bin(10, Div, 1);
        }
        if self.at_punct('%') {
            return bin(10, Rem, 1);
        }
        if self.at_punct('&') {
            return bin(7, BitAnd, 1);
        }
        if self.at_punct('|') {
            return bin(5, BitOr, 1);
        }
        if self.at_punct('^') {
            return bin(6, BitXor, 1);
        }
        if self.at_punct('<') {
            return bin(4, Cmp, 1);
        }
        if self.at_punct('>') {
            return bin(4, Cmp, 1);
        }
        if self.at_punct('=') {
            return asg(None, 1);
        }
        None
    }

    /// Can the cursor start an expression? (Used for optional range ends
    /// and bare `return`/`break`.)
    fn can_start_expr(&self, no_struct: bool) -> bool {
        let t = match self.peek() {
            Some(t) => t,
            None => return false,
        };
        match t.kind {
            TokenKind::Ident => !matches!(t.text.as_str(), "else" | "in" | "where" | "as"),
            TokenKind::Number | TokenKind::Str | TokenKind::Char | TokenKind::Lifetime => true,
            TokenKind::Attr => false,
            TokenKind::Punct => {
                let c = t.text.chars().next().unwrap_or(' ');
                match c {
                    '(' | '[' | '-' | '!' | '*' | '&' | '|' => true,
                    '{' => !no_struct,
                    ':' => self.at_op("::"),
                    _ => false,
                }
            }
        }
    }

    /// Prefix operators + a primary + the postfix chain.
    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        let start = self.cur_span();
        // Prefix forms that wrap a full unary operand.
        if self.at_punct('-') {
            self.bump();
            let inner = self.parse_unary(no_struct);
            let span = start.to(inner.span);
            return Expr::new(span, ExprKind::Unary(UnOp::Neg, Box::new(inner)));
        }
        if self.at_punct('!') {
            self.bump();
            let inner = self.parse_unary(no_struct);
            let span = start.to(inner.span);
            return Expr::new(span, ExprKind::Unary(UnOp::Not, Box::new(inner)));
        }
        if self.at_punct('*') {
            self.bump();
            let inner = self.parse_unary(no_struct);
            let span = start.to(inner.span);
            return Expr::new(span, ExprKind::Unary(UnOp::Deref, Box::new(inner)));
        }
        if self.at_punct('&') {
            self.bump(); // one `&` at a time: `&&x` is &(&x)
            let mutable = self.eat_ident("mut");
            let inner = self.parse_unary(no_struct);
            let span = start.to(inner.span);
            return Expr::new(
                span,
                ExprKind::Ref {
                    mutable,
                    inner: Box::new(inner),
                },
            );
        }
        let primary = self.parse_primary(no_struct);
        self.parse_postfix(primary)
    }

    fn parse_postfix(&mut self, mut expr: Expr) -> Expr {
        loop {
            if self.at_punct('.') && !self.at_op("..") {
                self.bump();
                match self.peek().cloned() {
                    Some(t) if t.kind == TokenKind::Ident => {
                        let method_span = tok_span(&t);
                        let name = t.text.clone();
                        self.bump();
                        let turbofish = if self.at_op("::") && self.at_op_at(2, "<") {
                            self.bump();
                            self.bump();
                            self.skip_generics_capture()
                        } else {
                            None
                        };
                        if self.at_punct('(') {
                            let args = self.parse_call_args();
                            let span = expr.span.to(self.prev_span());
                            expr = Expr::new(
                                span,
                                ExprKind::MethodCall {
                                    recv: Box::new(expr),
                                    method: name,
                                    method_span,
                                    turbofish,
                                    args,
                                },
                            );
                        } else {
                            let span = expr.span.to(method_span);
                            expr = Expr::new(span, ExprKind::Field(Box::new(expr), name));
                        }
                    }
                    Some(t) if t.kind == TokenKind::Number => {
                        // Tuple index; `.0.1` lexes the index as `0.1`.
                        let span = expr.span.to(tok_span(&t));
                        self.bump();
                        expr = Expr::new(span, ExprKind::Field(Box::new(expr), t.text));
                    }
                    _ => {
                        self.recover_here();
                        return expr;
                    }
                }
                continue;
            }
            if self.at_punct('(') {
                let args = self.parse_call_args();
                let span = expr.span.to(self.prev_span());
                expr = Expr::new(
                    span,
                    ExprKind::Call {
                        callee: Box::new(expr),
                        args,
                    },
                );
                continue;
            }
            if self.at_punct('[') {
                self.bump();
                let idx = self.parse_expr(0, false);
                self.eat_punct(']');
                let span = expr.span.to(self.prev_span());
                expr = Expr::new(span, ExprKind::Index(Box::new(expr), Box::new(idx)));
                continue;
            }
            if self.at_punct('?') {
                self.bump();
                let span = expr.span.to(self.prev_span());
                expr = Expr::new(span, ExprKind::Try(Box::new(expr)));
                continue;
            }
            if self.at_ident("as") {
                self.bump();
                let ty = self.parse_cast_ty();
                let span = expr.span.to(self.prev_span());
                expr = Expr::new(span, ExprKind::Cast(Box::new(expr), ty));
                continue;
            }
            return expr;
        }
    }

    /// The narrow type grammar after `as`: `[*const|*mut] path` with an
    /// optional balanced generic tail.
    fn parse_cast_ty(&mut self) -> Ty {
        let start = self.pos;
        if self.eat_punct('*') && !self.eat_ident("const") {
            self.eat_ident("mut");
        }
        let mut upper_head = false;
        loop {
            match self.peek() {
                Some(t) if t.kind == TokenKind::Ident => {
                    upper_head = t
                        .text
                        .chars()
                        .next()
                        .map(char::is_uppercase)
                        .unwrap_or(false);
                    self.bump();
                }
                _ => break,
            }
            if self.at_op("::") {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        // `count as usize < len` is a comparison, not `usize<…>`: only an
        // uppercase head (a nominal type) takes a generic tail here —
        // every primitive cast target is lowercase.
        if upper_head && self.at_punct('<') {
            self.skip_generics();
        }
        ty_from_tokens(&self.toks[start..self.pos])
    }

    /// Captures a turbofish `<…>` region (cursor on `<`), returning the
    /// head of its first type argument.
    fn skip_generics_capture(&mut self) -> Option<String> {
        let start = self.pos;
        self.skip_generics();
        let inner = &self.toks[start..self.pos];
        if inner.len() > 2 {
            let shape = ty_shape(&inner[1..inner.len() - 1]);
            if !shape.0.is_empty() {
                return Some(shape.0);
            }
        }
        None
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct('(') {
            return args;
        }
        while let Some(t) = self.peek() {
            if t.is_punct(')') {
                self.bump();
                break;
            }
            let before = self.pos;
            args.push(self.parse_expr(0, false));
            self.eat_punct(',');
            if self.pos == before {
                self.bump();
                self.recover_here();
            }
        }
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let start = self.cur_span();
        let t = match self.peek().cloned() {
            Some(t) => t,
            None => {
                return Expr::new(
                    Span {
                        lo: start.lo,
                        hi: start.lo,
                        line: start.line,
                    },
                    ExprKind::Unknown,
                )
            }
        };
        match t.kind {
            TokenKind::Number | TokenKind::Str | TokenKind::Char => {
                self.bump();
                Expr::new(tok_span(&t), ExprKind::Lit(t.text))
            }
            TokenKind::Lifetime => {
                // Loop label: `'outer: loop { … }`.
                self.bump();
                if self.at_punct(':') && !self.at_op("::") {
                    self.bump();
                    let inner = self.parse_unary(no_struct);
                    let span = start.to(inner.span);
                    return Expr::new(span, inner.kind);
                }
                self.recover_here();
                Expr::new(tok_span(&t), ExprKind::Unknown)
            }
            TokenKind::Attr => {
                self.bump();
                self.recover_here();
                Expr::new(tok_span(&t), ExprKind::Unknown)
            }
            TokenKind::Ident => self.parse_ident_primary(&t, no_struct),
            TokenKind::Punct => {
                let c = t.text.chars().next().unwrap_or(' ');
                match c {
                    '(' => {
                        self.bump();
                        let mut elems = Vec::new();
                        let mut trailing_comma = false;
                        while let Some(x) = self.peek() {
                            if x.is_punct(')') {
                                self.bump();
                                break;
                            }
                            let before = self.pos;
                            elems.push(self.parse_expr(0, false));
                            trailing_comma = self.eat_punct(',');
                            if self.pos == before {
                                self.bump();
                                self.recover_here();
                            }
                        }
                        let span = start.to(self.prev_span());
                        if elems.len() == 1 && !trailing_comma {
                            // Transparent parens: keep the inner node
                            // (and its exact span) as-is.
                            elems.pop().expect("len checked")
                        } else {
                            Expr::new(span, ExprKind::Tuple(elems))
                        }
                    }
                    '[' => {
                        self.bump();
                        let mut elems = Vec::new();
                        while let Some(x) = self.peek() {
                            if x.is_punct(']') {
                                self.bump();
                                break;
                            }
                            let before = self.pos;
                            elems.push(self.parse_expr(0, false));
                            if self.eat_punct(';') {
                                // `[elem; len]`
                                elems.push(self.parse_expr(0, false));
                                self.eat_punct(']');
                                break;
                            }
                            self.eat_punct(',');
                            if self.pos == before {
                                self.bump();
                                self.recover_here();
                            }
                        }
                        let span = start.to(self.prev_span());
                        Expr::new(span, ExprKind::Array(elems))
                    }
                    '{' => {
                        let block = self.parse_block();
                        let span = block.span;
                        Expr::new(span, ExprKind::Block(block))
                    }
                    '|' => self.parse_closure(start, no_struct),
                    ':' if self.at_op("::") => {
                        self.bump();
                        self.bump();
                        self.parse_path_primary(start, Vec::new(), no_struct)
                    }
                    '.' if self.at_op("..") => {
                        // Prefix range: `..hi`, `..=hi`, bare `..`.
                        let inclusive = self.at_op("..=");
                        self.bump();
                        self.bump();
                        if inclusive {
                            self.bump();
                        }
                        let hi = if self.can_start_expr(no_struct) {
                            Some(Box::new(self.parse_expr(3, no_struct)))
                        } else {
                            None
                        };
                        let span = start.to(self.prev_span());
                        Expr::new(span, ExprKind::Range(None, hi))
                    }
                    _ => {
                        self.bump();
                        self.recover_here();
                        Expr::new(tok_span(&t), ExprKind::Unknown)
                    }
                }
            }
        }
    }

    fn parse_ident_primary(&mut self, t: &Token, no_struct: bool) -> Expr {
        let start = tok_span(t);
        match t.text.as_str() {
            "true" | "false" => {
                self.bump();
                Expr::new(start, ExprKind::Lit(t.text.clone()))
            }
            "if" => self.parse_if(),
            "match" => self.parse_match(),
            "while" => {
                self.bump();
                let cond = self.parse_cond();
                let body = self.parse_block();
                let span = start.to(body.span);
                Expr::new(
                    span,
                    ExprKind::While {
                        cond: Box::new(cond),
                        body,
                    },
                )
            }
            "for" => {
                self.bump();
                let pat = self.parse_pat(&[], &["in"]);
                self.eat_ident("in");
                let iter = self.parse_expr(0, true);
                let body = self.parse_block();
                let span = start.to(body.span);
                Expr::new(
                    span,
                    ExprKind::ForLoop {
                        pat,
                        iter: Box::new(iter),
                        body,
                    },
                )
            }
            "loop" => {
                self.bump();
                let body = self.parse_block();
                let span = start.to(body.span);
                Expr::new(span, ExprKind::Loop(body))
            }
            "unsafe" => {
                self.bump();
                let body = self.parse_block();
                let span = start.to(body.span);
                Expr::new(span, ExprKind::Block(body))
            }
            "return" => {
                self.bump();
                let val = if self.can_start_expr(no_struct) {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                let span = start.to(self.prev_span());
                Expr::new(span, ExprKind::Return(val))
            }
            "break" => {
                self.bump();
                if let Some(l) = self.peek() {
                    if l.kind == TokenKind::Lifetime {
                        self.bump();
                    }
                }
                let val = if self.can_start_expr(no_struct) {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                let span = start.to(self.prev_span());
                Expr::new(span, ExprKind::Break(val))
            }
            "continue" => {
                self.bump();
                if let Some(l) = self.peek() {
                    if l.kind == TokenKind::Lifetime {
                        self.bump();
                    }
                }
                let span = start.to(self.prev_span());
                Expr::new(span, ExprKind::Continue)
            }
            "move" => {
                self.bump();
                // `move |…| …` / `move || …`
                if self.at_punct('|') {
                    let c = self.parse_closure(start, no_struct);
                    let span = start.to(c.span);
                    return Expr::new(span, c.kind);
                }
                self.recover_here();
                Expr::new(start, ExprKind::Unknown)
            }
            "let" => {
                // `let pat = scrut` outside an if/while header (recovery
                // only; headers call parse_cond directly).
                self.bump();
                let pat = self.parse_pat(&['='], &[]);
                self.eat_punct('=');
                let scrut = self.parse_expr(0, no_struct);
                let span = start.to(self.prev_span());
                Expr::new(
                    span,
                    ExprKind::LetCond {
                        pat,
                        scrut: Box::new(scrut),
                    },
                )
            }
            _ => {
                self.bump();
                self.parse_path_primary(start, vec![t.text.clone()], no_struct)
            }
        }
    }

    /// Continues a path expression whose first segment(s) are consumed:
    /// more `::seg`s, turbofish, macro `!`, or a struct literal.
    fn parse_path_primary(&mut self, start: Span, mut segs: Vec<String>, no_struct: bool) -> Expr {
        loop {
            if self.at_op("::") {
                if self.at_op_at(2, "<") {
                    // Path turbofish: `Vec::<u8>::new` — skip the types.
                    self.bump();
                    self.bump();
                    self.skip_generics();
                    continue;
                }
                match self.t(2) {
                    Some(n) if n.kind == TokenKind::Ident => {
                        let seg = n.text.clone();
                        self.bump();
                        self.bump();
                        self.bump();
                        segs.push(seg);
                        continue;
                    }
                    _ => break,
                }
            }
            break;
        }
        if segs.is_empty() {
            self.recover_here();
            return Expr::new(start, ExprKind::Unknown);
        }
        // Macro call: `path!` with an adjacent `!` not part of `!=`.
        if self.at_punct('!') && !self.at_op("!=") {
            let bang_adjacent = self
                .toks
                .get(self.pos.wrapping_sub(1))
                .zip(self.peek())
                .map(|(p, b)| p.touches(b))
                .unwrap_or(false);
            if bang_adjacent {
                self.bump();
                return self.parse_macro_call(start, segs);
            }
        }
        // Struct literal: `Path { … }` where permitted.
        if !no_struct && self.at_punct('{') {
            return self.parse_struct_lit(start, segs);
        }
        let span = start.to(self.prev_span());
        Expr::new(span, ExprKind::Path(segs))
    }

    fn parse_macro_call(&mut self, start: Span, path: Vec<String>) -> Expr {
        let delim = match self.peek() {
            Some(t) if t.is_punct('(') => '(',
            Some(t) if t.is_punct('[') => '[',
            Some(t) if t.is_punct('{') => '{',
            _ => {
                self.recover_here();
                let span = start.to(self.prev_span());
                return Expr::new(span, ExprKind::MacroCall { path, args: vec![] });
            }
        };
        let close = match delim {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        if delim == '{' {
            // Brace macros in this workspace are token soup; skip.
            self.skip_balanced();
            let span = start.to(self.prev_span());
            return Expr::new(span, ExprKind::MacroCall { path, args: vec![] });
        }
        let save = self.pos;
        self.bump(); // open
        let mut args = Vec::new();
        let mut ok = true;
        loop {
            match self.peek() {
                Some(t) if t.is_punct(close) => {
                    self.bump();
                    break;
                }
                None => {
                    ok = false;
                    break;
                }
                _ => {}
            }
            let before = self.pos;
            args.push(self.parse_expr(0, false));
            if self.pos == before {
                ok = false;
                break;
            }
            match self.peek() {
                Some(t) if t.is_punct(',') => {
                    self.bump();
                }
                Some(t) if t.is_punct(close) => {}
                // `matches!(x, Pat)` patterns and `fmt => expr` arms land
                // here; bail to a balanced skip.
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            self.pos = save;
            let skip_start = self.cur_span();
            self.skip_balanced();
            args = vec![Expr::new(
                skip_start.to(self.prev_span()),
                ExprKind::Unknown,
            )];
        }
        // Synthesize path args for inline format captures: `"{name}"`.
        let mut captures = Vec::new();
        for a in &args {
            if let ExprKind::Lit(text) = &a.kind {
                if text.starts_with('"') || text.starts_with("r\"") || text.starts_with("r#") {
                    scan_format_captures(text, a.span, &mut captures);
                }
            }
        }
        args.extend(captures);
        let span = start.to(self.prev_span());
        Expr::new(span, ExprKind::MacroCall { path, args })
    }

    fn parse_struct_lit(&mut self, start: Span, path: Vec<String>) -> Expr {
        self.bump(); // {
        let mut fields = Vec::new();
        let mut rest = None;
        while let Some(t) = self.peek() {
            if t.is_punct('}') {
                self.bump();
                break;
            }
            let before = self.pos;
            self.skip_attrs();
            if self.at_op("..") {
                self.bump();
                self.bump();
                // `..base` is a struct update; a bare `..` (struct
                // *pattern* syntax reaching us through `matches!` macro
                // arguments) has no base expression.
                if self.can_start_expr(false) {
                    rest = Some(Box::new(self.parse_expr(0, false)));
                }
                self.eat_punct(',');
                continue;
            }
            let fname = match self.peek() {
                Some(t) if t.kind == TokenKind::Ident || t.kind == TokenKind::Number => {
                    let s = t.text.clone();
                    self.bump();
                    s
                }
                _ => String::new(),
            };
            if fname.is_empty() {
                self.bump();
                self.recover_here();
                continue;
            }
            if self.at_punct(':') && !self.at_op("::") {
                self.bump();
                let val = self.parse_expr(0, false);
                fields.push((fname, val));
            } else {
                // Shorthand `Foo { x }` binds the local of the same name.
                let span = self.prev_span();
                fields.push((fname.clone(), Expr::new(span, ExprKind::Path(vec![fname]))));
            }
            self.eat_punct(',');
            if self.pos == before {
                self.bump();
                self.recover_here();
            }
        }
        let span = start.to(self.prev_span());
        Expr::new(span, ExprKind::StructLit { path, fields, rest })
    }

    fn parse_closure(&mut self, start: Span, no_struct: bool) -> Expr {
        let mut params = Vec::new();
        if self.at_op("||") {
            self.bump();
            self.bump();
        } else if self.eat_punct('|') {
            while let Some(t) = self.peek() {
                if t.is_punct('|') {
                    self.bump();
                    break;
                }
                let before = self.pos;
                let pat = self.parse_pat(&[',', '|', ':'], &[]);
                if self.at_punct(':') && !self.at_op("::") {
                    self.bump();
                    self.scan_ty_range(&[',', '|'], &[]);
                }
                params.push(pat);
                self.eat_punct(',');
                if self.pos == before {
                    self.bump();
                    self.recover_here();
                }
            }
        }
        let body = if self.eat_op("->") {
            self.scan_ty_range(&['{'], &[]);
            let block = self.parse_block();
            let span = block.span;
            Expr::new(span, ExprKind::Block(block))
        } else {
            self.parse_expr(0, no_struct)
        };
        let span = start.to(body.span);
        Expr::new(
            span,
            ExprKind::Closure {
                params,
                body: Box::new(body),
            },
        )
    }

    /// Condition position of `if`/`while`: handles `let pat = scrut`.
    fn parse_cond(&mut self) -> Expr {
        let start = self.cur_span();
        if self.at_ident("let") {
            self.bump();
            let pat = self.parse_pat(&['='], &[]);
            self.eat_punct('=');
            let scrut = self.parse_expr(0, true);
            let span = start.to(self.prev_span());
            return Expr::new(
                span,
                ExprKind::LetCond {
                    pat,
                    scrut: Box::new(scrut),
                },
            );
        }
        self.parse_expr(0, true)
    }

    fn parse_if(&mut self) -> Expr {
        let start = self.cur_span();
        self.bump(); // if
        let cond = self.parse_cond();
        let then = self.parse_block();
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else {
                let block = self.parse_block();
                let span = block.span;
                Some(Box::new(Expr::new(span, ExprKind::Block(block))))
            }
        } else {
            None
        };
        let span = match &els {
            Some(e) => start.to(e.span),
            None => start.to(then.span),
        };
        Expr::new(
            span,
            ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
        )
    }

    fn parse_match(&mut self) -> Expr {
        let start = self.cur_span();
        self.bump(); // match
        let scrut = self.parse_expr(0, true);
        let mut arms = Vec::new();
        if self.eat_punct('{') {
            while let Some(t) = self.peek() {
                if t.is_punct('}') {
                    self.bump();
                    break;
                }
                let before = self.pos;
                self.skip_attrs();
                let pat = self.parse_pat(&['=', ','], &["if"]);
                let guard = if self.eat_ident("if") {
                    Some(self.parse_expr(0, false))
                } else {
                    None
                };
                if self.eat_op("=>") {
                    let body = self.parse_expr(0, false);
                    arms.push(Arm { pat, guard, body });
                    self.eat_punct(',');
                } else {
                    self.recover_here();
                    // Desync: drop to the next comma or the close brace.
                    while let Some(t) = self.peek() {
                        if t.is_punct(',') {
                            self.bump();
                            break;
                        }
                        if t.is_punct('}') {
                            break;
                        }
                        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                            self.skip_balanced();
                        } else {
                            self.bump();
                        }
                    }
                }
                if self.pos == before {
                    self.bump();
                    self.recover_here();
                }
            }
        }
        let span = start.to(self.prev_span());
        Expr::new(
            span,
            ExprKind::Match {
                scrut: Box::new(scrut),
                arms,
            },
        )
    }
}

enum PeekedOp {
    Bin(BinOp),
    Assign(Option<BinOp>),
    Range,
}

fn empty_ty() -> Ty {
    Ty {
        text: String::new(),
        head: String::new(),
        args: Vec::new(),
    }
}

/// Builds a [`Ty`] from a token run: text is the joined lexemes, head and
/// args come from [`ty_shape`].
fn ty_from_tokens(toks: &[Token]) -> Ty {
    if toks.is_empty() {
        return empty_ty();
    }
    let mut text = String::new();
    let mut prev_hi = None;
    for t in toks {
        if let Some(hi) = prev_hi {
            if hi != t.lo {
                text.push(' ');
            }
        }
        text.push_str(&t.text);
        prev_hi = Some(t.hi);
    }
    let (head, args) = ty_shape(toks);
    Ty { text, head, args }
}

/// Extracts `(head, top_level_arg_heads)` from a type's token run.
///
/// Strips `&`, lifetimes, `mut`, `impl`, `dyn`, raw-pointer qualifiers;
/// slices/arrays become `[]`, tuples `()`, fn-pointers/closures `fn`;
/// otherwise the last path segment before the generic bracket is the
/// head and each depth-1 generic argument contributes its own head.
fn ty_shape(toks: &[Token]) -> (String, Vec<String>) {
    let mut i = 0usize;
    loop {
        match toks.get(i) {
            Some(t)
                if t.is_punct('&')
                    || t.is_punct('*')
                    || t.kind == TokenKind::Lifetime
                    || t.is_ident("mut")
                    || t.is_ident("const")
                    || t.is_ident("impl")
                    || t.is_ident("dyn") =>
            {
                i += 1;
            }
            _ => break,
        }
    }
    let first = match toks.get(i) {
        Some(t) => t,
        None => return (String::new(), Vec::new()),
    };
    if first.is_punct('(') {
        // Tuple (or parenthesized type — treated as a tuple head).
        return ("()".to_string(), Vec::new());
    }
    if first.is_punct('[') {
        let inner = balanced_inner(toks, i, '[', ']');
        let arg = ty_shape(inner).0;
        let args = if arg.is_empty() { vec![] } else { vec![arg] };
        return ("[]".to_string(), args);
    }
    if first.kind == TokenKind::Ident
        && matches!(first.text.as_str(), "fn" | "Fn" | "FnMut" | "FnOnce")
    {
        return ("fn".to_string(), Vec::new());
    }
    // Path: segments until `<` or a non-path token.
    let mut head = String::new();
    while let Some(t) = toks.get(i) {
        if t.kind == TokenKind::Ident {
            head = t.text.clone();
            i += 1;
            // `::` between segments
            if matches!(toks.get(i), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
            {
                i += 2;
                continue;
            }
        }
        break;
    }
    let mut args = Vec::new();
    if matches!(toks.get(i), Some(t) if t.is_punct('<')) {
        let inner = balanced_inner_angle(toks, i);
        let mut depth = 0i32;
        let mut arg_start = 0usize;
        let mut j = 0usize;
        let push_arg = |range: &[Token], args: &mut Vec<String>| {
            // Pure-lifetime arguments contribute nothing.
            if range.len() == 1 && range[0].kind == TokenKind::Lifetime {
                return;
            }
            let h = ty_shape(range).0;
            if !h.is_empty() {
                args.push(h);
            }
        };
        while j < inner.len() {
            let t = &inner[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if t.is_punct(',') && depth == 0 {
                push_arg(&inner[arg_start..j], &mut args);
                arg_start = j + 1;
            }
            j += 1;
        }
        if arg_start < inner.len() {
            push_arg(&inner[arg_start..], &mut args);
        }
    }
    (head, args)
}

/// Tokens strictly inside the balanced `open…close` region starting at
/// `toks[at]` (empty on malformed input).
fn balanced_inner(toks: &[Token], at: usize, open: char, close: char) -> &[Token] {
    let mut depth = 0i32;
    let mut j = at;
    while let Some(t) = toks.get(j) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return &toks[at + 1..j];
            }
        }
        j += 1;
    }
    &[]
}

/// Tokens strictly inside a balanced `<…>` region starting at `toks[at]`,
/// pairing `->` so fn-pointer arrows don't close the angle.
fn balanced_inner_angle(toks: &[Token], at: usize) -> &[Token] {
    let mut depth = 0i32;
    let mut j = at;
    while let Some(t) = toks.get(j) {
        if t.is_punct('-') && matches!(toks.get(j + 1), Some(n) if n.is_punct('>') && t.touches(n))
        {
            j += 2;
            continue;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return &toks[at + 1..j];
            }
        }
        j += 1;
    }
    &[]
}

/// Scans a string-literal lexeme for inline format captures (`{name}`,
/// `{name:…}`) and synthesizes a `Path` expression per capture, so taint
/// analysis sees `format!("{k}")` read `k`.
fn scan_format_captures(lit: &str, span: Span, out: &mut Vec<Expr>) {
    let bytes = lit.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'{' {
                i += 2;
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            if j > i + 1
                && j < bytes.len()
                && (bytes[j] == b'}' || bytes[j] == b':')
                && !bytes[i + 1].is_ascii_digit()
            {
                let name = &lit[i + 1..j];
                out.push(Expr::new(span, ExprKind::Path(vec![name.to_string()])));
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_clean(src: &str) -> SourceFile {
        let f = parse_file(src);
        assert_eq!(f.recovered, 0, "unexpected recovery parsing: {src}");
        f
    }

    fn only_fn(f: &SourceFile) -> &FnItem {
        for item in &f.items {
            if let ItemKind::Fn(func) = &item.kind {
                return func;
            }
        }
        panic!("no fn item");
    }

    #[test]
    fn parses_items_and_spans_round_trip() {
        let src = "pub fn add(a: u64, b: u64) -> u64 { a + b }\n";
        let f = parse_clean(src);
        let func = only_fn(&f);
        assert_eq!(func.name, "add");
        assert_eq!(func.params.len(), 2);
        assert_eq!(func.ret.as_ref().map(|t| t.head.as_str()), Some("u64"));
        let item_span = f.items[0].span;
        assert_eq!(
            &src[item_span.lo as usize..item_span.hi as usize].trim_start(),
            &src.trim()
        );
    }

    #[test]
    fn method_calls_and_turbofish() {
        let src = "fn f(m: HashMap<u64, f64>) -> BTreeMap<u64, f64> { m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, f64>>() }\n";
        let f = parse_clean(src);
        let func = only_fn(&f);
        let body = func.body.as_ref().expect("body");
        let mut methods = Vec::new();
        walk_block(body, &mut |e| {
            if let ExprKind::MethodCall {
                method, turbofish, ..
            } = &e.kind
            {
                methods.push((method.clone(), turbofish.clone()));
            }
        });
        assert!(methods
            .iter()
            .any(|(m, t)| m == "collect" && t.as_deref() == Some("BTreeMap")));
        assert!(methods.iter().any(|(m, _)| m == "iter"));
    }

    #[test]
    fn struct_literal_vs_block_ambiguity() {
        let src = "fn f(x: u32) -> P { if x > 0 { P { a: x } } else { P { a: 0 } } }\n";
        let f = parse_clean(src);
        let func = only_fn(&f);
        let mut lits = 0;
        walk_block(func.body.as_ref().expect("body"), &mut |e| {
            if matches!(e.kind, ExprKind::StructLit { .. }) {
                lits += 1;
            }
        });
        assert_eq!(lits, 2);
    }

    #[test]
    fn match_for_while_let_and_ranges() {
        let src = r#"
fn f(v: &[u64]) -> u64 {
    let mut total = 0u64;
    let tail = &v[1..];
    total += tail.len() as u64;
    for (i, x) in v.iter().enumerate() {
        total += match *x {
            0 => 0,
            1..=9 => 1,
            n if n > 100 => n,
            _ => i as u64,
        };
    }
    while let Some(last) = v.get(total as usize) {
        if *last == 0 { break; }
        total -= 1;
    }
    total
}
"#;
        let f = parse_clean(src);
        let func = only_fn(&f);
        let mut kinds = (0, 0, 0, 0); // match, for, while, range
        walk_block(func.body.as_ref().expect("body"), &mut |e| match &e.kind {
            ExprKind::Match { .. } => kinds.0 += 1,
            ExprKind::ForLoop { .. } => kinds.1 += 1,
            ExprKind::While { .. } => kinds.2 += 1,
            ExprKind::Range(..) => kinds.3 += 1,
            _ => {}
        });
        assert_eq!(kinds, (1, 1, 1, 1));
    }

    #[test]
    fn format_captures_are_synthesized() {
        let src = "fn f(k: u64) -> String { format!(\"k={k} v={v:?}\", v = k) }\n";
        let f = parse_clean(src);
        let func = only_fn(&f);
        let mut paths = Vec::new();
        walk_block(func.body.as_ref().expect("body"), &mut |e| {
            if let ExprKind::Path(segs) = &e.kind {
                paths.push(segs.join("::"));
            }
        });
        assert!(paths.iter().any(|p| p == "k"), "captures: {paths:?}");
        assert!(paths.iter().any(|p| p == "v"), "captures: {paths:?}");
    }

    #[test]
    fn recovery_never_panics_and_counts() {
        // Unknown leading tokens recover to an item boundary.
        let f = parse_file("@@ ; fn f() -> u64 { 1 }");
        assert!(f.recovered > 0);
        assert!(f.items.iter().any(|i| matches!(i.kind, ItemKind::Fn(_))));
        // Truncated/garbage input parses without panicking.
        parse_file("fn broken( {{{ ]] @@ ");
        parse_file("impl { fn");
        parse_file("match { => , }");
        let f2 = parse_file("");
        assert_eq!(f2.items.len(), 0);
    }

    #[test]
    fn closures_and_let_else() {
        let src = r#"
fn f(v: Vec<u64>) -> u64 {
    let Some(first) = v.first().copied() else { return 0; };
    let add = |a: u64, b: u64| a + b;
    let total: u64 = v.iter().map(|x| add(*x, first)).sum();
    total
}
"#;
        let f = parse_clean(src);
        let func = only_fn(&f);
        let mut closures = 0;
        walk_block(func.body.as_ref().expect("body"), &mut |e| {
            if matches!(e.kind, ExprKind::Closure { .. }) {
                closures += 1;
            }
        });
        assert_eq!(closures, 2);
    }
}
