//! Diagnostics: the linter's one output type, with byte-stable renderers.
//!
//! Every run of the linter over the same tree must produce the same bytes
//! — the golden fixture suite and the CI `--json` diffing both depend on
//! it — so diagnostics carry a total order (path, line, rule, message) and
//! both renderers emit nothing non-deterministic (no timestamps, no
//! absolute paths, no map iteration).

use std::cmp::Ordering;
use std::fmt;

/// One finding: a rule violated at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Workspace-relative path with forward slashes (`crates/x/src/y.rs`).
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (`D01` … `A01`, `L00`/`L01` for the meta-rules).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diag {
    /// The total order every emission path sorts by.
    pub fn sort_key(&self) -> (&str, u32, &str, &str) {
        (&self.path, self.line, self.rule, &self.message)
    }
}

impl PartialOrd for Diag {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Diag {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders diagnostics as text, one per line, in sorted order.
pub fn render_text(diags: &[Diag]) -> String {
    let mut sorted: Vec<&Diag> = diags.iter().collect();
    sorted.sort();
    let mut out = String::new();
    for d in sorted {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders diagnostics as a JSON array, stable-sorted by
/// (path, line, rule) so CI can diff two runs byte-for-byte.
pub fn render_json(diags: &[Diag]) -> String {
    let mut sorted: Vec<&Diag> = diags.iter().collect();
    sorted.sort();
    let mut out = String::from("[");
    for (i, d) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"path\":");
        json_string(&mut out, &d.path);
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"rule\":");
        json_string(&mut out, d.rule);
        out.push_str(",\"message\":");
        json_string(&mut out, &d.message);
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Appends `s` to `out` as a JSON string literal (minimal escaping).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(path: &str, line: u32, rule: &'static str) -> Diag {
        Diag {
            path: path.to_string(),
            line,
            rule,
            message: format!("m-{rule}"),
        }
    }

    #[test]
    fn ordering_is_path_line_rule() {
        let mut v = [
            d("b.rs", 1, "D01"),
            d("a.rs", 9, "D05"),
            d("a.rs", 9, "D02"),
        ];
        v.sort();
        let order: Vec<(&str, u32, &str)> = v
            .iter()
            .map(|x| (x.path.as_str(), x.line, x.rule))
            .collect();
        assert_eq!(
            order,
            vec![("a.rs", 9, "D02"), ("a.rs", 9, "D05"), ("b.rs", 1, "D01")]
        );
    }

    #[test]
    fn text_rendering_is_stable_under_input_order() {
        let a = vec![d("b.rs", 1, "D01"), d("a.rs", 2, "D02")];
        let b = vec![d("a.rs", 2, "D02"), d("b.rs", 1, "D01")];
        assert_eq!(render_text(&a), render_text(&b));
        assert_eq!(render_text(&a), "a.rs:2: D02: m-D02\nb.rs:1: D01: m-D01\n");
    }

    #[test]
    fn json_escapes_and_sorts() {
        let diags = vec![Diag {
            path: "x.rs".to_string(),
            line: 3,
            rule: "D04",
            message: "say \"hi\"\\\n".to_string(),
        }];
        let js = render_json(&diags);
        assert_eq!(
            js,
            "[\n  {\"path\":\"x.rs\",\"line\":3,\"rule\":\"D04\",\"message\":\"say \\\"hi\\\"\\\\\\n\"}\n]\n"
        );
        assert_eq!(render_json(&[]), "[]\n");
    }
}
