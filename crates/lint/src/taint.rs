//! Inter-procedural determinism taint analysis.
//!
//! The heuristic rules (D01–D03) flag *patterns*: any hash iteration, any
//! clock read, any seed arithmetic. This module flags *flows*: a
//! nondeterministic value (hash-iteration order, wall-clock time, worker
//! parallelism) that actually reaches an emission path — a JSONL renderer
//! or a [`Trace`] — where byte-stability is the contract. Working over the
//! resolved workspace ([`crate::resolve`]) it computes a per-function
//! summary (which parameters flow to the return value, which flow into a
//! sink, which escape) and iterates to a fixpoint over the call graph.
//!
//! Three rule families come out of it:
//!
//! * **T01** — a taint source reaches an emission path. The finding is
//!   anchored at the sink, names the source, and *subsumes* the heuristic
//!   diagnostic at the source line.
//! * **T02** — a `pub fn` returns a hash-order- or worker-tainted value
//!   that a *different* crate consumes. Clock taint is exempt: wall-clock
//!   instrumentation legitimately crosses APIs into human-readable tables.
//! * **A02** — an integer accumulator in accounting code (`energy`,
//!   `fault`, `cmp` paths) absorbs an unchecked product.
//!
//! Where the flow analysis *proves* a heuristic site safe — the taint dies
//! before any sink and never escapes — the heuristic diagnostic is
//! retracted, and a suppression that only covered a retracted diagnostic
//! becomes **L02** ("obsolete suppression") instead of L01.
//!
//! The analysis is deliberately asymmetric: console output (`println!`,
//! tables) is *not* a sink — the determinism contract covers JSONL and
//! trace artifacts, not human-readable instrumentation — but a tainted
//! value passed to an *unresolvable* free function is treated as escaped,
//! which keeps the heuristic diagnostic alive rather than wrongly
//! retracting it.
//!
//! D03 gets a dedicated treatment: instead of value flow, a greatest-
//! fixpoint *expander* analysis decides whether every seed-arithmetic
//! expression on a line is consumed by a sanctioned stream expander
//! (`seed_from_u64`, `SplitMix64::derive`/`new`, or a workspace function
//! whose parameter provably flows only into such expanders). Raw
//! arithmetic that *becomes RNG state directly* (an inline LCG) is kept.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{BinOp, Block, Expr, ExprKind, Pat, Stmt};
use crate::diag::Diag;
use crate::resolve::{CallTarget, FnId, UnresolvedKind, Workspace};

/// Parameter tokens live above this bit; everything below is a site id.
const PARAM_BASE: u32 = 0x8000_0000;
/// The whole-`self` taint token.
const SELF_TOK: u32 = u32::MAX;

/// Function names that ARE emission paths: taint reaching their return
/// value (or their parameters) is a T01 finding.
const SINK_NAMES: &[&str] = &[
    "json_line",
    "jsonl",
    "jsonl_body",
    "to_jsonl",
    "write_jsonl",
];

/// `Trace` methods that emit: tainted arguments are findings.
const TRACE_SINK_METHODS: &[&str] = &["push", "extend", "extend_from_slice"];

/// Hash-container iteration methods whose visit order is arbitrary
/// (mirrors the heuristic layer's list).
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Integer type heads for the A02 operand check.
const INT_HEADS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "#int",
];

/// What kind of nondeterminism a taint site introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SourceKind {
    /// `HashMap`/`HashSet` iteration order.
    HashIter,
    /// `Instant::now()` / `SystemTime::now()`.
    Clock,
    /// `available_parallelism()` / `thread::current()`.
    WorkerIdx,
}

impl SourceKind {
    fn describe(self) -> &'static str {
        match self {
            SourceKind::HashIter => "hash-iteration order",
            SourceKind::Clock => "wall-clock time",
            SourceKind::WorkerIdx => "worker parallelism",
        }
    }
}

/// One taint source occurrence.
#[derive(Debug, Clone)]
pub struct Site {
    /// What the site introduces.
    pub kind: SourceKind,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line (matches the heuristic diagnostic's line).
    pub line: u32,
}

/// Analysis counters for the bench report.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Functions summarized.
    pub functions: usize,
    /// Taint sites discovered.
    pub taint_sites: usize,
    /// Call edges resolved to workspace functions (or modeled std/ctor).
    pub resolved_calls: usize,
    /// Call edges that stayed unresolved.
    pub unresolved_calls: usize,
}

/// Everything the engine needs from one semantic pass.
#[derive(Debug, Default)]
pub struct Outcome {
    /// T01/T02/A02 diagnostics (unsorted; the engine merges and sorts).
    pub diags: Vec<Diag>,
    /// Heuristic diagnostics proven safe or subsumed: `(path, line, rule)`.
    pub retract: BTreeSet<(String, u32, String)>,
    /// Counters.
    pub stats: Stats,
}

/// A taint token set: site ids, parameter tokens, and `SELF_TOK`.
type Set = BTreeSet<u32>;
/// Where a sink fired: `(file index, line, sink name)`.
type SinkLoc = (usize, u32, String);

/// Per-function dataflow summary. `ret` maps every token reaching the
/// return value to the first line that contributed it.
#[derive(Debug, Clone, Default, PartialEq)]
struct Summary {
    ret: BTreeMap<u32, u32>,
    param_sink: BTreeMap<usize, BTreeSet<SinkLoc>>,
    param_escape: BTreeSet<usize>,
}

/// Function-local interpreter state.
struct Local {
    f: FnId,
    file: usize,
    vars: BTreeMap<String, Set>,
    ret: BTreeMap<u32, u32>,
    param_sink: BTreeMap<usize, BTreeSet<SinkLoc>>,
    param_escape: BTreeSet<usize>,
    /// Branch nesting depth: assignments inside branches union instead of
    /// replacing, so either arm's taint survives the join.
    depth: u32,
}

struct Analyzer<'a> {
    ws: &'a Workspace,
    /// Files that parsed with zero recoveries; only these may retract.
    clean: Vec<bool>,
    sites: Vec<Site>,
    site_at: BTreeMap<(usize, u32), u32>,
    sums: Vec<Summary>,
    /// Struct-field taint, closed-world: `(type head, field)` → sites.
    fields: BTreeMap<(String, String), Set>,
    fields_dirty: bool,
    escaped: Set,
    /// Sites named by a T01/T02 diagnostic (subsumed, so retractable).
    reported: Set,
    findings: BTreeSet<(u32, SinkLoc)>,
    callers: Vec<BTreeSet<FnId>>,
    /// Cross-unit resolved edges: `(callee, caller unit)`.
    cross: BTreeSet<(FnId, String)>,
    /// Greatest-fixpoint "parameter flows only into stream expanders".
    expander: Vec<Vec<bool>>,
    exp_changed: bool,
    exp_recording: bool,
    /// Lines whose seed arithmetic is expander-consumed / raw.
    exp_lines: BTreeSet<(usize, u32)>,
    bare_lines: BTreeSet<(usize, u32)>,
    changed: bool,
    stats: Stats,
}

/// Runs the full semantic pass over a resolved workspace. `heuristics`
/// are the *pre-suppression* heuristic diagnostics; the retract set is
/// phrased against them.
pub fn analyze(ws: &Workspace, heuristics: &[Diag]) -> Outcome {
    let mut an = Analyzer {
        ws,
        clean: ws.files.iter().map(|f| f.ast.recovered == 0).collect(),
        sites: Vec::new(),
        site_at: BTreeMap::new(),
        sums: vec![Summary::default(); ws.fns.len()],
        fields: BTreeMap::new(),
        fields_dirty: false,
        escaped: Set::new(),
        reported: Set::new(),
        findings: BTreeSet::new(),
        callers: vec![BTreeSet::new(); ws.fns.len()],
        cross: BTreeSet::new(),
        expander: ws.fns.iter().map(|r| vec![true; r.params.len()]).collect(),
        exp_changed: false,
        exp_recording: false,
        exp_lines: BTreeSet::new(),
        bare_lines: BTreeSet::new(),
        changed: false,
        stats: Stats::default(),
    };
    an.collect_sites_and_edges();
    an.fixpoint();
    an.api_escape();
    an.expander_fixpoint();
    let mut diags = an.t_diags();
    diags.extend(an.a02());
    let retract = an.retractions(heuristics);
    an.stats.functions = ws.fns.len();
    an.stats.taint_sites = an.sites.len();
    Outcome {
        diags,
        retract,
        stats: an.stats,
    }
}

impl<'a> Analyzer<'a> {
    // ----- pre-pass: sites and call-graph edges -------------------------

    fn collect_sites_and_edges(&mut self) {
        for f in 0..self.ws.fns.len() {
            let rec = &self.ws.fns[f];
            if !self.clean[rec.file] {
                continue;
            }
            let Some(body) = self.ws.fn_body(f) else {
                continue;
            };
            let mut exprs: Vec<&Expr> = Vec::new();
            crate::ast::walk_block(body, &mut |e| exprs.push(e));
            for e in exprs {
                if let Some((kind, line)) = self.source_of(f, e) {
                    let id = self.sites.len() as u32;
                    let file = self.ws.fns[f].file;
                    if self.site_at.insert((file, e.span.lo), id).is_none() {
                        self.sites.push(Site { kind, file, line });
                    }
                }
                match self.call_target(f, e) {
                    None => {}
                    Some(CallTarget::Resolved(id)) => self.edge(f, &[id]),
                    Some(CallTarget::Trait(ids)) => self.edge(f, &ids),
                    Some(CallTarget::Std) | Some(CallTarget::Constructor) => {
                        self.stats.resolved_calls += 1;
                    }
                    Some(CallTarget::Unresolved(_)) => self.stats.unresolved_calls += 1,
                }
            }
        }
    }

    fn edge(&mut self, caller: FnId, callees: &[FnId]) {
        self.stats.resolved_calls += 1;
        let unit = self.ws.fns[caller].unit.clone();
        for &id in callees {
            self.callers[id].insert(caller);
            if self.ws.fns[id].unit != unit {
                self.cross.insert((id, unit.clone()));
            }
        }
    }

    /// The resolution target of a call expression, or `None` for
    /// non-calls.
    fn call_target(&self, f: FnId, e: &Expr) -> Option<CallTarget> {
        let rec = &self.ws.fns[f];
        match &e.kind {
            ExprKind::Call { callee, .. } => match &callee.kind {
                ExprKind::Path(segs) => Some(self.ws.resolve_path_call(rec.file, segs)),
                _ => Some(CallTarget::Unresolved(UnresolvedKind::Local)),
            },
            ExprKind::MethodCall { recv, method, .. } => {
                let rty = self.ws.infer(&self.ws.envs[f], rec, recv);
                Some(self.ws.resolve_method(&rec.unit, rty.as_ref(), method))
            }
            _ => None,
        }
    }

    /// Classifies `e` as a taint source.
    fn source_of(&self, f: FnId, e: &Expr) -> Option<(SourceKind, u32)> {
        let rec = &self.ws.fns[f];
        let rel = &self.ws.files[rec.file].rel;
        match &e.kind {
            ExprKind::Call { callee, .. } => {
                let ExprKind::Path(segs) = &callee.kind else {
                    return None;
                };
                let last = segs.last().map(String::as_str).unwrap_or("");
                let prev = segs
                    .len()
                    .checked_sub(2)
                    .map(|i| segs[i].as_str())
                    .unwrap_or("");
                if last == "now" && matches!(prev, "Instant" | "SystemTime") {
                    if clock_exempt(rel) {
                        return None;
                    }
                    return Some((SourceKind::Clock, e.span.line));
                }
                if last == "available_parallelism" || (last == "current" && prev == "thread") {
                    return Some((SourceKind::WorkerIdx, e.span.line));
                }
                None
            }
            ExprKind::MethodCall { recv, method, .. } => {
                if !HASH_ITER_METHODS.contains(&method.as_str()) {
                    return None;
                }
                let rty = self.ws.infer(&self.ws.envs[f], rec, recv)?;
                if matches!(rty.unwrapped_head(), "HashMap" | "HashSet") {
                    Some((SourceKind::HashIter, recv.span.line))
                } else {
                    None
                }
            }
            ExprKind::ForLoop { iter, .. } => {
                let rty = self.ws.infer(&self.ws.envs[f], rec, iter)?;
                if matches!(rty.unwrapped_head(), "HashMap" | "HashSet") {
                    Some((SourceKind::HashIter, e.span.line))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    // ----- value-flow fixpoint ------------------------------------------

    fn fixpoint(&mut self) {
        for _ in 0..24 {
            self.changed = false;
            self.fields_dirty = false;
            for f in 0..self.ws.fns.len() {
                self.analyze_fn(f);
            }
            if !self.changed && !self.fields_dirty {
                break;
            }
        }
    }

    fn analyze_fn(&mut self, f: FnId) {
        let rec = &self.ws.fns[f];
        if !self.clean[rec.file] {
            return;
        }
        let Some(body) = self.ws.fn_body(f) else {
            return;
        };
        let mut l = Local {
            f,
            file: rec.file,
            vars: BTreeMap::new(),
            ret: BTreeMap::new(),
            param_sink: BTreeMap::new(),
            param_escape: BTreeSet::new(),
            depth: 0,
        };
        for (i, (names, _)) in rec.params.iter().enumerate() {
            for n in names {
                l.vars
                    .insert(n.clone(), [PARAM_BASE + i as u32].into_iter().collect());
            }
        }
        if rec.has_self {
            l.vars
                .insert("self".to_string(), [SELF_TOK].into_iter().collect());
        }
        // Two passes so loop-carried taint (`a = b; b = tainted;` inside a
        // loop body) stabilizes within one summary computation.
        let tail_line = match body.stmts.last() {
            Some(Stmt::Expr(e, false)) => e.span.line,
            _ => rec.line,
        };
        for _ in 0..2 {
            let v = self.eval_block(&mut l, body);
            join_ret(&mut l.ret, &v, tail_line);
        }
        let mut sum = Summary {
            ret: l.ret,
            param_sink: l.param_sink,
            param_escape: l.param_escape,
        };
        if SINK_NAMES.contains(&self.ws.fns[f].name.as_str()) {
            // The function *is* an emission path: anything in its return
            // value has been emitted.
            let rec = &self.ws.fns[f];
            let (file, qual) = (rec.file, rec.qual.clone());
            for (&tok, &line) in sum.ret.clone().iter() {
                if tok < PARAM_BASE {
                    self.findings.insert((tok, (file, line, qual.clone())));
                } else if tok != SELF_TOK {
                    sum.param_sink
                        .entry((tok - PARAM_BASE) as usize)
                        .or_default()
                        .insert((file, line, qual.clone()));
                }
            }
        }
        self.merge_summary(f, sum);
    }

    fn merge_summary(&mut self, f: FnId, new: Summary) {
        let old = &mut self.sums[f];
        for (tok, line) in new.ret {
            if let std::collections::btree_map::Entry::Vacant(v) = old.ret.entry(tok) {
                v.insert(line);
                self.changed = true;
            }
        }
        for (i, locs) in new.param_sink {
            let e = old.param_sink.entry(i).or_default();
            for loc in locs {
                if e.insert(loc) {
                    self.changed = true;
                }
            }
        }
        for i in new.param_escape {
            if old.param_escape.insert(i) {
                self.changed = true;
            }
        }
    }

    fn eval_block(&mut self, l: &mut Local, b: &Block) -> Set {
        let mut val = Set::new();
        let n = b.stmts.len();
        for (i, st) in b.stmts.iter().enumerate() {
            match st {
                Stmt::Let(ls) => {
                    let s = ls
                        .init
                        .as_ref()
                        .map(|e| self.eval(l, e))
                        .unwrap_or_default();
                    bind_pat(l, &ls.pat, &s);
                    if let Some(els) = &ls.els {
                        l.depth += 1;
                        self.eval_block(l, els);
                        l.depth -= 1;
                    }
                }
                Stmt::Expr(e, semi) => {
                    let s = self.eval(l, e);
                    if i + 1 == n && !semi {
                        val = s;
                    }
                }
                Stmt::Item(_) => {}
            }
        }
        val
    }

    fn eval(&mut self, l: &mut Local, e: &Expr) -> Set {
        match &e.kind {
            ExprKind::Lit(_) | ExprKind::Continue | ExprKind::Unknown => Set::new(),
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    l.vars.get(&segs[0]).cloned().unwrap_or_default()
                } else {
                    Set::new()
                }
            }
            ExprKind::Unary(_, i) | ExprKind::Cast(i, _) | ExprKind::Try(i) => self.eval(l, i),
            ExprKind::Ref { inner, .. } => self.eval(l, inner),
            ExprKind::Binary(_, a, b) => {
                let mut s = self.eval(l, a);
                s.extend(self.eval(l, b));
                s
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let r = self.eval(l, rhs);
                self.assign(l, lhs, &r, op.is_some());
                Set::new()
            }
            ExprKind::Call { callee, args } => self.eval_call(l, e, callee, args),
            ExprKind::MethodCall {
                recv,
                method,
                turbofish,
                args,
                ..
            } => self.eval_method(l, e, recv, method, turbofish.as_deref(), args),
            ExprKind::Field(base, name) => {
                let bs = self.eval(l, base);
                let bt = self.ws.infer(&self.ws.envs[l.f], &self.ws.fns[l.f], base);
                if let Some(t) = bt {
                    let head = t.unwrapped_head().to_string();
                    if self.ws.structs.contains_key(&head) {
                        // Field-precise: every construction and write site
                        // feeds the global field map, so a known struct's
                        // field read takes exactly that — the base value's
                        // own taint (the *other* fields) does not leak in.
                        return self
                            .fields
                            .get(&(head, name.clone()))
                            .cloned()
                            .unwrap_or_default();
                    }
                }
                bs
            }
            ExprKind::Index(a, b) => {
                let mut s = self.eval(l, a);
                s.extend(self.eval(l, b));
                s
            }
            ExprKind::Tuple(v) | ExprKind::Array(v) => {
                let mut s = Set::new();
                for x in v {
                    s.extend(self.eval(l, x));
                }
                s
            }
            ExprKind::StructLit { path, fields, rest } => {
                let head = path.last().cloned().unwrap_or_default();
                let mut val = Set::new();
                for (fname, fe) in fields {
                    let s = self.eval(l, fe);
                    self.taint_field(&head, fname, &s);
                    val.extend(s);
                }
                if let Some(r) = rest {
                    val.extend(self.eval(l, r));
                }
                val
            }
            ExprKind::MacroCall { path, args } => self.eval_macro(l, path, args),
            ExprKind::If { cond, then, els } => {
                self.eval_cond(l, cond);
                l.depth += 1;
                let mut s = self.eval_block(l, then);
                if let Some(e) = els {
                    s.extend(self.eval(l, e));
                }
                l.depth -= 1;
                s
            }
            ExprKind::LetCond { pat, scrut } => {
                let s = self.eval(l, scrut);
                bind_pat(l, pat, &s);
                Set::new()
            }
            ExprKind::Match { scrut, arms } => {
                let s = self.eval(l, scrut);
                l.depth += 1;
                let mut val = Set::new();
                for arm in arms {
                    bind_pat(l, &arm.pat, &s);
                    if let Some(g) = &arm.guard {
                        self.eval(l, g);
                    }
                    val.extend(self.eval(l, &arm.body));
                }
                l.depth -= 1;
                val
            }
            ExprKind::While { cond, body } => {
                self.eval_cond(l, cond);
                l.depth += 1;
                self.eval_block(l, body);
                l.depth -= 1;
                Set::new()
            }
            ExprKind::ForLoop { pat, iter, body } => {
                let mut it = self.eval(l, iter);
                if let Some(&tok) = self.site_at.get(&(l.file, e.span.lo)) {
                    it.insert(tok);
                }
                bind_pat(l, pat, &it);
                l.depth += 1;
                self.eval_block(l, body);
                l.depth -= 1;
                Set::new()
            }
            ExprKind::Loop(b) => {
                l.depth += 1;
                self.eval_block(l, b);
                l.depth -= 1;
                Set::new()
            }
            ExprKind::Block(b) => self.eval_block(l, b),
            ExprKind::Closure { .. } => self.eval_closure(l, e, &Set::new()),
            ExprKind::Return(inner) => {
                if let Some(i) = inner {
                    let s = self.eval(l, i);
                    join_ret(&mut l.ret, &s, i.span.line);
                }
                Set::new()
            }
            ExprKind::Break(inner) => {
                if let Some(i) = inner {
                    self.eval(l, i);
                }
                Set::new()
            }
            ExprKind::Range(a, b) => {
                let mut s = Set::new();
                if let Some(a) = a {
                    s.extend(self.eval(l, a));
                }
                if let Some(b) = b {
                    s.extend(self.eval(l, b));
                }
                s
            }
        }
    }

    fn eval_cond(&mut self, l: &mut Local, cond: &Expr) {
        self.eval(l, cond);
    }

    /// A closure in argument position: its parameters inherit the seed
    /// taint (the receiver/sibling arguments), its body value is the
    /// result. A standalone closure's body value approximates its
    /// captures.
    fn eval_closure(&mut self, l: &mut Local, e: &Expr, seed: &Set) -> Set {
        let ExprKind::Closure { params, body } = &e.kind else {
            return self.eval(l, e);
        };
        for p in params {
            bind_pat(l, p, seed);
        }
        self.eval(l, body)
    }

    /// Evaluates argument lists with closure seeding: plain arguments
    /// first, then closures with the union of receiver + plain arguments.
    fn eval_args(&mut self, l: &mut Local, args: &[Expr], recv: &Set) -> (Vec<Set>, Set) {
        let mut sets: Vec<Option<Set>> = Vec::with_capacity(args.len());
        let mut plain = recv.clone();
        for a in args {
            if matches!(a.kind, ExprKind::Closure { .. }) {
                sets.push(None);
            } else {
                let s = self.eval(l, a);
                plain.extend(s.iter().copied());
                sets.push(Some(s));
            }
        }
        let mut union = plain.clone();
        let out = args
            .iter()
            .zip(sets)
            .map(|(a, s)| match s {
                Some(s) => s,
                None => {
                    let s = self.eval_closure(l, a, &plain);
                    union.extend(s.iter().copied());
                    s
                }
            })
            .collect();
        (out, union)
    }

    fn eval_call(&mut self, l: &mut Local, e: &Expr, callee: &Expr, args: &[Expr]) -> Set {
        let site = self.site_at.get(&(l.file, e.span.lo)).copied();
        let (argsets, union) = self.eval_args(l, args, &Set::new());
        let mut out = match &callee.kind {
            ExprKind::Path(segs) => {
                match self.ws.resolve_path_call(self.ws.fns[l.f].file, segs) {
                    CallTarget::Resolved(id) => self.apply_call(l, id, None, &argsets),
                    CallTarget::Trait(ids) => {
                        let mut s = Set::new();
                        for id in ids {
                            s.extend(self.apply_call(l, id, None, &argsets));
                        }
                        s
                    }
                    CallTarget::Std | CallTarget::Constructor => union,
                    CallTarget::Unresolved(_) => {
                        let name = segs.last().map(String::as_str).unwrap_or("");
                        if SINK_NAMES.contains(&name) {
                            let loc = (l.file, e.span.line, name.to_string());
                            self.record_sink(l, &union, &loc);
                        } else {
                            // An unresolvable free call may do anything
                            // with its arguments: the taint escapes.
                            self.record_escape(l, &union);
                        }
                        union
                    }
                }
            }
            // A call through a local (closure value, fn value): the value
            // of the callee plus the arguments, no escape.
            _ => {
                let mut s = self.eval(l, callee);
                s.extend(union);
                s
            }
        };
        if let Some(tok) = site {
            out.insert(tok);
        }
        out
    }

    fn eval_method(
        &mut self,
        l: &mut Local,
        e: &Expr,
        recv: &Expr,
        method: &str,
        turbofish: Option<&str>,
        args: &[Expr],
    ) -> Set {
        let site = self.site_at.get(&(l.file, e.span.lo)).copied();
        let r = self.eval(l, recv);
        let rty = self.ws.infer(&self.ws.envs[l.f], &self.ws.fns[l.f], recv);
        let (argsets, mut union) = self.eval_args(l, args, &r);
        let finish = |mut s: Set| {
            if let Some(tok) = site {
                s.insert(tok);
            }
            s
        };

        // Order-restoring / order-insensitive terminals sanitize the
        // hash-iteration component of the taint.
        if method.starts_with("sort") || method.starts_with("dedup") {
            if let Some(v) = root_var(recv) {
                if let Some(s) = l.vars.get_mut(&v) {
                    strip_hash(&self.sites, s);
                }
            }
            return finish(Set::new());
        }
        match method {
            "collect" => {
                if turbofish.is_some_and(|t| t.starts_with("BTree")) {
                    strip_hash(&self.sites, &mut union);
                }
                return finish(union);
            }
            "sum" | "product" => {
                let float = turbofish.is_some_and(|t| t.starts_with('f'));
                if !float {
                    strip_hash(&self.sites, &mut union);
                }
                return finish(union);
            }
            "count" | "len" | "min" | "max" => {
                let mut s = r;
                strip_hash(&self.sites, &mut s);
                return finish(s);
            }
            _ => {}
        }

        let target = self
            .ws
            .resolve_method(&self.ws.fns[l.f].unit, rty.as_ref(), method);
        let trace_recv = rty.as_ref().is_some_and(|t| t.unwrapped_head() == "Trace")
            || matches!(&target, CallTarget::Resolved(id)
                if self.ws.fns[*id].impl_ty.as_deref() == Some("Trace"));
        if TRACE_SINK_METHODS.contains(&method) && trace_recv {
            let mut emitted = Set::new();
            for s in &argsets {
                emitted.extend(s.iter().copied());
            }
            let loc = (l.file, e.span.line, format!("Trace::{method}"));
            self.record_sink(l, &emitted, &loc);
            return finish(Set::new());
        }

        match target {
            CallTarget::Resolved(id) => finish(self.apply_call(l, id, Some(&r), &argsets)),
            CallTarget::Trait(ids) => {
                let mut s = Set::new();
                for id in ids {
                    s.extend(self.apply_call(l, id, Some(&r), &argsets));
                }
                finish(s)
            }
            CallTarget::Std | CallTarget::Constructor => finish(union),
            CallTarget::Unresolved(_) => {
                if SINK_NAMES.contains(&method) {
                    let loc = (l.file, e.span.line, method.to_string());
                    self.record_sink(l, &union, &loc);
                    return finish(Set::new());
                }
                // Unknown method on a local: model it as a mutation
                // (`push` semantics) plus value propagation.
                if let Some(v) = root_var(recv) {
                    let mut arg_union = Set::new();
                    for s in &argsets {
                        arg_union.extend(s.iter().copied());
                    }
                    l.vars.entry(v).or_default().extend(arg_union);
                }
                finish(union)
            }
        }
    }

    fn eval_macro(&mut self, l: &mut Local, path: &[String], args: &[Expr]) -> Set {
        let name = path.last().map(String::as_str).unwrap_or("");
        if name.starts_with("assert")
            || name.starts_with("debug_assert")
            || matches!(name, "panic" | "unreachable" | "todo" | "matches")
        {
            for a in args {
                self.eval(l, a);
            }
            return Set::new();
        }
        if matches!(name, "write" | "writeln") {
            let mut s = Set::new();
            for a in args.iter().skip(1) {
                s.extend(self.eval(l, a));
            }
            if let Some(buf) = args.first() {
                self.eval(l, buf);
                if let Some(v) = root_var(buf) {
                    l.vars.entry(v).or_default().extend(s);
                }
            }
            return Set::new();
        }
        // Console output is not an emission path (the determinism
        // contract covers JSONL and trace artifacts): evaluate for side
        // effects, consume the taint.
        if matches!(name, "println" | "print" | "eprintln" | "eprint") {
            for a in args {
                self.eval(l, a);
            }
            return Set::new();
        }
        let mut s = Set::new();
        for a in args {
            s.extend(self.eval(l, a));
        }
        s
    }

    /// Applies a callee summary at a call site.
    fn apply_call(&mut self, l: &mut Local, id: FnId, recv: Option<&Set>, argsets: &[Set]) -> Set {
        let sum = self.sums[id].clone();
        let mut out = Set::new();
        for &tok in sum.ret.keys() {
            if tok == SELF_TOK {
                if let Some(r) = recv {
                    out.extend(r.iter().copied());
                }
            } else if tok >= PARAM_BASE {
                if let Some(s) = argsets.get((tok - PARAM_BASE) as usize) {
                    out.extend(s.iter().copied());
                }
            } else {
                out.insert(tok);
            }
        }
        for (&i, locs) in &sum.param_sink {
            if let Some(s) = argsets.get(i) {
                for loc in locs {
                    self.record_sink(l, s, loc);
                }
            }
        }
        for &i in &sum.param_escape {
            if let Some(s) = argsets.get(i) {
                self.record_escape(l, s);
            }
        }
        out
    }

    fn record_sink(&mut self, l: &mut Local, set: &Set, loc: &SinkLoc) {
        for &tok in set {
            if tok < PARAM_BASE {
                self.findings.insert((tok, loc.clone()));
            } else if tok != SELF_TOK {
                l.param_sink
                    .entry((tok - PARAM_BASE) as usize)
                    .or_default()
                    .insert(loc.clone());
            }
        }
    }

    fn record_escape(&mut self, l: &mut Local, set: &Set) {
        for &tok in set {
            if tok < PARAM_BASE {
                self.escaped.insert(tok);
            } else if tok != SELF_TOK {
                l.param_escape.insert((tok - PARAM_BASE) as usize);
            }
        }
    }

    fn taint_field(&mut self, head: &str, field: &str, set: &Set) {
        // The field map is global, so only site tokens (which mean the
        // same thing everywhere) may enter it.
        let sites: Vec<u32> = set.iter().copied().filter(|&t| t < PARAM_BASE).collect();
        if sites.is_empty() {
            return;
        }
        let e = self
            .fields
            .entry((head.to_string(), field.to_string()))
            .or_default();
        for t in sites {
            if e.insert(t) {
                self.fields_dirty = true;
            }
        }
    }

    fn assign(&mut self, l: &mut Local, lhs: &Expr, rhs: &Set, compound: bool) {
        if let ExprKind::Field(base, name) = &lhs.kind {
            let bt = self.ws.infer(&self.ws.envs[l.f], &self.ws.fns[l.f], base);
            if let Some(t) = bt {
                let head = t.unwrapped_head().to_string();
                if self.ws.structs.contains_key(&head) {
                    self.taint_field(&head, name, rhs);
                }
            }
        }
        match (&lhs.kind, root_var(lhs)) {
            (ExprKind::Path(segs), _) if segs.len() == 1 => {
                if !compound && l.depth == 0 {
                    l.vars.insert(segs[0].clone(), rhs.clone());
                } else {
                    l.vars
                        .entry(segs[0].clone())
                        .or_default()
                        .extend(rhs.iter().copied());
                }
            }
            (_, Some(v)) => {
                l.vars.entry(v).or_default().extend(rhs.iter().copied());
            }
            _ => {}
        }
    }

    // ----- post-fixpoint classification ---------------------------------

    /// A `pub` function no workspace code calls is API surface: its
    /// return-value taint escapes the analysis horizon.
    fn api_escape(&mut self) {
        for f in 0..self.ws.fns.len() {
            let rec = &self.ws.fns[f];
            if !rec.vis_pub || !self.callers[f].is_empty() || !self.clean[rec.file] {
                continue;
            }
            for &tok in self.sums[f].ret.keys() {
                if tok < PARAM_BASE {
                    self.escaped.insert(tok);
                }
            }
        }
    }

    fn t_diags(&mut self) -> Vec<Diag> {
        let mut out = Vec::new();
        for (tok, (file, line, qual)) in self.findings.clone() {
            let site = &self.sites[tok as usize];
            self.reported.insert(tok);
            out.push(Diag {
                path: self.ws.files[file].rel.clone(),
                line,
                rule: "T01",
                message: format!(
                    "value tainted by {} ({}:{}) reaches emission path `{qual}`",
                    site.kind.describe(),
                    self.ws.files[site.file].rel,
                    site.line
                ),
            });
        }
        let mut seen: BTreeSet<(FnId, u32)> = BTreeSet::new();
        for (callee, unit) in self.cross.clone() {
            let rec = &self.ws.fns[callee];
            if !rec.vis_pub {
                continue;
            }
            for &tok in self.sums[callee].ret.keys() {
                if tok >= PARAM_BASE {
                    continue;
                }
                let site = &self.sites[tok as usize];
                // Clock taint is allowed across APIs: wall-clock
                // instrumentation is sanctioned, only order/parallelism
                // taint breaks cross-crate determinism contracts.
                if !matches!(site.kind, SourceKind::HashIter | SourceKind::WorkerIdx) {
                    continue;
                }
                if !seen.insert((callee, tok)) {
                    continue;
                }
                self.reported.insert(tok);
                out.push(Diag {
                    path: self.ws.files[rec.file].rel.clone(),
                    line: rec.line,
                    rule: "T02",
                    message: format!(
                        "pub fn `{}` returns a value tainted by {} ({}:{}); the taint \
                         crosses the crate API into `{unit}`",
                        rec.qual,
                        site.kind.describe(),
                        self.ws.files[site.file].rel,
                        site.line
                    ),
                });
            }
        }
        out
    }

    // ----- A02: unchecked products into accounting accumulators ---------

    fn a02(&mut self) -> Vec<Diag> {
        let mut found: BTreeSet<(usize, u32, String)> = BTreeSet::new();
        for f in 0..self.ws.fns.len() {
            let rec = &self.ws.fns[f];
            let rel = &self.ws.files[rec.file].rel;
            if rec.cfg_test || !self.clean[rec.file] || !is_accounting(rel) || !is_library(rel) {
                continue;
            }
            let Some(body) = self.ws.fn_body(f) else {
                continue;
            };
            let mut exprs: Vec<&Expr> = Vec::new();
            crate::ast::walk_block(body, &mut |e| exprs.push(e));
            for e in exprs {
                let ExprKind::Assign {
                    op: Some(BinOp::Add | BinOp::Mul),
                    lhs,
                    rhs,
                } = &e.kind
                else {
                    continue;
                };
                let name = match &lhs.kind {
                    ExprKind::Path(segs) if segs.len() == 1 => segs[0].clone(),
                    ExprKind::Field(_, n) => n.clone(),
                    _ => continue,
                };
                let mut hit = false;
                crate::ast::walk_expr(rhs, &mut |sub| {
                    if hit {
                        return;
                    }
                    if let ExprKind::Binary(BinOp::Mul, a, b) = &sub.kind {
                        let both_lit = matches!(a.kind, ExprKind::Lit(_))
                            && matches!(b.kind, ExprKind::Lit(_));
                        if !both_lit && self.is_int(f, a) && self.is_int(f, b) {
                            hit = true;
                        }
                    }
                });
                if hit {
                    found.insert((rec.file, e.span.line, name));
                }
            }
        }
        found
            .into_iter()
            .map(|(file, line, name)| Diag {
                path: self.ws.files[file].rel.clone(),
                line,
                rule: "A02",
                message: format!(
                    "accumulator `{name}` absorbs an unchecked integer product; \
                     compute it with checked_mul(…).expect(\"named bound\") or a \
                     saturating form"
                ),
            })
            .collect()
    }

    fn is_int(&self, f: FnId, e: &Expr) -> bool {
        self.ws
            .infer(&self.ws.envs[f], &self.ws.fns[f], e)
            .is_some_and(|t| INT_HEADS.contains(&t.unwrapped_head()))
    }

    // ----- D03 expander analysis ----------------------------------------

    fn expander_fixpoint(&mut self) {
        for _ in 0..12 {
            self.exp_changed = false;
            self.expander_pass();
            if !self.exp_changed {
                break;
            }
        }
        self.exp_recording = true;
        self.expander_pass();
        self.exp_recording = false;
    }

    fn expander_pass(&mut self) {
        for f in 0..self.ws.fns.len() {
            if !self.clean[self.ws.fns[f].file] {
                continue;
            }
            let Some(body) = self.ws.fn_body(f) else {
                continue;
            };
            self.scan_exp_block(f, body);
        }
    }

    fn scan_exp_block(&mut self, f: FnId, b: &Block) {
        for st in &b.stmts {
            match st {
                Stmt::Let(ls) => {
                    if let Some(init) = &ls.init {
                        self.scan_exp(f, init, false, false);
                    }
                    if let Some(els) = &ls.els {
                        self.scan_exp_block(f, els);
                    }
                }
                Stmt::Expr(e, _) => self.scan_exp(f, e, false, false),
                Stmt::Item(_) => {}
            }
        }
    }

    fn scan_exp(&mut self, f: FnId, e: &Expr, in_exp: bool, in_arith: bool) {
        match &e.kind {
            ExprKind::Lit(_) | ExprKind::Continue | ExprKind::Unknown => {}
            ExprKind::Path(segs) => {
                let leaf = segs.last().map(String::as_str).unwrap_or("");
                if segs.len() == 1 && !in_exp {
                    self.clear_expander_param(f, leaf);
                }
                if in_arith && seedish(leaf) {
                    self.record_seed_line(f, e.span.line, in_exp);
                }
            }
            ExprKind::Field(base, name) => {
                if in_arith && seedish(name) {
                    self.record_seed_line(f, e.span.line, in_exp);
                }
                self.scan_exp(f, base, in_exp, in_arith);
            }
            ExprKind::Unary(_, i) | ExprKind::Cast(i, _) | ExprKind::Try(i) => {
                self.scan_exp(f, i, in_exp, in_arith)
            }
            ExprKind::Ref { inner, .. } => self.scan_exp(f, inner, in_exp, in_arith),
            ExprKind::Tuple(v) if v.len() == 1 => self.scan_exp(f, &v[0], in_exp, in_arith),
            ExprKind::Binary(op, a, b) => {
                let ar = matches!(
                    op,
                    BinOp::Add
                        | BinOp::Sub
                        | BinOp::Mul
                        | BinOp::Rem
                        | BinOp::BitXor
                        | BinOp::Shl
                        | BinOp::Shr
                );
                let e2 = if ar { in_exp } else { false };
                self.scan_exp(f, a, e2, ar);
                self.scan_exp(f, b, e2, ar);
            }
            ExprKind::MethodCall {
                recv, method, args, ..
            } => {
                if method.starts_with("wrapping_")
                    || method.starts_with("rotate_")
                    || method.starts_with("overflowing_")
                    || method.starts_with("checked_")
                    || method.starts_with("saturating_")
                {
                    self.scan_exp(f, recv, in_exp, true);
                    for a in args {
                        self.scan_exp(f, a, in_exp, true);
                    }
                } else if matches!(method.as_str(), "seed_from_u64" | "derive") {
                    self.scan_exp(f, recv, false, false);
                    for a in args {
                        self.scan_exp(f, a, true, false);
                    }
                } else {
                    self.scan_exp(f, recv, false, false);
                    let flags = self.method_arg_expander_flags(f, recv, method, args.len());
                    for (i, a) in args.iter().enumerate() {
                        let exp = flags.get(i).copied().unwrap_or(false);
                        self.scan_exp(f, a, exp, false);
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                self.scan_exp(f, callee, false, false);
                if expander_path(callee) {
                    for a in args {
                        self.scan_exp(f, a, true, false);
                    }
                } else {
                    let flags = self.call_arg_expander_flags(f, callee, args.len());
                    for (i, a) in args.iter().enumerate() {
                        let exp = flags.get(i).copied().unwrap_or(false);
                        self.scan_exp(f, a, exp, false);
                    }
                }
            }
            ExprKind::MacroCall { args, .. } => {
                for a in args {
                    self.scan_exp(f, a, false, false);
                }
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                self.scan_exp(f, lhs, false, false);
                self.scan_exp(f, rhs, false, false);
            }
            ExprKind::If { cond, then, els } => {
                self.scan_exp(f, cond, false, false);
                self.scan_exp_block(f, then);
                if let Some(e) = els {
                    self.scan_exp(f, e, false, false);
                }
            }
            ExprKind::LetCond { scrut, .. } => self.scan_exp(f, scrut, false, false),
            ExprKind::Match { scrut, arms } => {
                self.scan_exp(f, scrut, false, false);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.scan_exp(f, g, false, false);
                    }
                    self.scan_exp(f, &arm.body, false, false);
                }
            }
            ExprKind::While { cond, body } => {
                self.scan_exp(f, cond, false, false);
                self.scan_exp_block(f, body);
            }
            ExprKind::ForLoop { iter, body, .. } => {
                self.scan_exp(f, iter, false, false);
                self.scan_exp_block(f, body);
            }
            ExprKind::Loop(b) | ExprKind::Block(b) => self.scan_exp_block(f, b),
            ExprKind::Closure { body, .. } => self.scan_exp(f, body, false, false),
            ExprKind::Return(i) | ExprKind::Break(i) => {
                if let Some(i) = i {
                    self.scan_exp(f, i, false, false);
                }
            }
            ExprKind::Range(a, b) => {
                if let Some(a) = a {
                    self.scan_exp(f, a, false, false);
                }
                if let Some(b) = b {
                    self.scan_exp(f, b, false, false);
                }
            }
            ExprKind::StructLit { fields, rest, .. } => {
                for (_, fe) in fields {
                    self.scan_exp(f, fe, false, false);
                }
                if let Some(r) = rest {
                    self.scan_exp(f, r, false, false);
                }
            }
            ExprKind::Index(a, b) => {
                self.scan_exp(f, a, false, false);
                self.scan_exp(f, b, false, false);
            }
            ExprKind::Tuple(v) | ExprKind::Array(v) => {
                for x in v {
                    self.scan_exp(f, x, false, false);
                }
            }
        }
    }

    fn clear_expander_param(&mut self, f: FnId, name: &str) {
        let rec = &self.ws.fns[f];
        for (i, (names, _)) in rec.params.iter().enumerate() {
            if names.iter().any(|n| n == name) && self.expander[f][i] {
                self.expander[f][i] = false;
                self.exp_changed = true;
            }
        }
    }

    fn record_seed_line(&mut self, f: FnId, line: u32, in_exp: bool) {
        if !self.exp_recording {
            return;
        }
        let file = self.ws.fns[f].file;
        if in_exp {
            self.exp_lines.insert((file, line));
        } else {
            self.bare_lines.insert((file, line));
        }
    }

    /// Per-argument expander flags for a resolved (or name-unanimous)
    /// method call.
    fn method_arg_expander_flags(
        &self,
        f: FnId,
        recv: &Expr,
        method: &str,
        arity: usize,
    ) -> Vec<bool> {
        let rec = &self.ws.fns[f];
        let rty = self.ws.infer(&self.ws.envs[f], rec, recv);
        match self.ws.resolve_method(&rec.unit, rty.as_ref(), method) {
            CallTarget::Resolved(id) => self.expander[id].clone(),
            CallTarget::Trait(ids) => self.unanimous(&ids, arity),
            _ => {
                // Receiver type unknown: fall back to name unanimity
                // across every workspace method of that name with the
                // call's exact arity (Rust arity is fixed, so other
                // signatures cannot be the callee).
                let cands: Vec<FnId> = self
                    .ws
                    .methods_named(method)
                    .into_iter()
                    .filter(|&id| self.ws.fns[id].params.len() == arity)
                    .collect();
                self.unanimous(&cands, arity)
            }
        }
    }

    fn call_arg_expander_flags(&self, f: FnId, callee: &Expr, arity: usize) -> Vec<bool> {
        let ExprKind::Path(segs) = &callee.kind else {
            return vec![false; arity];
        };
        match self.ws.resolve_path_call(self.ws.fns[f].file, segs) {
            CallTarget::Resolved(id) => self.expander[id].clone(),
            CallTarget::Trait(ids) => self.unanimous(&ids, arity),
            _ => vec![false; arity],
        }
    }

    fn unanimous(&self, ids: &[FnId], arity: usize) -> Vec<bool> {
        if ids.is_empty() {
            return vec![false; arity];
        }
        (0..arity)
            .map(|i| {
                ids.iter()
                    .all(|&id| self.expander[id].get(i).copied().unwrap_or(false))
            })
            .collect()
    }

    // ----- retraction ---------------------------------------------------

    fn retractions(&self, heuristics: &[Diag]) -> BTreeSet<(String, u32, String)> {
        let path_idx: BTreeMap<&str, usize> = self
            .ws
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.rel.as_str(), i))
            .collect();
        let mut by_line: BTreeMap<(usize, u32, SourceKind), Vec<u32>> = BTreeMap::new();
        let mut by_file: BTreeMap<(usize, SourceKind), Vec<u32>> = BTreeMap::new();
        for (i, s) in self.sites.iter().enumerate() {
            by_line
                .entry((s.file, s.line, s.kind))
                .or_default()
                .push(i as u32);
            by_file.entry((s.file, s.kind)).or_default().push(i as u32);
        }
        // A heuristic diagnostic is retractable when every site behind it
        // is either proven safe (the taint dies) or subsumed by a T-series
        // finding; an escaped, unreported site keeps it.
        let ok = |tok: u32| !self.escaped.contains(&tok) || self.reported.contains(&tok);
        let mut out = BTreeSet::new();
        for d in heuristics {
            let Some(&fi) = path_idx.get(d.path.as_str()) else {
                continue;
            };
            if !self.clean[fi] {
                continue;
            }
            let retract = match d.rule {
                "D01" => by_line
                    .get(&(fi, d.line, SourceKind::HashIter))
                    .is_some_and(|sites| sites.iter().all(|&t| ok(t))),
                "D02" => match by_line.get(&(fi, d.line, SourceKind::Clock)) {
                    Some(sites) => sites.iter().all(|&t| ok(t)),
                    // A type- or use-position mention: harmless when every
                    // actual clock read in the file is safe.
                    None => by_file
                        .get(&(fi, SourceKind::Clock))
                        .map(|sites| sites.iter().all(|&t| ok(t)))
                        .unwrap_or(true),
                },
                "D03" => {
                    self.exp_lines.contains(&(fi, d.line))
                        && !self.bare_lines.contains(&(fi, d.line))
                }
                _ => false,
            };
            if retract {
                out.insert((d.path.clone(), d.line, d.rule.to_string()));
            }
        }
        out
    }
}

// ----- free helpers -----------------------------------------------------

fn join_ret(ret: &mut BTreeMap<u32, u32>, set: &Set, line: u32) {
    for &tok in set {
        ret.entry(tok).or_insert(line);
    }
}

fn bind_pat(l: &mut Local, pat: &Pat, set: &Set) {
    for name in &pat.bindings {
        l.vars.insert(name.clone(), set.clone());
    }
}

/// The single variable a place expression roots in, if any.
fn root_var(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) if segs.len() == 1 => Some(segs[0].clone()),
        ExprKind::Field(b, _) | ExprKind::Index(b, _) => root_var(b),
        ExprKind::Unary(_, i) | ExprKind::Try(i) | ExprKind::Cast(i, _) => root_var(i),
        ExprKind::Ref { inner, .. } => root_var(inner),
        ExprKind::Tuple(v) if v.len() == 1 => root_var(&v[0]),
        _ => None,
    }
}

fn strip_hash(sites: &[Site], s: &mut Set) {
    s.retain(|&tok| tok >= PARAM_BASE || sites[tok as usize].kind != SourceKind::HashIter);
}

fn clock_exempt(rel: &str) -> bool {
    rel.ends_with("util/src/bench.rs") || rel.contains("/benches/") || rel.starts_with("benches/")
}

fn seedish(name: &str) -> bool {
    name.starts_with(|c: char| c.is_lowercase() || c == '_')
        && name.to_ascii_lowercase().contains("seed")
}

/// Is `callee` a sanctioned stream-expander path (`Rng::seed_from_u64`,
/// `SplitMix64::new`, `SplitMix64::derive`)?
fn expander_path(callee: &Expr) -> bool {
    let ExprKind::Path(segs) = &callee.kind else {
        return false;
    };
    let last = segs.last().map(String::as_str).unwrap_or("");
    let prev = segs
        .len()
        .checked_sub(2)
        .map(|i| segs[i].as_str())
        .unwrap_or("");
    matches!(last, "seed_from_u64" | "derive") || (last == "new" && prev == "SplitMix64")
}

fn is_accounting(rel: &str) -> bool {
    rel.split('/')
        .any(|s| s.contains("energy") || s.contains("fault") || s.contains("cmp"))
}

fn is_library(rel: &str) -> bool {
    let segs: Vec<&str> = rel.split('/').collect();
    let file = segs.last().copied().unwrap_or("");
    !(segs
        .iter()
        .any(|s| matches!(*s, "tests" | "benches" | "examples" | "bin"))
        || matches!(file, "main.rs" | "build.rs"))
}

/// Whether a type is a hash container for site classification (used by
/// the unit tests).
#[cfg(test)]
fn is_hash_ty(t: &crate::ast::Ty) -> bool {
    matches!(t.unwrapped_head(), "HashMap" | "HashSet")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ty;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        Workspace::build(&owned)
    }

    fn run(files: &[(&str, &str)]) -> Outcome {
        let ws = ws_of(files);
        analyze(&ws, &[])
    }

    #[test]
    fn hash_taint_reaching_a_jsonl_sink_is_t01() {
        let src = "use std::collections::HashMap;\n\
                   pub struct R { pub m: HashMap<u64, u64> }\n\
                   impl R {\n\
                   pub fn jsonl(&self) -> String {\n\
                   let mut out = String::new();\n\
                   for (k, v) in self.m.iter() {\n\
                   out.push_str(&format!(\"{k}:{v}\\n\"));\n\
                   }\n\
                   out\n\
                   }\n\
                   }\n";
        let out = run(&[("crates/x/src/lib.rs", src)]);
        let t01: Vec<&Diag> = out.diags.iter().filter(|d| d.rule == "T01").collect();
        assert_eq!(t01.len(), 1, "diags: {:?}", out.diags);
        assert!(t01[0].message.contains("hash-iteration order"));
        assert!(t01[0].message.contains("R::jsonl"));
    }

    #[test]
    fn dead_clock_taint_retracts_the_heuristic() {
        let src = "use std::time::Instant;\n\
                   fn work() -> u64 {\n\
                   let t0 = Instant::now();\n\
                   let n = t0.elapsed().as_nanos() as u64;\n\
                   let _ = n;\n\
                   7\n\
                   }\n";
        let ws = ws_of(&[("crates/x/src/lib.rs", src)]);
        let heur = vec![
            Diag {
                path: "crates/x/src/lib.rs".to_string(),
                line: 1,
                rule: "D02",
                message: String::new(),
            },
            Diag {
                path: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: "D02",
                message: String::new(),
            },
        ];
        let out = analyze(&ws, &heur);
        assert!(out
            .retract
            .contains(&("crates/x/src/lib.rs".to_string(), 3, "D02".to_string())));
        assert!(out
            .retract
            .contains(&("crates/x/src/lib.rs".to_string(), 1, "D02".to_string())));
    }

    #[test]
    fn escaped_clock_taint_keeps_the_heuristic() {
        // `wall` reaches the return value of an uncalled pub fn: the
        // taint escapes the analysis horizon, so D02 stays.
        let src = "use std::time::Instant;\n\
                   pub fn wall() -> u128 {\n\
                   Instant::now().elapsed().as_nanos()\n\
                   }\n";
        let ws = ws_of(&[("crates/x/src/lib.rs", src)]);
        let heur = vec![Diag {
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            rule: "D02",
            message: String::new(),
        }];
        let out = analyze(&ws, &heur);
        assert!(out.retract.is_empty(), "retract: {:?}", out.retract);
    }

    #[test]
    fn hash_ret_crossing_units_is_t02() {
        let api = "use std::collections::HashMap;\n\
                   pub fn order_hint(m: &HashMap<u64, u64>) -> Vec<u64> {\n\
                   let mut out = Vec::new();\n\
                   for k in m.keys() {\n\
                   out.push(*k);\n\
                   }\n\
                   out\n\
                   }\n";
        let caller = "use t02_api::order_hint;\n\
                      use std::collections::HashMap;\n\
                      pub fn consume() -> usize {\n\
                      let m: HashMap<u64, u64> = HashMap::new();\n\
                      order_hint(&m).len()\n\
                      }\n";
        let out = run(&[("t02_api.rs", api), ("t02_caller.rs", caller)]);
        let t02: Vec<&Diag> = out.diags.iter().filter(|d| d.rule == "T02").collect();
        assert_eq!(t02.len(), 1, "diags: {:?}", out.diags);
        assert!(t02[0].message.contains("order_hint"));
        assert!(t02[0].message.contains("t02_caller"));
    }

    #[test]
    fn sorted_collection_sanitizes_hash_order() {
        let src = "use std::collections::HashMap;\n\
                   pub struct R { pub m: HashMap<u64, u64> }\n\
                   impl R {\n\
                   pub fn jsonl(&self) -> String {\n\
                   let mut ks: Vec<u64> = Vec::new();\n\
                   for k in self.m.keys() {\n\
                   ks.push(*k);\n\
                   }\n\
                   ks.sort();\n\
                   format!(\"{ks:?}\")\n\
                   }\n\
                   }\n";
        let out = run(&[("crates/x/src/lib.rs", src)]);
        assert!(
            out.diags.iter().all(|d| d.rule != "T01"),
            "diags: {:?}",
            out.diags
        );
    }

    #[test]
    fn expander_bound_seed_arith_retracts_d03() {
        let src = "pub struct Rng { s: u64 }\n\
                   impl Rng {\n\
                   pub fn seed_from_u64(s: u64) -> Rng { Rng { s } }\n\
                   }\n\
                   pub struct G { seed: u64 }\n\
                   impl G {\n\
                   pub fn stream(&self) -> Rng {\n\
                   Rng::seed_from_u64(self.seed ^ 0x9e37)\n\
                   }\n\
                   pub fn raw(&self) -> u64 {\n\
                   self.seed.wrapping_mul(6364136223846793005)\n\
                   }\n\
                   }\n";
        let ws = ws_of(&[("crates/x/src/lib.rs", src)]);
        let heur = vec![
            Diag {
                path: "crates/x/src/lib.rs".to_string(),
                line: 8,
                rule: "D03",
                message: String::new(),
            },
            Diag {
                path: "crates/x/src/lib.rs".to_string(),
                line: 12,
                rule: "D03",
                message: String::new(),
            },
        ];
        let out = analyze(&ws, &heur);
        assert!(out
            .retract
            .contains(&("crates/x/src/lib.rs".to_string(), 8, "D03".to_string())));
        assert!(!out
            .retract
            .contains(&("crates/x/src/lib.rs".to_string(), 12, "D03".to_string())));
    }

    #[test]
    fn a02_flags_unchecked_products_in_accounting_code() {
        let src = "pub struct E { total: u64 }\n\
                   impl E {\n\
                   pub fn add(&mut self, events: u64, pj: u64) {\n\
                   self.total += events * pj;\n\
                   }\n\
                   }\n";
        let out = run(&[("crates/energy/src/lib.rs", src)]);
        let a02: Vec<&Diag> = out.diags.iter().filter(|d| d.rule == "A02").collect();
        assert_eq!(a02.len(), 1, "diags: {:?}", out.diags);
        assert_eq!(a02[0].line, 4);
        // The same code outside an accounting path is not flagged.
        let out = run(&[("crates/trace/src/lib.rs", src)]);
        assert!(out.diags.iter().all(|d| d.rule != "A02"));
    }

    #[test]
    fn hash_ty_helper_sees_through_wrappers() {
        let t = Ty {
            text: "&HashMap<u64, u64>".to_string(),
            head: "HashMap".to_string(),
            args: vec!["u64".to_string(), "u64".to_string()],
        };
        assert!(is_hash_ty(&t));
    }
}
