//! The `lint` binary: the workspace linter's command-line front end.
//!
//! ```text
//! lint [--root DIR] [--paths P1,P2] [--rules R1,R2] [--json] [--deny]
//!      [--bench-json PATH] [--list]
//! ```
//!
//! * `--root DIR`   workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`).
//! * `--paths a,b`  restrict to files whose relative path starts with one
//!   of the given prefixes.
//! * `--rules a,b`  run only the listed rules (disables the L-series
//!   meta-rules unless listed).
//! * `--json`       emit the stable-sorted JSON array instead of text.
//! * `--deny`       exit non-zero when any diagnostic survives — the CI
//!   gate mode used by `scripts/verify.sh`.
//! * `--bench-json PATH`  write a one-line JSON benchmark record (file,
//!   line, function, call-graph, and taint counters plus wall time) to
//!   PATH after the run; see `BENCH_lint.json` at the repo root.
//! * `--list`       print the rule catalog and exit.
//!
//! Output is byte-stable for a given tree: files are walked in sorted
//! order and diagnostics sort by (path, line, rule).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use lpmem_lint::{lint_root, render_json, render_text, Options, Report, CATALOG};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut opts = Options::default();
    let mut json = false;
    let mut deny = false;
    let mut bench_json: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--paths" => match args.next() {
                Some(v) => opts.paths.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                ),
                None => return usage("--paths needs a comma-separated list"),
            },
            "--rules" => match args.next() {
                Some(v) => {
                    let set: BTreeSet<String> = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect();
                    for r in &set {
                        if !CATALOG.iter().any(|c| c.id == r) {
                            return usage(&format!("unknown rule `{r}` (see --list)"));
                        }
                    }
                    opts.rules = Some(set);
                }
                None => return usage("--rules needs a comma-separated list"),
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--bench-json" => match args.next() {
                Some(v) => bench_json = Some(PathBuf::from(v)),
                None => return usage("--bench-json needs a file path"),
            },
            "--list" => {
                for r in CATALOG {
                    println!("{}  {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("lint: no workspace root found; pass --root");
                return ExitCode::from(2);
            }
        },
    };

    let started = std::time::Instant::now();
    let report = match lint_root(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ns = started.elapsed().as_nanos();

    if let Some(path) = &bench_json {
        if let Err(e) = std::fs::write(path, bench_report_body(&report, elapsed_ns)) {
            eprintln!("lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    // Diagnostics go to stdout (byte-stable, diff-able in CI); the summary
    // goes to stderr in both modes so redirected output stays pure.
    if json {
        print!("{}", render_json(&report.diags));
    } else {
        print!("{}", render_text(&report.diags));
    }
    eprintln!(
        "lint: {} diagnostics ({} suppressed) in {} files",
        report.diags.len(),
        report.suppressed.len(),
        report.files
    );

    if deny && !report.diags.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Renders the `--bench-json` record: one line of stable-keyed JSON with
/// the analysis counters and the wall time of the whole run.
fn bench_report_body(report: &Report, elapsed_ns: u128) -> String {
    let s = &report.stats;
    let secs = elapsed_ns as f64 / 1e9;
    let files_per_sec = if secs > 0.0 {
        s.files as f64 / secs
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"schema\":\"lpmem-lint-bench-v1\",",
            "\"files\":{},\"lines\":{},\"functions\":{},",
            "\"resolved_calls\":{},\"unresolved_calls\":{},",
            "\"taint_sites\":{},\"retractions\":{},",
            "\"diags\":{},\"suppressed\":{},",
            "\"elapsed_ns\":{},\"files_per_sec\":{:.1}}}\n"
        ),
        s.files,
        s.lines,
        s.functions,
        s.resolved_calls,
        s.unresolved_calls,
        s.taint_sites,
        s.retracted,
        report.diags.len(),
        report.suppressed.len(),
        elapsed_ns,
        files_per_sec
    )
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("lint: {err}");
    }
    eprintln!(
        "usage: lint [--root DIR] [--paths P1,P2] [--rules R1,R2] [--json] [--deny] \
         [--bench-json PATH] [--list]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
