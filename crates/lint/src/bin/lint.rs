//! The `lint` binary: the workspace linter's command-line front end.
//!
//! ```text
//! lint [--root DIR] [--paths P1,P2] [--rules R1,R2] [--json] [--deny] [--list]
//! ```
//!
//! * `--root DIR`   workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` containing `[workspace]`).
//! * `--paths a,b`  restrict to files whose relative path starts with one
//!   of the given prefixes.
//! * `--rules a,b`  run only the listed rules (disables the L-series
//!   meta-rules unless listed).
//! * `--json`       emit the stable-sorted JSON array instead of text.
//! * `--deny`       exit non-zero when any diagnostic survives — the CI
//!   gate mode used by `scripts/verify.sh`.
//! * `--list`       print the rule catalog and exit.
//!
//! Output is byte-stable for a given tree: files are walked in sorted
//! order and diagnostics sort by (path, line, rule).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use lpmem_lint::{lint_root, render_json, render_text, Options, CATALOG};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut opts = Options::default();
    let mut json = false;
    let mut deny = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--paths" => match args.next() {
                Some(v) => opts.paths.extend(
                    v.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                ),
                None => return usage("--paths needs a comma-separated list"),
            },
            "--rules" => match args.next() {
                Some(v) => {
                    let set: BTreeSet<String> = v
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect();
                    for r in &set {
                        if !CATALOG.iter().any(|c| c.id == r) {
                            return usage(&format!("unknown rule `{r}` (see --list)"));
                        }
                    }
                    opts.rules = Some(set);
                }
                None => return usage("--rules needs a comma-separated list"),
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--list" => {
                for r in CATALOG {
                    println!("{}  {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("lint: no workspace root found; pass --root");
                return ExitCode::from(2);
            }
        },
    };

    let report = match lint_root(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    // Diagnostics go to stdout (byte-stable, diff-able in CI); the summary
    // goes to stderr in both modes so redirected output stays pure.
    if json {
        print!("{}", render_json(&report.diags));
    } else {
        print!("{}", render_text(&report.diags));
    }
    eprintln!(
        "lint: {} diagnostics ({} suppressed) in {} files",
        report.diags.len(),
        report.suppressed.len(),
        report.files
    );

    if deny && !report.diags.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("lint: {err}");
    }
    eprintln!(
        "usage: lint [--root DIR] [--paths P1,P2] [--rules R1,R2] [--json] [--deny] [--list]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
