//! Workspace-wide symbol table, per-function type environments, and call
//! resolution (DESIGN.md §14).
//!
//! The resolver turns the per-file ASTs of [`crate::parse`] into the three
//! tables the taint analysis consumes:
//!
//! * **functions** — every `fn` in the workspace, with its analysis unit
//!   (the crate it lives in), enclosing `impl` type, signature, and an
//!   item-index path back into the owning AST so bodies can be re-walked;
//! * **structs** — named fields with shallow types, so `self.map` can be
//!   typed without local evidence;
//! * **call resolution** — free calls by `(unit, name)` with use-import
//!   and `lpmem_*` cross-crate mapping, method/associated calls by
//!   `(receiver type head, name)`, and trait-object dispatch joined over
//!   every `impl Trait for T`. Anything outside those heuristics is an
//!   explicit [`CallTarget::Unresolved`] edge — the analysis on top must
//!   treat those conservatively rather than silently dropping them.
//!
//! Typing is deliberately shallow and deterministic: a variable maps to a
//! type *head* (plus top-level argument heads), inferred from parameter
//! annotations, `let` annotations, constructor calls (`HashMap::new()`),
//! struct literals, field declarations, resolved return types, and a
//! small table of `std` method shapes. Two passes over each body settle
//! forward references; everything unknown stays unknown (never guessed).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::*;
use crate::parse::parse_file;

/// Index into [`Workspace::fns`].
pub type FnId = usize;

/// One analyzed source file.
pub struct FileInfo {
    /// Workspace-relative path.
    pub rel: String,
    /// Analysis unit (crate) this file belongs to.
    pub unit: String,
    /// Parsed AST.
    pub ast: SourceFile,
    /// Use-imports visible in this file: name in scope → full path.
    pub imports: BTreeMap<String, Vec<String>>,
}

/// One function (free, associated, or trait-provided).
pub struct FnRecord {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Analysis unit (copied from the file).
    pub unit: String,
    /// Bare name.
    pub name: String,
    /// Display name (`Type::name` for associated fns).
    pub qual: String,
    /// Enclosing `impl`/`trait` type head.
    pub impl_ty: Option<String>,
    /// Trait being implemented, for `impl Trait for Ty` methods.
    pub trait_name: Option<String>,
    /// `pub` visibility (item-level; enclosing module visibility is not
    /// modeled).
    pub vis_pub: bool,
    /// Inside `#[cfg(test)]` / `#[test]`.
    pub cfg_test: bool,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// Parameter binding names and declared types (receiver excluded).
    pub params: Vec<(Vec<String>, Ty)>,
    /// Declared return type.
    pub ret: Option<Ty>,
    /// Item-index path to the `fn` item inside the file's AST.
    pub item_path: Vec<usize>,
}

/// Where a call goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// A single workspace function.
    Resolved(FnId),
    /// Trait-object dispatch: every `impl Trait for …` candidate.
    Trait(Vec<FnId>),
    /// `std`/`core`/`alloc` — known-external, behavior modeled by name.
    Std,
    /// An enum variant / tuple-struct constructor, not a function call.
    Constructor,
    /// Nothing matched; `kind` says what class of edge was dropped.
    Unresolved(UnresolvedKind),
}

/// Classes of unresolved call edges (kept explicit so the bench report
/// and the taint analysis can account for them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnresolvedKind {
    /// Free-function path that matched no workspace fn.
    Free,
    /// Method whose receiver type is unknown or has no such method.
    Method,
    /// Call through a local variable (closure parameters, fn values).
    Local,
}

/// Per-function local type environment: binding name → shallow type.
pub type Env = BTreeMap<String, Ty>;

/// The resolved workspace.
pub struct Workspace {
    /// Files in deterministic (sorted-path) order.
    pub files: Vec<FileInfo>,
    /// Every function, in file order then item order.
    pub fns: Vec<FnRecord>,
    /// Struct fields: type head → field name → declared type.
    pub structs: BTreeMap<String, BTreeMap<String, Ty>>,
    /// Precomputed local type environment per function.
    pub envs: Vec<Env>,
    free_by_unit: BTreeMap<(String, String), Vec<FnId>>,
    free_by_name: BTreeMap<String, Vec<FnId>>,
    methods: BTreeMap<(String, String), Vec<FnId>>,
    trait_impls: BTreeMap<(String, String), Vec<FnId>>,
    traits: BTreeSet<String>,
}

/// The analysis unit (crate) a workspace-relative path belongs to.
/// Bare files (the fixture corpus) each form their own unit, which lets
/// cross-unit fixtures exist without a crate layout.
pub fn unit_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("?").to_string(),
        Some("src") | Some("tests") | Some("examples") => "lpmem".to_string(),
        Some(one) if !rel.contains('/') => one.trim_end_matches(".rs").to_string(),
        Some(other) => other.to_string(),
        None => "?".to_string(),
    }
}

/// Maps a path's first segment to a target unit, if it names a crate.
fn crate_of_seg(seg: &str, current: &str) -> Option<String> {
    match seg {
        "crate" | "self" | "super" => Some(current.to_string()),
        "std" | "core" | "alloc" => None,
        "lpmem" => Some("lpmem".to_string()),
        s => s.strip_prefix("lpmem_").map(|rest| rest.to_string()),
    }
}

fn is_upper(s: &str) -> bool {
    s.chars().next().map(char::is_uppercase).unwrap_or(false)
}

impl Workspace {
    /// Parses and resolves a whole workspace from `(rel_path, source)`
    /// pairs. Infallible; files that parse badly just contribute fewer
    /// symbols.
    pub fn build(sources: &[(String, String)]) -> Workspace {
        let mut files = Vec::with_capacity(sources.len());
        for (rel, src) in sources {
            let ast = parse_file(src);
            let mut imports = BTreeMap::new();
            collect_imports(&ast.items, &mut imports);
            files.push(FileInfo {
                rel: rel.clone(),
                unit: unit_of(rel),
                ast,
                imports,
            });
        }
        let mut ws = Workspace {
            files,
            fns: Vec::new(),
            structs: BTreeMap::new(),
            envs: Vec::new(),
            free_by_unit: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            methods: BTreeMap::new(),
            trait_impls: BTreeMap::new(),
            traits: BTreeSet::new(),
        };
        for fi in 0..ws.files.len() {
            let mut recs = Vec::new();
            collect_fns(
                &ws.files[fi].ast.items,
                fi,
                &ws.files[fi].unit,
                &mut Vec::new(),
                None,
                None,
                false,
                &mut recs,
                &mut ws.structs,
                &mut ws.traits,
            );
            for rec in recs {
                let id = ws.fns.len();
                if let Some(ty) = &rec.impl_ty {
                    ws.methods
                        .entry((ty.clone(), rec.name.clone()))
                        .or_default()
                        .push(id);
                    if let Some(tr) = &rec.trait_name {
                        ws.trait_impls
                            .entry((tr.clone(), rec.name.clone()))
                            .or_default()
                            .push(id);
                    }
                } else {
                    ws.free_by_unit
                        .entry((rec.unit.clone(), rec.name.clone()))
                        .or_default()
                        .push(id);
                    ws.free_by_name
                        .entry(rec.name.clone())
                        .or_default()
                        .push(id);
                }
                ws.fns.push(rec);
            }
        }
        // Environments need the symbol tables, so they come last; two
        // passes let `let` chains settle forward references.
        for id in 0..ws.fns.len() {
            ws.envs.push(ws.build_env(id));
        }
        ws
    }

    /// The body block of a function, navigated via its item path.
    pub fn fn_body(&self, id: FnId) -> Option<&Block> {
        let rec = self.fns.get(id)?;
        let file = self.files.get(rec.file)?;
        let mut items = &file.ast.items;
        for (hop, idx) in rec.item_path.iter().enumerate() {
            let item = items.get(*idx)?;
            if hop + 1 == rec.item_path.len() {
                if let ItemKind::Fn(func) = &item.kind {
                    return func.body.as_ref();
                }
                return None;
            }
            items = match &item.kind {
                ItemKind::Impl(imp) => &imp.items,
                ItemKind::Trait(tr) => &tr.items,
                ItemKind::Mod(m) => m.items.as_ref()?,
                _ => return None,
            };
        }
        None
    }

    /// Resolves a free/associated call by path from `file`.
    pub fn resolve_path_call(&self, file: usize, segs: &[String]) -> CallTarget {
        let unit = &self.files[file].unit;
        match segs {
            [] => CallTarget::Unresolved(UnresolvedKind::Free),
            [name] => self.resolve_free(file, unit, name),
            _ => {
                let first = segs[0].as_str();
                let last = segs[segs.len() - 1].as_str();
                if first == "std" || first == "core" || first == "alloc" {
                    return CallTarget::Std;
                }
                if is_upper(last) {
                    // `Outcome::Ok`, `Some`-like payload constructors.
                    return CallTarget::Constructor;
                }
                if is_upper(first) || (segs.len() >= 2 && is_upper(&segs[segs.len() - 2])) {
                    // `Type::assoc` (possibly module-qualified).
                    let ty = if is_upper(first) {
                        first
                    } else {
                        segs[segs.len() - 2].as_str()
                    };
                    // Imports may alias the type name; the head is the
                    // same either way.
                    return self.resolve_method_on(unit, ty, last);
                }
                // Module path: map the first segment to a unit.
                let target_unit = crate_of_seg(first, unit)
                    .or_else(|| {
                        self.files[file]
                            .imports
                            .get(first)
                            .and_then(|path| path.first())
                            .and_then(|seg0| crate_of_seg(seg0, unit))
                    })
                    .unwrap_or_else(|| unit.clone());
                self.resolve_free_in(file, &target_unit, last)
                    .or_else(|| self.unique_by_name(last))
                    .unwrap_or(CallTarget::Unresolved(UnresolvedKind::Free))
            }
        }
    }

    fn resolve_free(&self, file: usize, unit: &str, name: &str) -> CallTarget {
        if let Some(t) = self.resolve_free_in(file, unit, name) {
            return t;
        }
        // Imported name: `use lpmem_trace::gen::synthesize;` then
        // `synthesize(…)`.
        if let Some(path) = self.files[file].imports.get(name) {
            if path.len() > 1 {
                let first = path.first().map(String::as_str).unwrap_or("");
                let leaf = path.last().map(String::as_str).unwrap_or(name);
                // Bare-file units (the fixture corpus) import each other by
                // file stem, so an unrecognized first segment is itself a
                // candidate unit, not `std`.
                let target = crate_of_seg(first, unit).unwrap_or_else(|| first.to_string());
                if matches!(first, "std" | "core" | "alloc") {
                    return CallTarget::Std;
                }
                if is_upper(leaf) {
                    return CallTarget::Constructor;
                }
                if let Some(t) = self.resolve_free_in(file, &target, leaf) {
                    return t;
                }
            }
        }
        if is_upper(name) {
            // `Some(x)`, `Ok(x)`, tuple-struct constructors.
            return CallTarget::Constructor;
        }
        self.unique_by_name(name)
            .unwrap_or(CallTarget::Unresolved(UnresolvedKind::Free))
    }

    fn resolve_free_in(&self, file: usize, unit: &str, name: &str) -> Option<CallTarget> {
        let ids = self
            .free_by_unit
            .get(&(unit.to_string(), name.to_string()))?;
        // Same file wins (module-proximity heuristic); otherwise the
        // first in deterministic order.
        let best = ids
            .iter()
            .find(|id| self.fns[**id].file == file)
            .or_else(|| ids.first())?;
        Some(CallTarget::Resolved(*best))
    }

    /// Every workspace method with this name, across all receiver types.
    /// The taint layer's unanimity fallback uses this when a receiver's
    /// type cannot be inferred.
    pub fn methods_named(&self, name: &str) -> Vec<FnId> {
        self.methods
            .iter()
            .filter(|((_, m), _)| m == name)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect()
    }

    fn unique_by_name(&self, name: &str) -> Option<CallTarget> {
        let ids = self.free_by_name.get(name)?;
        if ids.len() == 1 {
            Some(CallTarget::Resolved(ids[0]))
        } else {
            None
        }
    }

    /// Resolves `recv.method(…)` given the receiver's inferred type.
    pub fn resolve_method(&self, unit: &str, recv_ty: Option<&Ty>, method: &str) -> CallTarget {
        match recv_ty {
            Some(ty) => {
                let head = ty.unwrapped_head().to_string();
                self.resolve_method_on(unit, &head, method)
            }
            None => CallTarget::Unresolved(UnresolvedKind::Method),
        }
    }

    fn resolve_method_on(&self, unit: &str, head: &str, method: &str) -> CallTarget {
        // A trait-typed receiver dispatches to every implementation, not
        // to the trait's own declaration/default body.
        if self.traits.contains(head) {
            if let Some(ids) = self
                .trait_impls
                .get(&(head.to_string(), method.to_string()))
            {
                return CallTarget::Trait(ids.clone());
            }
        }
        if let Some(ids) = self.methods.get(&(head.to_string(), method.to_string())) {
            // Prefer a same-unit impl; a unique candidate stands alone;
            // ambiguity (same type name in two crates) stays unresolved.
            if let Some(id) = ids.iter().find(|id| self.fns[**id].unit == unit) {
                return CallTarget::Resolved(*id);
            }
            if ids.len() == 1 {
                return CallTarget::Resolved(ids[0]);
            }
            return CallTarget::Unresolved(UnresolvedKind::Method);
        }
        // Trait-object receiver: join every implementation.
        if let Some(ids) = self
            .trait_impls
            .get(&(head.to_string(), method.to_string()))
        {
            return CallTarget::Trait(ids.clone());
        }
        CallTarget::Unresolved(UnresolvedKind::Method)
    }

    /// Builds the local type environment for `id` (two fixstep passes).
    fn build_env(&self, id: FnId) -> Env {
        let rec = &self.fns[id];
        let mut env = Env::new();
        if rec.has_self {
            if let Some(ty) = &rec.impl_ty {
                env.insert(
                    "self".to_string(),
                    Ty {
                        text: ty.clone(),
                        head: ty.clone(),
                        args: Vec::new(),
                    },
                );
            }
        }
        for (bindings, ty) in &rec.params {
            if bindings.len() == 1 && !ty.head.is_empty() {
                env.insert(bindings[0].clone(), ty.clone());
            }
        }
        if let Some(body) = self.fn_body(id) {
            for _ in 0..2 {
                let mut pass = env.clone();
                self.env_pass(body, rec, &mut pass);
                if pass == env {
                    break;
                }
                env = pass;
            }
        }
        env
    }

    fn env_pass(&self, block: &Block, rec: &FnRecord, env: &mut Env) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let(l) => {
                    if let Some(init) = &l.init {
                        self.env_pass_expr(init, rec, env);
                    }
                    if let Some(els) = &l.els {
                        self.env_pass(els, rec, env);
                    }
                    if l.pat.bindings.len() == 1 {
                        let name = &l.pat.bindings[0];
                        let ty = match &l.ty {
                            Some(t) if !t.head.is_empty() => Some(t.clone()),
                            _ => l.init.as_ref().and_then(|e| self.infer(env, rec, e)),
                        };
                        if let Some(t) = ty {
                            env.insert(name.clone(), t);
                        }
                    }
                }
                Stmt::Expr(e, _) => self.env_pass_expr(e, rec, env),
                Stmt::Item(_) => {}
            }
        }
    }

    fn env_pass_expr(&self, expr: &Expr, rec: &FnRecord, env: &mut Env) {
        // Walk nested blocks so `let`s inside loops/branches/closures
        // land in the (flat, shadowing-approximate) environment.
        let mut lets = Vec::new();
        collect_inner_lets(expr, &mut |l| lets.push(l));
        for l in lets {
            if l.pat.bindings.len() == 1 {
                let name = &l.pat.bindings[0];
                let ty = match &l.ty {
                    Some(t) if !t.head.is_empty() => Some(t.clone()),
                    _ => l.init.as_ref().and_then(|e| self.infer(env, rec, e)),
                };
                if let Some(t) = ty {
                    env.insert(name.clone(), t);
                }
            }
        }
    }

    /// Infers the shallow type of an expression under `env`.
    pub fn infer(&self, env: &Env, rec: &FnRecord, expr: &Expr) -> Option<Ty> {
        match &expr.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [one] => env.get(one).cloned(),
                many => {
                    let first = &many[0];
                    if is_upper(first) {
                        Some(simple_ty(first))
                    } else {
                        None
                    }
                }
            },
            ExprKind::Lit(text) => Some(lit_ty(text)),
            ExprKind::Field(base, name) => {
                let base_ty = self.infer(env, rec, base)?;
                let head = base_ty.unwrapped_head();
                self.structs.get(head)?.get(name).cloned()
            }
            ExprKind::MethodCall {
                recv,
                method,
                turbofish,
                ..
            } => self.infer_method(env, rec, recv, method, turbofish.as_deref()),
            ExprKind::Call { callee, args } => {
                let segs = callee.as_path()?;
                match self.resolve_path_call(rec.file, segs) {
                    CallTarget::Resolved(id) => self.fns[id].ret.clone(),
                    CallTarget::Constructor => {
                        let last = segs.last()?;
                        match last.as_str() {
                            "Some" | "Ok" => {
                                let inner = args
                                    .first()
                                    .and_then(|a| self.infer(env, rec, a))
                                    .map(|t| t.head)
                                    .unwrap_or_default();
                                Some(Ty {
                                    text: String::new(),
                                    head: if last == "Some" { "Option" } else { "Result" }
                                        .to_string(),
                                    args: vec![inner],
                                })
                            }
                            _ => {
                                // `Outcome::Ok(x)` → Outcome; `Foo(x)` → Foo.
                                let head = if segs.len() >= 2 && is_upper(&segs[segs.len() - 2]) {
                                    segs[segs.len() - 2].clone()
                                } else {
                                    (*last).clone()
                                };
                                Some(simple_ty(&head))
                            }
                        }
                    }
                    CallTarget::Std => {
                        // `HashMap::new()`-style constructors resolve by
                        // their type segment below.
                        let ty_seg = segs.iter().rev().find(|s| is_upper(s))?;
                        Some(simple_ty(ty_seg))
                    }
                    _ => {
                        let ty_seg = segs.iter().rev().find(|s| is_upper(s))?;
                        Some(simple_ty(ty_seg))
                    }
                }
            }
            ExprKind::Cast(_, ty) => Some(ty.clone()),
            ExprKind::StructLit { path, .. } => path.last().map(|p| simple_ty(p)),
            ExprKind::Binary(op, a, b) => match op {
                BinOp::Cmp | BinOp::Logic => Some(simple_ty("#bool")),
                _ => self.infer(env, rec, a).or_else(|| self.infer(env, rec, b)),
            },
            ExprKind::Unary(_, a) | ExprKind::Ref { inner: a, .. } => self.infer(env, rec, a),
            ExprKind::Try(a) => {
                let t = self.infer(env, rec, a)?;
                first_arg_ty(&t)
            }
            ExprKind::Index(base, _) => {
                let t = self.infer(env, rec, base)?;
                first_arg_ty(&t)
            }
            ExprKind::Tuple(_) => Some(simple_ty("()")),
            ExprKind::Array(_) => Some(simple_ty("[]")),
            ExprKind::Range(..) => Some(simple_ty("#range")),
            ExprKind::MacroCall { path, .. } => match path.last().map(String::as_str) {
                Some("vec") => Some(simple_ty("Vec")),
                Some("format") => Some(simple_ty("String")),
                _ => None,
            },
            ExprKind::Assign { .. } => Some(simple_ty("()")),
            _ => None,
        }
    }

    fn infer_method(
        &self,
        env: &Env,
        rec: &FnRecord,
        recv: &Expr,
        method: &str,
        turbofish: Option<&str>,
    ) -> Option<Ty> {
        // Std-shaped methods first: these fire regardless of whether the
        // receiver is a workspace type.
        match method {
            "clone" | "to_owned" | "to_vec" => return self.infer(env, rec, recv),
            "collect" => {
                return turbofish.map(simple_ty);
            }
            "unwrap" | "expect" | "unwrap_or_default" => {
                let t = self.infer(env, rec, recv)?;
                if matches!(t.head.as_str(), "Option" | "Result") {
                    return first_arg_ty(&t);
                }
                return Some(t);
            }
            "unwrap_or" | "unwrap_or_else" => {
                let t = self.infer(env, rec, recv)?;
                if matches!(t.head.as_str(), "Option" | "Result") {
                    return first_arg_ty(&t);
                }
                return Some(t);
            }
            "iter" | "iter_mut" | "into_iter" | "keys" | "values" | "values_mut" | "drain"
            | "chars" | "bytes" | "lines" | "split" | "split_whitespace" | "windows" | "chunks" => {
                let t = self.infer(env, rec, recv)?;
                return Some(Ty {
                    text: String::new(),
                    head: "#iter".to_string(),
                    args: vec![t.unwrapped_head().to_string()],
                });
            }
            "enumerate" | "map" | "filter" | "filter_map" | "flat_map" | "flatten" | "zip"
            | "rev" | "take" | "skip" | "chain" | "copied" | "cloned" | "by_ref" | "peekable"
            | "step_by" | "inspect" => {
                // Adapters preserve the iteration's provenance.
                return self.infer(env, rec, recv);
            }
            "len" | "count" | "capacity" => return Some(simple_ty("usize")),
            "sum" | "product" => {
                return Some(match turbofish {
                    Some(t) => simple_ty(t),
                    None => simple_ty("#int"),
                });
            }
            "is_empty" | "contains" | "contains_key" | "any" | "all" | "is_some" | "is_none"
            | "is_ok" | "is_err" | "starts_with" | "ends_with" => {
                return Some(simple_ty("#bool"));
            }
            "to_string" => return Some(simple_ty("String")),
            "as_str" => return Some(simple_ty("str")),
            "abs" | "min" | "max" | "pow" | "wrapping_add" | "wrapping_sub" | "wrapping_mul"
            | "saturating_add" | "saturating_sub" | "saturating_mul" | "rotate_left"
            | "rotate_right" => {
                return self.infer(env, rec, recv);
            }
            "checked_add" | "checked_sub" | "checked_mul" | "checked_div" => {
                let t = self.infer(env, rec, recv)?;
                return Some(Ty {
                    text: String::new(),
                    head: "Option".to_string(),
                    args: vec![t.head],
                });
            }
            _ => {}
        }
        let recv_ty = self.infer(env, rec, recv);
        match self.resolve_method(&rec.unit, recv_ty.as_ref(), method) {
            CallTarget::Resolved(id) => self.fns[id].ret.clone(),
            CallTarget::Trait(ids) => ids.first().and_then(|id| self.fns[*id].ret.clone()),
            _ => None,
        }
    }
}

fn first_arg_ty(t: &Ty) -> Option<Ty> {
    t.args.first().map(|h| simple_ty(h))
}

fn simple_ty(head: &str) -> Ty {
    Ty {
        text: head.to_string(),
        head: head.to_string(),
        args: Vec::new(),
    }
}

fn lit_ty(text: &str) -> Ty {
    if text.starts_with('"') || text.starts_with("r\"") || text.starts_with("r#") {
        return simple_ty("str");
    }
    if text.starts_with('\'') || text.starts_with("b'") {
        return simple_ty("char");
    }
    if text == "true" || text == "false" {
        return simple_ty("#bool");
    }
    // Number: explicit suffix wins, then a decimal point / exponent.
    for suffix in [
        "f32", "f64", "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64",
        "i128", "isize",
    ] {
        if text.ends_with(suffix) {
            return simple_ty(if suffix.starts_with('f') {
                "#float"
            } else {
                suffix
            });
        }
    }
    let no_hex = !text.starts_with("0x") && !text.starts_with("0X");
    if no_hex && (text.contains('.') || text.contains('e') || text.contains('E')) {
        simple_ty("#float")
    } else {
        simple_ty("#int")
    }
}

fn collect_imports(items: &[Item], out: &mut BTreeMap<String, Vec<String>>) {
    for item in items {
        match &item.kind {
            ItemKind::Use(u) => {
                for (name, path) in &u.leaves {
                    if name != "*" && !name.is_empty() {
                        out.insert(name.clone(), path.clone());
                    }
                }
            }
            ItemKind::Mod(m) => {
                if let Some(inner) = &m.items {
                    collect_imports(inner, out);
                }
            }
            _ => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn collect_fns(
    items: &[Item],
    file: usize,
    unit: &str,
    path: &mut Vec<usize>,
    impl_ty: Option<&str>,
    trait_name: Option<&str>,
    parent_test: bool,
    out: &mut Vec<FnRecord>,
    structs: &mut BTreeMap<String, BTreeMap<String, Ty>>,
    traits: &mut BTreeSet<String>,
) {
    for (i, item) in items.iter().enumerate() {
        path.push(i);
        let cfg_test = parent_test || item.cfg_test;
        match &item.kind {
            ItemKind::Fn(func) => {
                let qual = match impl_ty {
                    Some(t) => format!("{t}::{}", func.name),
                    None => func.name.clone(),
                };
                out.push(FnRecord {
                    file,
                    unit: unit.to_string(),
                    name: func.name.clone(),
                    qual,
                    impl_ty: impl_ty.map(str::to_string),
                    trait_name: trait_name.map(str::to_string),
                    vis_pub: item.vis_pub,
                    cfg_test,
                    has_self: func.has_self,
                    line: func.name_span.line,
                    params: func
                        .params
                        .iter()
                        .map(|p| (p.bindings.clone(), p.ty.clone()))
                        .collect(),
                    ret: func.ret.clone(),
                    item_path: path.clone(),
                });
            }
            ItemKind::Impl(imp) => {
                collect_fns(
                    &imp.items,
                    file,
                    unit,
                    path,
                    Some(&imp.ty_head),
                    imp.trait_name.as_deref(),
                    cfg_test,
                    out,
                    structs,
                    traits,
                );
            }
            ItemKind::Trait(tr) => {
                traits.insert(tr.name.clone());
                collect_fns(
                    &tr.items,
                    file,
                    unit,
                    path,
                    Some(&tr.name),
                    None,
                    cfg_test,
                    out,
                    structs,
                    traits,
                );
            }
            ItemKind::Mod(m) => {
                if let Some(inner) = &m.items {
                    collect_fns(
                        inner, file, unit, path, impl_ty, trait_name, cfg_test, out, structs,
                        traits,
                    );
                }
            }
            ItemKind::Struct(s) => {
                let entry = structs.entry(s.name.clone()).or_default();
                for (fname, fty) in &s.fields {
                    entry.entry(fname.clone()).or_insert_with(|| fty.clone());
                }
            }
            _ => {}
        }
        path.pop();
    }
}

/// Visits every `let` statement nested anywhere under `expr` (blocks of
/// `if`/`match`/loops/closures included).
fn collect_inner_lets<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a LetStmt)) {
    walk_expr(expr, &mut |e| {
        let blocks: Vec<&Block> = match &e.kind {
            ExprKind::If { then, .. } => vec![then],
            ExprKind::While { body, .. } | ExprKind::ForLoop { body, .. } => vec![body],
            ExprKind::Loop(b) | ExprKind::Block(b) => vec![b],
            _ => vec![],
        };
        for b in blocks {
            for stmt in &b.stmts {
                if let Stmt::Let(l) = stmt {
                    f(l);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(r, s)| (r.to_string(), s.to_string()))
            .collect();
        Workspace::build(&sources)
    }

    #[test]
    fn units_follow_the_workspace_layout() {
        assert_eq!(unit_of("crates/bench/src/sweep.rs"), "bench");
        assert_eq!(unit_of("crates/util/tests/props.rs"), "util");
        assert_eq!(unit_of("src/lib.rs"), "lpmem");
        assert_eq!(unit_of("tests/golden.rs"), "lpmem");
        assert_eq!(unit_of("t02_fixture.rs"), "t02_fixture");
    }

    #[test]
    fn free_and_method_calls_resolve() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "pub struct Engine { pub map: std::collections::HashMap<u64, f64> }\n\
                 impl Engine {\n    pub fn tick(&self) -> u64 { helper() }\n}\n\
                 pub fn helper() -> u64 { 7 }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "use lpmem_a::helper;\n\
                 pub fn caller() -> u64 { helper() }\n",
            ),
        ]);
        assert_eq!(w.fns.len(), 3);
        let helper_id = w
            .fns
            .iter()
            .position(|f| f.name == "helper")
            .expect("helper");
        // Same-crate single-segment call.
        let tick = w.fns.iter().position(|f| f.name == "tick").expect("tick");
        let t = w.resolve_path_call(w.fns[tick].file, &["helper".to_string()]);
        assert_eq!(t, CallTarget::Resolved(helper_id));
        // Cross-crate via use-import.
        let caller = w
            .fns
            .iter()
            .position(|f| f.name == "caller")
            .expect("caller");
        let t = w.resolve_path_call(w.fns[caller].file, &["helper".to_string()]);
        assert_eq!(t, CallTarget::Resolved(helper_id));
        // Method by receiver type head.
        let t = w.resolve_method("a", Some(&simple_ty("Engine")), "tick");
        assert_eq!(t, CallTarget::Resolved(tick));
        // Struct field types are recorded.
        assert_eq!(
            w.structs["Engine"]["map"].head, "HashMap",
            "field type head"
        );
    }

    #[test]
    fn env_types_constructors_and_annotations() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub fn f() -> u64 {\n\
             let mut m = std::collections::HashMap::new();\n\
             let v: Vec<u64> = Vec::new();\n\
             m.insert(1u64, 2u64);\n\
             (m.len() + v.len()) as u64\n}\n",
        )]);
        let f = w.fns.iter().position(|f| f.name == "f").expect("f");
        let env = &w.envs[f];
        assert_eq!(env.get("m").map(|t| t.head.as_str()), Some("HashMap"));
        assert_eq!(env.get("v").map(|t| t.head.as_str()), Some("Vec"));
    }

    #[test]
    fn trait_object_calls_join_every_impl() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "pub trait Codec { fn encode(&self) -> u64; }\n\
             pub struct A; impl Codec for A { fn encode(&self) -> u64 { 1 } }\n\
             pub struct B; impl Codec for B { fn encode(&self) -> u64 { 2 } }\n\
             pub fn run(c: Box<dyn Codec>) -> u64 { c.encode() }\n",
        )]);
        let run = w.fns.iter().position(|f| f.name == "run").expect("run");
        let env = &w.envs[run];
        let recv = env.get("c").cloned().expect("c typed");
        assert_eq!(recv.unwrapped_head(), "Codec");
        match w.resolve_method("a", Some(&recv), "encode") {
            CallTarget::Trait(ids) => assert_eq!(ids.len(), 2),
            other => panic!("expected trait dispatch, got {other:?}"),
        }
    }
}
