//! Low-energy data management for two on-chip memory levels in
//! multi-context reconfigurable architectures: the contribution of DATE
//! 2003 1B.4 (Sánchez-Élez, Fernández, Anido, Du, Hermida, Bagherzadeh).
//!
//! A multi-context reconfigurable fabric (MorphoSys-class) executes an
//! application as a sequence of **contexts**, repeated over many loop
//! iterations (frames, blocks). Each context runs kernels that read and
//! write named **arrays**. The fabric has two on-chip data stores — a
//! small, cheap level L0 and a larger level L1 — backed by expensive
//! external memory. The *data scheduler* decides, per context, where each
//! live array resides, paying transfer energy when an array migrates. Spare
//! L1 capacity can also **keep a context's configuration resident** so that
//! loop iterations after the first reload it from on-chip memory instead of
//! streaming it from external memory — the paper's observation that data
//! scheduling "could decrease the energy required to implement the dynamic
//! reconfiguration of the system".
//!
//! # Example
//!
//! ```
//! use lpmem_energy::Technology;
//! use lpmem_sched::{AppSpec, ContextSpec, SchedPlatform};
//!
//! let app = AppSpec::with_iterations(
//!     vec![("coef", 512), ("frame", 4096)],
//!     vec![ContextSpec::new(64, vec![(0, 5_000, 0), (1, 2_000, 1_000)])],
//!     32,
//! )?;
//! let platform = SchedPlatform::new(&Technology::tech180(), 1 << 10, 8 << 10);
//! let greedy = lpmem_sched::greedy_schedule(&app, &platform);
//! let naive = lpmem_sched::naive_schedule(&app, &platform);
//! let e_greedy = platform.evaluate(&app, &greedy)?.total();
//! let e_naive = platform.evaluate(&app, &naive)?.total();
//! assert!(e_greedy < e_naive);
//! # Ok::<(), lpmem_sched::SchedError>(())
//! ```

#![warn(missing_docs)]

use lpmem_energy::{Energy, EnergyReport, OffChipModel, SramModel, Technology};

/// Errors from building or evaluating schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// An access references an array index that does not exist.
    UnknownArray {
        /// The offending context.
        context: usize,
        /// The out-of-range array index.
        array: usize,
    },
    /// A schedule's placements exceed a level's capacity in some context.
    OverCapacity {
        /// The context whose placements overflow.
        context: usize,
        /// The level that overflows.
        level: Level,
    },
    /// The application has no contexts or an array has zero size.
    InvalidSpec(&'static str),
    /// The schedule's shape does not match the application.
    ShapeMismatch,
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::UnknownArray { context, array } => {
                write!(f, "context {context} references unknown array {array}")
            }
            SchedError::OverCapacity { context, level } => {
                write!(
                    f,
                    "placements exceed {level:?} capacity in context {context}"
                )
            }
            SchedError::InvalidSpec(what) => write!(f, "invalid application spec: {what}"),
            SchedError::ShapeMismatch => write!(f, "schedule shape does not match application"),
        }
    }
}

impl std::error::Error for SchedError {}

/// A storage level for an array during one context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Level {
    /// Small, cheapest on-chip store.
    L0,
    /// Larger on-chip store.
    L1,
    /// External memory (no capacity limit, highest energy).
    External,
}

/// One context: its configuration size and the array traffic of its
/// kernels (per loop iteration).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ContextSpec {
    /// 32-bit words of configuration loaded when this context starts.
    pub config_words: u64,
    /// `(array index, reads, writes)` for each array the context touches.
    pub accesses: Vec<(usize, u64, u64)>,
}

impl ContextSpec {
    /// Creates a context spec.
    pub fn new(config_words: u64, accesses: Vec<(usize, u64, u64)>) -> Self {
        ContextSpec {
            config_words,
            accesses,
        }
    }
}

/// A validated application: named arrays, the context sequence, and how
/// many loop iterations the sequence repeats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppSpec {
    arrays: Vec<(String, u64)>,
    contexts: Vec<ContextSpec>,
    iterations: u64,
}

impl AppSpec {
    /// Builds a single-iteration application.
    ///
    /// # Errors
    ///
    /// See [`AppSpec::with_iterations`].
    pub fn new(arrays: Vec<(&str, u64)>, contexts: Vec<ContextSpec>) -> Result<Self, SchedError> {
        Self::with_iterations(arrays, contexts, 1)
    }

    /// Builds and validates an application whose context sequence repeats
    /// `iterations` times.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidSpec`] for empty specs, zero-sized
    /// arrays, or zero iterations, and [`SchedError::UnknownArray`] for
    /// out-of-range accesses.
    pub fn with_iterations(
        arrays: Vec<(&str, u64)>,
        contexts: Vec<ContextSpec>,
        iterations: u64,
    ) -> Result<Self, SchedError> {
        if contexts.is_empty() {
            return Err(SchedError::InvalidSpec(
                "application needs at least one context",
            ));
        }
        if iterations == 0 {
            return Err(SchedError::InvalidSpec("iterations must be at least one"));
        }
        if arrays.iter().any(|&(_, b)| b == 0) {
            return Err(SchedError::InvalidSpec("arrays must have non-zero size"));
        }
        for (ci, ctx) in contexts.iter().enumerate() {
            for &(ai, _, _) in &ctx.accesses {
                if ai >= arrays.len() {
                    return Err(SchedError::UnknownArray {
                        context: ci,
                        array: ai,
                    });
                }
            }
        }
        Ok(AppSpec {
            arrays: arrays.into_iter().map(|(n, b)| (n.to_owned(), b)).collect(),
            contexts,
            iterations,
        })
    }

    /// Number of arrays.
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }

    /// Number of contexts in the sequence.
    pub fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Loop iterations of the context sequence.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Array size in bytes.
    pub fn array_bytes(&self, idx: usize) -> u64 {
        self.arrays[idx].1
    }

    /// Array name.
    pub fn array_name(&self, idx: usize) -> &str {
        &self.arrays[idx].0
    }

    /// The context sequence.
    pub fn contexts(&self) -> &[ContextSpec] {
        &self.contexts
    }

    /// Arrays live (accessed) in context `ci`, ascending.
    pub fn live_in(&self, ci: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.contexts[ci]
            .accesses
            .iter()
            .map(|&(a, _, _)| a)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A data schedule: per context, the level of every array, plus the
/// configuration-residency flags.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    /// `placement[context][array] = level` (arrays not live in a context are
    /// conventionally `External` and cost nothing).
    pub placement: Vec<Vec<Level>>,
    /// `cache_config[context]` — this context's configuration stays resident
    /// in L1 across the loop, so iterations after the first reload it
    /// on-chip. Resident configurations consume L1 capacity in **every**
    /// context.
    pub cache_config: Vec<bool>,
}

/// The two-level platform and its energy model.
#[derive(Debug, Clone)]
pub struct SchedPlatform {
    l0_bytes: u64,
    l1_bytes: u64,
    e_l0_read: Energy,
    e_l0_write: Energy,
    e_l1_read: Energy,
    e_l1_write: Energy,
    e_ext: Energy,
    e_context_word: Energy,
}

impl SchedPlatform {
    /// Builds a platform with the given level capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is zero or L0 is not smaller than L1.
    pub fn new(tech: &Technology, l0_bytes: u64, l1_bytes: u64) -> Self {
        assert!(l0_bytes > 0 && l1_bytes > 0, "levels must have capacity");
        assert!(l0_bytes < l1_bytes, "L0 must be smaller than L1");
        let sram = SramModel::new(tech);
        let off = OffChipModel::new(tech);
        SchedPlatform {
            l0_bytes,
            l1_bytes,
            e_l0_read: sram.read_energy(l0_bytes),
            e_l0_write: sram.write_energy(l0_bytes),
            e_l1_read: sram.read_energy(l1_bytes),
            e_l1_write: sram.write_energy(l1_bytes),
            e_ext: off.beat_energy(),
            e_context_word: Energy::from_pj(tech.context_word_pj),
        }
    }

    /// L0 capacity in bytes.
    pub fn l0_bytes(&self) -> u64 {
        self.l0_bytes
    }

    /// L1 capacity in bytes.
    pub fn l1_bytes(&self) -> u64 {
        self.l1_bytes
    }

    fn read_energy(&self, level: Level) -> Energy {
        match level {
            Level::L0 => self.e_l0_read,
            Level::L1 => self.e_l1_read,
            Level::External => self.e_ext,
        }
    }

    fn write_energy(&self, level: Level) -> Energy {
        match level {
            Level::L0 => self.e_l0_write,
            Level::L1 => self.e_l1_write,
            Level::External => self.e_ext,
        }
    }

    /// Energy to move `bytes` from `src` to `dst`, word by word.
    fn transfer_energy(&self, bytes: u64, src: Level, dst: Level) -> Energy {
        let words = bytes.div_ceil(4) as f64;
        (self.read_energy(src) + self.write_energy(dst)) * words
    }

    /// L1 bytes permanently consumed by resident configurations.
    fn resident_config_bytes(&self, app: &AppSpec, sched: &Schedule) -> u64 {
        app.contexts()
            .iter()
            .zip(&sched.cache_config)
            .filter(|(_, &cached)| cached)
            .map(|(ctx, _)| ctx.config_words * 4)
            .sum()
    }

    /// Evaluates a schedule, checking capacity constraints.
    ///
    /// Components: `l0.access`, `l1.access`, `ext.access`, `transfer`,
    /// `reconfig`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::ShapeMismatch`] when the schedule's dimensions
    /// differ from the application's and [`SchedError::OverCapacity`] when a
    /// level overflows in some context (counting L1 space held by resident
    /// configurations).
    pub fn evaluate(&self, app: &AppSpec, sched: &Schedule) -> Result<EnergyReport, SchedError> {
        let nc = app.num_contexts();
        let na = app.num_arrays();
        if sched.placement.len() != nc
            || sched.cache_config.len() != nc
            || sched.placement.iter().any(|p| p.len() != na)
        {
            return Err(SchedError::ShapeMismatch);
        }

        let resident = self.resident_config_bytes(app, sched);
        for ci in 0..nc {
            let mut l0 = 0u64;
            let mut l1 = resident;
            for &ai in &app.live_in(ci) {
                match sched.placement[ci][ai] {
                    Level::L0 => l0 += app.array_bytes(ai),
                    Level::L1 => l1 += app.array_bytes(ai),
                    Level::External => {}
                }
            }
            if l0 > self.l0_bytes {
                return Err(SchedError::OverCapacity {
                    context: ci,
                    level: Level::L0,
                });
            }
            if l1 > self.l1_bytes {
                return Err(SchedError::OverCapacity {
                    context: ci,
                    level: Level::L1,
                });
            }
        }

        let iters = app.iterations() as f64;
        let mut report = EnergyReport::new();
        // Kernel accesses (per iteration, scaled by the loop count).
        for (ci, ctx) in app.contexts().iter().enumerate() {
            for &(ai, reads, writes) in &ctx.accesses {
                let level = sched.placement[ci][ai];
                let e = (self.read_energy(level) * reads as f64
                    + self.write_energy(level) * writes as f64)
                    * iters;
                let name = match level {
                    Level::L0 => "l0.access",
                    Level::L1 => "l1.access",
                    Level::External => "ext.access",
                };
                report.add(name, e);
            }
        }
        // Transfers per iteration: arrays arrive from external on first use,
        // migrate when their level changes between consecutive live
        // contexts, and dirty arrays drain back to external at the end of
        // the iteration.
        let mut transfer_once = Energy::ZERO;
        for ai in 0..na {
            let mut prev: Option<Level> = None;
            let mut written = false;
            let bytes = app.array_bytes(ai);
            for ci in 0..nc {
                if !app.live_in(ci).contains(&ai) {
                    continue;
                }
                let here = sched.placement[ci][ai];
                let from = prev.unwrap_or(Level::External);
                if from != here && here != Level::External {
                    transfer_once += self.transfer_energy(bytes, from, here);
                }
                if app.contexts()[ci]
                    .accesses
                    .iter()
                    .any(|&(a, _, w)| a == ai && w > 0)
                {
                    written = true;
                }
                prev = Some(here);
            }
            if written {
                if let Some(last) = prev {
                    if last != Level::External {
                        transfer_once += self.transfer_energy(bytes, last, Level::External);
                    }
                }
            }
        }
        report.add("transfer", transfer_once * iters);
        // Reconfiguration: every iteration loads every context's
        // configuration. A resident configuration is streamed from external
        // once (into L1) and read from L1 thereafter; otherwise every load
        // streams from external.
        for (ci, ctx) in app.contexts().iter().enumerate() {
            let words = ctx.config_words as f64;
            let e = if sched.cache_config[ci] {
                (self.e_ext + self.e_l1_write) * words
                    + (self.e_l1_read + self.e_context_word) * words * iters
            } else {
                (self.e_ext + self.e_context_word) * words * iters
            };
            report.add("reconfig", e);
        }
        Ok(report)
    }
}

/// Benefit-aware greedy scheduler.
///
/// Arrays keep one level for their whole lifetime (which keeps migration
/// traffic at zero and makes capacity accounting conservative). For each
/// array the scheduler computes the *net* energy benefit of each on-chip
/// level — access savings versus external, minus the staging transfer in
/// and the dirty drain out — and packs positive-benefit arrays into L0,
/// then L1, densest (benefit per byte) first. Leftover L1 capacity is then
/// spent keeping the most-reloaded configurations resident when that saves
/// energy.
pub fn greedy_schedule(app: &AppSpec, platform: &SchedPlatform) -> Schedule {
    let nc = app.num_contexts();
    let na = app.num_arrays();
    let mut placement = vec![vec![Level::External; na]; nc];

    // Whole-application traffic per array (one iteration; the iteration
    // count scales savings and costs identically, so it cancels).
    let mut reads = vec![0u64; na];
    let mut writes = vec![0u64; na];
    for ctx in app.contexts() {
        for &(ai, r, w) in &ctx.accesses {
            reads[ai] += r;
            writes[ai] += w;
        }
    }
    // Net benefit of placing array `ai` at `level` for its whole lifetime.
    let benefit = |ai: usize, level: Level| -> f64 {
        let bytes = app.array_bytes(ai);
        let saving = (platform.e_ext - platform.read_energy(level)) * reads[ai] as f64
            + (platform.e_ext - platform.write_energy(level)) * writes[ai] as f64;
        let mut cost = platform.transfer_energy(bytes, Level::External, level);
        if writes[ai] > 0 {
            cost += platform.transfer_energy(bytes, level, Level::External);
        }
        (saving - cost).as_pj()
    };

    let mut order: Vec<usize> = (0..na).filter(|&ai| reads[ai] + writes[ai] > 0).collect();
    order.sort_by(|&a, &b| {
        let da = benefit(a, Level::L0) / app.array_bytes(a) as f64;
        let db = benefit(b, Level::L0) / app.array_bytes(b) as f64;
        db.partial_cmp(&da)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // Capacity is per context: an array occupies a level only while live.
    let live_contexts: Vec<Vec<usize>> = (0..na)
        .map(|ai| {
            (0..nc)
                .filter(|&ci| app.live_in(ci).contains(&ai))
                .collect()
        })
        .collect();
    let mut l0_used = vec![0u64; nc];
    let mut l1_used = vec![0u64; nc];
    for ai in order {
        let bytes = app.array_bytes(ai);
        let fits =
            |used: &[u64], cap: u64| live_contexts[ai].iter().all(|&ci| used[ci] + bytes <= cap);
        let level = if fits(&l0_used, platform.l0_bytes) && benefit(ai, Level::L0) > 0.0 {
            for &ci in &live_contexts[ai] {
                l0_used[ci] += bytes;
            }
            Level::L0
        } else if fits(&l1_used, platform.l1_bytes) && benefit(ai, Level::L1) > 0.0 {
            for &ci in &live_contexts[ai] {
                l1_used[ci] += bytes;
            }
            Level::L1
        } else {
            Level::External
        };
        if level != Level::External {
            for &ci in &live_contexts[ai] {
                placement[ci][ai] = level;
            }
        }
    }

    // Configuration residency: resident configs occupy L1 in every context,
    // so the budget is the minimum slack across contexts. Cache the
    // configurations with the best savings-per-byte first.
    let mut cache_config = vec![false; nc];
    if app.iterations() > 1 {
        let mut budget = l1_used
            .iter()
            .map(|&u| platform.l1_bytes - u)
            .min()
            .unwrap_or(0);
        // Savings of caching context ci's config:
        //   iters·e_ext  ->  (e_ext + e_l1_write) + iters·e_l1_read
        let iters = app.iterations() as f64;
        let mut candidates: Vec<(usize, f64, u64)> = app
            .contexts()
            .iter()
            .enumerate()
            .filter(|(_, ctx)| ctx.config_words > 0)
            .map(|(ci, ctx)| {
                let words = ctx.config_words as f64;
                let cold = platform.e_ext * words * iters;
                let cached = (platform.e_ext + platform.e_l1_write) * words
                    + platform.e_l1_read * words * iters;
                (ci, (cold - cached).as_pj(), ctx.config_words * 4)
            })
            .filter(|&(_, saving, _)| saving > 0.0)
            .collect();
        candidates.sort_by(|a, b| {
            let da = a.1 / a.2 as f64;
            let db = b.1 / b.2 as f64;
            db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
        });
        for (ci, _, bytes) in candidates {
            if bytes <= budget {
                cache_config[ci] = true;
                budget -= bytes;
            }
        }
    }
    Schedule {
        placement,
        cache_config,
    }
}

/// Naive baseline: every live array goes to L1 in declaration order until
/// L1 fills, the rest stay external; configurations always stream from
/// external memory.
pub fn naive_schedule(app: &AppSpec, platform: &SchedPlatform) -> Schedule {
    let nc = app.num_contexts();
    let na = app.num_arrays();
    let mut placement = vec![vec![Level::External; na]; nc];
    for (ci, row) in placement.iter_mut().enumerate() {
        let mut l1_free = platform.l1_bytes;
        for ai in app.live_in(ci) {
            let bytes = app.array_bytes(ai);
            if bytes <= l1_free {
                row[ai] = Level::L1;
                l1_free -= bytes;
            }
        }
    }
    Schedule {
        placement,
        cache_config: vec![false; nc],
    }
}

/// External-only baseline (no on-chip data at all).
pub fn external_only_schedule(app: &AppSpec) -> Schedule {
    Schedule {
        placement: vec![vec![Level::External; app.num_arrays()]; app.num_contexts()],
        cache_config: vec![false; app.num_contexts()],
    }
}

/// Exhaustively enumerates placements (no configuration caching) and
/// returns the cheapest valid schedule. Exponential — only for validating
/// the greedy scheduler on tiny instances.
///
/// # Panics
///
/// Panics if `arrays × contexts > 16` (the search would explode).
pub fn exhaustive_schedule(app: &AppSpec, platform: &SchedPlatform) -> Schedule {
    let nc = app.num_contexts();
    let na = app.num_arrays();
    let slots = nc * na;
    assert!(
        slots <= 16,
        "exhaustive search limited to 16 placement slots"
    );
    let levels = [Level::L0, Level::L1, Level::External];
    let mut best: Option<(f64, Schedule)> = None;
    let total = 3usize.pow(slots as u32);
    for code in 0..total {
        let mut c = code;
        let mut placement = vec![vec![Level::External; na]; nc];
        for row in placement.iter_mut() {
            for slot in row.iter_mut() {
                *slot = levels[c % 3];
                c /= 3;
            }
        }
        let sched = Schedule {
            placement,
            cache_config: vec![false; nc],
        };
        if let Ok(report) = platform.evaluate(app, &sched) {
            let e = report.total().as_pj();
            if best.as_ref().map(|(b, _)| e < *b).unwrap_or(true) {
                best = Some((e, sched));
            }
        }
    }
    best.expect("external-only placement is always valid").1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::tech180()
    }

    fn platform() -> SchedPlatform {
        SchedPlatform::new(&tech(), 1 << 10, 8 << 10)
    }

    fn simple_app() -> AppSpec {
        AppSpec::new(
            vec![("coef", 512), ("frame", 4096), ("scratch", 16384)],
            vec![
                ContextSpec::new(128, vec![(0, 10_000, 0), (1, 3_000, 1_000)]),
                ContextSpec::new(128, vec![(1, 2_000, 2_000), (2, 500, 500)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn spec_validation() {
        assert!(AppSpec::new(vec![("a", 0)], vec![ContextSpec::new(0, vec![])]).is_err());
        assert!(AppSpec::new(vec![("a", 4)], vec![]).is_err());
        assert!(
            AppSpec::with_iterations(vec![("a", 4)], vec![ContextSpec::new(0, vec![])], 0).is_err()
        );
        let bad = AppSpec::new(vec![("a", 4)], vec![ContextSpec::new(0, vec![(1, 1, 0)])]);
        assert_eq!(
            bad.unwrap_err(),
            SchedError::UnknownArray {
                context: 0,
                array: 1
            }
        );
    }

    #[test]
    fn live_sets() {
        let app = simple_app();
        assert_eq!(app.live_in(0), vec![0, 1]);
        assert_eq!(app.live_in(1), vec![1, 2]);
        assert_eq!(app.array_name(2), "scratch");
    }

    #[test]
    fn capacity_violations_are_rejected() {
        let app = simple_app();
        let p = platform();
        // scratch (16 KiB) cannot live in L0 (1 KiB).
        let mut sched = external_only_schedule(&app);
        sched.placement[1][2] = Level::L0;
        assert_eq!(
            p.evaluate(&app, &sched).unwrap_err(),
            SchedError::OverCapacity {
                context: 1,
                level: Level::L0
            }
        );
    }

    #[test]
    fn resident_configs_consume_l1_everywhere() {
        // An app whose L1 is exactly full of arrays in context 0: caching
        // any config must overflow.
        let app = AppSpec::with_iterations(
            vec![("big", 8 << 10)],
            vec![ContextSpec::new(64, vec![(0, 100, 0)])],
            8,
        )
        .unwrap();
        let p = platform();
        let sched = Schedule {
            placement: vec![vec![Level::L1]],
            cache_config: vec![true],
        };
        assert_eq!(
            p.evaluate(&app, &sched).unwrap_err(),
            SchedError::OverCapacity {
                context: 0,
                level: Level::L1
            }
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let app = simple_app();
        let p = platform();
        let sched = Schedule {
            placement: vec![vec![Level::External; 3]],
            cache_config: vec![false],
        };
        assert_eq!(
            p.evaluate(&app, &sched).unwrap_err(),
            SchedError::ShapeMismatch
        );
    }

    #[test]
    fn onchip_beats_external_for_hot_arrays() {
        let app = simple_app();
        let p = platform();
        let ext = p.evaluate(&app, &external_only_schedule(&app)).unwrap();
        let greedy = p.evaluate(&app, &greedy_schedule(&app, &p)).unwrap();
        assert!(
            greedy.total() < ext.total() * 0.5,
            "greedy {} ext {}",
            greedy.total(),
            ext.total()
        );
    }

    #[test]
    fn greedy_beats_naive_on_dense_small_arrays() {
        let app = simple_app();
        let p = platform();
        let greedy = p.evaluate(&app, &greedy_schedule(&app, &p)).unwrap();
        let naive = p.evaluate(&app, &naive_schedule(&app, &p)).unwrap();
        assert!(greedy.total() < naive.total());
    }

    #[test]
    fn greedy_respects_capacities() {
        let app = simple_app();
        let p = platform();
        assert!(p.evaluate(&app, &greedy_schedule(&app, &p)).is_ok());
    }

    #[test]
    fn config_caching_pays_off_across_iterations() {
        let app = AppSpec::with_iterations(
            vec![("a", 256)],
            vec![ContextSpec::new(256, vec![(0, 1_000, 0)])],
            64,
        )
        .unwrap();
        let p = platform();
        let cold = Schedule {
            placement: vec![vec![Level::L0]],
            cache_config: vec![false],
        };
        let cached = Schedule {
            placement: vec![vec![Level::L0]],
            cache_config: vec![true],
        };
        let e_cold = p.evaluate(&app, &cold).unwrap().component("reconfig");
        let e_cached = p.evaluate(&app, &cached).unwrap().component("reconfig");
        assert!(
            e_cached < e_cold * 0.2,
            "cached {e_cached} vs cold {e_cold}"
        );
        // And greedy should discover it.
        let greedy = greedy_schedule(&app, &p);
        assert!(greedy.cache_config[0]);
    }

    #[test]
    fn config_caching_not_used_for_single_iteration() {
        let app = simple_app();
        let greedy = greedy_schedule(&app, &platform());
        assert!(greedy.cache_config.iter().all(|&c| !c));
    }

    #[test]
    fn transfer_energy_charged_on_migration() {
        let app = AppSpec::new(
            vec![("buf", 1024)],
            vec![
                ContextSpec::new(0, vec![(0, 100, 100)]),
                ContextSpec::new(0, vec![(0, 100, 100)]),
            ],
        )
        .unwrap();
        let p = platform();
        let stable = Schedule {
            placement: vec![vec![Level::L1], vec![Level::L1]],
            cache_config: vec![false, false],
        };
        let migrating = Schedule {
            placement: vec![vec![Level::L1], vec![Level::L0]],
            cache_config: vec![false, false],
        };
        let e_stable = p.evaluate(&app, &stable).unwrap();
        let e_migrating = p.evaluate(&app, &migrating).unwrap();
        assert!(e_migrating.component("transfer") > e_stable.component("transfer"));
    }

    #[test]
    fn dirty_arrays_drain_to_external() {
        let read_only = AppSpec::new(
            vec![("buf", 1024)],
            vec![ContextSpec::new(0, vec![(0, 100, 0)])],
        )
        .unwrap();
        let written = AppSpec::new(
            vec![("buf", 1024)],
            vec![ContextSpec::new(0, vec![(0, 100, 1)])],
        )
        .unwrap();
        let p = platform();
        let sched = Schedule {
            placement: vec![vec![Level::L1]],
            cache_config: vec![false],
        };
        let e_ro = p
            .evaluate(&read_only, &sched)
            .unwrap()
            .component("transfer");
        let e_rw = p.evaluate(&written, &sched).unwrap().component("transfer");
        assert!(e_rw > e_ro);
    }

    #[test]
    fn greedy_matches_exhaustive_on_tiny_instance() {
        let app = AppSpec::new(
            vec![("a", 512), ("b", 2048)],
            vec![
                ContextSpec::new(0, vec![(0, 5_000, 0), (1, 100, 0)]),
                ContextSpec::new(0, vec![(0, 5_000, 0)]),
            ],
        )
        .unwrap();
        let p = platform();
        let greedy = p
            .evaluate(&app, &greedy_schedule(&app, &p))
            .unwrap()
            .total();
        let best = p
            .evaluate(&app, &exhaustive_schedule(&app, &p))
            .unwrap()
            .total();
        assert!(best <= greedy);
        assert!(
            (greedy.as_pj() - best.as_pj()).abs() < 1e-6,
            "greedy {greedy} best {best}"
        );
    }

    #[test]
    fn reconfig_energy_scales_with_config_words() {
        let small =
            AppSpec::new(vec![("a", 4)], vec![ContextSpec::new(10, vec![(0, 1, 0)])]).unwrap();
        let large = AppSpec::new(
            vec![("a", 4)],
            vec![ContextSpec::new(1000, vec![(0, 1, 0)])],
        )
        .unwrap();
        let p = platform();
        let e_small = p
            .evaluate(&small, &external_only_schedule(&small))
            .unwrap()
            .component("reconfig");
        let e_large = p
            .evaluate(&large, &external_only_schedule(&large))
            .unwrap()
            .component("reconfig");
        assert!(e_large.as_pj() > 50.0 * e_small.as_pj());
    }

    #[test]
    fn access_energy_scales_with_iterations() {
        let mk = |iters| {
            AppSpec::with_iterations(
                vec![("a", 512)],
                vec![ContextSpec::new(0, vec![(0, 1_000, 0)])],
                iters,
            )
            .unwrap()
        };
        let p = platform();
        let sched = Schedule {
            placement: vec![vec![Level::L0]],
            cache_config: vec![false],
        };
        let e1 = p.evaluate(&mk(1), &sched).unwrap().component("l0.access");
        let e4 = p.evaluate(&mk(4), &sched).unwrap().component("l0.access");
        assert!((e4.as_pj() - 4.0 * e1.as_pj()).abs() < 1e-9);
    }
}
