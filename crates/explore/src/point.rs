//! The design-point encoding and the axis space it lives in.
//!
//! A [`DesignPoint`] fixes every cross-flow knob of the memory platform at
//! once: scratchpad banking, clustering granularity, D-cache geometry,
//! write-back codec, instruction-bus encoding, and scheduler L0 capacity.
//! A [`DesignSpace`] is the per-axis choice lists a search enumerates,
//! samples, and recombines — always through the space, so every produced
//! point stays on the axes.

use std::fmt;

use lpmem_cmp::{CmpSpec, LlcCodec, DEFAULT_QUANTUM};
use lpmem_core::flows::compression::PlatformKind;
use lpmem_core::flows::spec::VariantSpec;
use lpmem_energy::TechNode;
use lpmem_mem::CacheConfig;
use lpmem_util::Rng;

/// D-cache geometry: capacity, line size, associativity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes.
    pub line: u32,
    /// Associativity (ways).
    pub ways: u32,
}

impl CacheGeom {
    /// The simulator configuration of this geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`lpmem_mem::MemError`] for invalid geometries.
    pub fn config(&self) -> Result<CacheConfig, lpmem_mem::MemError> {
        CacheConfig::new(self.size, self.line, self.ways)
    }
}

impl fmt::Display for CacheGeom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.size, self.line, self.ways)
    }
}

/// Write-back compression codec choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CodecChoice {
    /// No compression hardware at all (no codec energy or area).
    Off,
    /// Word-differencing codec ([`lpmem_compress::DiffCodec`]).
    Differential,
    /// Zero-run codec ([`lpmem_compress::ZeroRunCodec`]).
    ZeroRun,
    /// Frequent-pattern codec ([`lpmem_compress::FpcCodec`]).
    Fpc,
}

impl CodecChoice {
    /// Every codec choice, in axis order.
    pub const ALL: [CodecChoice; 4] = [
        CodecChoice::Off,
        CodecChoice::Differential,
        CodecChoice::ZeroRun,
        CodecChoice::Fpc,
    ];

    /// Short key used in point keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            CodecChoice::Off => "off",
            CodecChoice::Differential => "diff",
            CodecChoice::ZeroRun => "zrun",
            CodecChoice::Fpc => "fpc",
        }
    }
}

/// Instruction-bus encoding choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BusChoice {
    /// Unencoded bus (no encoder energy or area).
    Raw,
    /// Gray-coded words.
    Gray,
    /// Bus-invert coding (one extra invert line).
    BusInvert,
    /// Trained per-region XOR encoding with this many regions.
    Xor(usize),
}

impl BusChoice {
    /// Short key used in point keys and reports.
    pub fn name(self) -> String {
        match self {
            BusChoice::Raw => "raw".to_owned(),
            BusChoice::Gray => "gray".to_owned(),
            BusChoice::BusInvert => "businv".to_owned(),
            BusChoice::Xor(r) => format!("xor{r}"),
        }
    }
}

/// One complete cross-flow platform configuration.
///
/// The key ties every axis into a stable, human-readable identifier
/// (`b8-k2048-c4096x64x2-diff-xor4-l01024`) used for deduplication,
/// deterministic tie-breaking, and JSONL rows.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignPoint {
    /// Scratchpad bank budget (partitioning `max_banks`).
    pub banks: usize,
    /// Clustering/profiling block granularity in bytes.
    pub block: u64,
    /// D-cache geometry.
    pub cache: CacheGeom,
    /// Write-back codec.
    pub codec: CodecChoice,
    /// Instruction-bus encoding.
    pub bus: BusChoice,
    /// Scheduler L0 scratchpad capacity in bytes.
    pub l0: u64,
    /// Chip-multiprocessor scenario: `None` is the single-core platform
    /// every pre-CMP frontier was built from (its keys and JSONL rows
    /// stay byte-identical); `Some` puts the point's D-cache geometry
    /// behind the shared compressed NUCA LLC the spec describes.
    pub cmp: Option<CmpSpec>,
}

impl DesignPoint {
    /// The stable identifier of this point.
    pub fn key(&self) -> String {
        let base = format!(
            "b{}-k{}-c{}-{}-{}-l0{}",
            self.banks,
            self.block,
            self.cache,
            self.codec.name(),
            self.bus.name(),
            self.l0
        );
        match &self.cmp {
            None => base,
            Some(spec) => format!("{base}-{}", spec.label()),
        }
    }

    /// Checks the structural validity constraints every axis value must
    /// satisfy regardless of which space produced the point.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 {
            return Err("bank budget must be at least 1".to_owned());
        }
        if self.block == 0 || !self.block.is_power_of_two() {
            return Err(format!("block size {} must be a power of two", self.block));
        }
        self.cache
            .config()
            .map_err(|e| format!("cache geometry: {e}"))?;
        if let BusChoice::Xor(0) = self.bus {
            return Err("xor encoding needs at least one region".to_owned());
        }
        if self.l0 == 0 || !self.l0.is_power_of_two() {
            return Err(format!("l0 capacity {} must be a power of two", self.l0));
        }
        if let Some(spec) = &self.cmp {
            // On this axis `None` already is the single-core platform, so
            // disabled and passthrough specs would only duplicate it under
            // a different key — the axis carries active scenarios only.
            if !spec.enabled() {
                return Err("a CMP scenario on the axis must be enabled".to_owned());
            }
            if spec.passthrough() {
                return Err(format!(
                    "passthrough CMP scenario {} duplicates the single-core point",
                    spec.label()
                ));
            }
            spec.validate(self.cache.line)
                .map_err(|e| format!("cmp scenario: {e}"))?;
        }
        Ok(())
    }

    /// Embeds a sweep-grid [`VariantSpec`] into the exploration space: the
    /// configuration the existing experiments run, expressed as a point the
    /// explorer can score and seed its search with.
    pub fn from_variant(variant: &VariantSpec) -> DesignPoint {
        let cache = match variant.platform {
            PlatformKind::VliwLike => CacheGeom {
                size: 4 << 10,
                line: 64,
                ways: 2,
            },
            PlatformKind::RiscLike => CacheGeom {
                size: 2 << 10,
                line: 16,
                ways: 2,
            },
        };
        DesignPoint {
            banks: variant.max_banks,
            block: variant.block_size,
            cache,
            codec: CodecChoice::Differential,
            bus: BusChoice::Xor(variant.regions),
            l0: variant.l0_bytes,
            cmp: None,
        }
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// The per-axis choice lists a search runs over.
///
/// All search operators (enumeration, sampling, mutation, crossover) go
/// through the space, so every point they produce is drawn from the axis
/// lists — validity is a property of the space, checked once by
/// [`DesignSpace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignSpace {
    /// Bank-budget axis.
    pub banks: Vec<usize>,
    /// Block-granularity axis (bytes).
    pub blocks: Vec<u64>,
    /// D-cache geometry axis.
    pub caches: Vec<CacheGeom>,
    /// Codec axis.
    pub codecs: Vec<CodecChoice>,
    /// Bus-encoding axis.
    pub buses: Vec<BusChoice>,
    /// L0-capacity axis (bytes).
    pub l0s: Vec<u64>,
    /// CMP-scenario axis. `vec![None]` (the only value in [`full`] and
    /// [`small`]) keeps the space exactly its pre-CMP self; the
    /// [`DesignSpace::cmp`] preset widens it with active scenarios.
    ///
    /// [`full`]: DesignSpace::full
    /// [`small`]: DesignSpace::small
    pub cmps: Vec<Option<CmpSpec>>,
}

impl DesignSpace {
    /// The full exploration space: every axis at its production breadth
    /// (20 736 points). Contains the embeddings of both sweep variants
    /// (`default` and `tight`).
    pub fn full() -> DesignSpace {
        let mut caches = Vec::new();
        for size in [2u64 << 10, 4 << 10, 8 << 10] {
            for line in [16u32, 32, 64] {
                for ways in [1u32, 2] {
                    caches.push(CacheGeom { size, line, ways });
                }
            }
        }
        DesignSpace {
            banks: vec![2, 4, 8, 16],
            blocks: vec![1024, 2048, 4096],
            caches,
            codecs: CodecChoice::ALL.to_vec(),
            buses: vec![
                BusChoice::Raw,
                BusChoice::Gray,
                BusChoice::BusInvert,
                BusChoice::Xor(1),
                BusChoice::Xor(4),
                BusChoice::Xor(8),
            ],
            l0s: vec![256, 512, 1024, 2048],
            cmps: vec![None],
        }
    }

    /// The chip-multiprocessor exploration space: [`full`] widened with a
    /// seventh axis of active CMP scenarios — core count × NUCA geometry
    /// (banks × bank capacity × ways) × LLC codec × heterogeneous
    /// technology split, all under the headline 600 µW leakage budget.
    ///
    /// The axis keeps `None` (the single-core platform) so pre-CMP
    /// designs stay comparable on the same frontier, and filters
    /// technology splits to at most one partition per bank. The result is
    /// a 1441-scenario axis over the 20 736-point base: a 29 880 576-point
    /// space (pinned by test), satisfying the ≥10⁷-point exploration goal.
    ///
    /// [`full`]: DesignSpace::full
    pub fn cmp() -> DesignSpace {
        let mut cmps: Vec<Option<CmpSpec>> = vec![None];
        let splits: [&[TechNode]; 7] = [
            &[TechNode::T180],
            &[TechNode::T130],
            &[TechNode::T90],
            &[TechNode::T180, TechNode::T90],
            &[TechNode::T180, TechNode::T130],
            &[TechNode::T130, TechNode::T90],
            &[TechNode::T180, TechNode::T130, TechNode::T90],
        ];
        for cores in [2u32, 4, 8] {
            for banks in [2u32, 4, 8] {
                for bank_kib in [16u32, 32, 64] {
                    for ways in [2u32, 4] {
                        for codec in LlcCodec::ALL {
                            for techs in splits {
                                if techs.len() > banks as usize {
                                    continue;
                                }
                                cmps.push(Some(CmpSpec {
                                    cores,
                                    banks,
                                    bank_kib,
                                    ways,
                                    codec,
                                    techs: techs.to_vec(),
                                    budget_uw: 600,
                                    quantum: DEFAULT_QUANTUM,
                                }));
                            }
                        }
                    }
                }
            }
        }
        DesignSpace {
            cmps,
            ..DesignSpace::full()
        }
    }

    /// The 32-point space of the DSE-2 agreement experiment: small enough
    /// to exhaust, structured enough that the frontier is non-trivial.
    pub fn small() -> DesignSpace {
        DesignSpace {
            banks: vec![4, 8],
            blocks: vec![2048],
            caches: vec![
                CacheGeom {
                    size: 2 << 10,
                    line: 16,
                    ways: 2,
                },
                CacheGeom {
                    size: 4 << 10,
                    line: 64,
                    ways: 2,
                },
            ],
            codecs: vec![CodecChoice::Off, CodecChoice::Differential],
            buses: vec![BusChoice::Raw, BusChoice::Xor(4)],
            l0s: vec![512, 1024],
            cmps: vec![None],
        }
    }

    /// Number of points in the space (product of axis lengths).
    pub fn len(&self) -> usize {
        self.banks.len()
            * self.blocks.len()
            * self.caches.len()
            * self.codecs.len()
            * self.buses.len()
            * self.l0s.len()
            * self.cmps.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the point at a mixed-radix index in enumeration order
    /// (banks vary slowest, L0 fastest).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn point_at(&self, idx: usize) -> DesignPoint {
        assert!(
            idx < self.len(),
            "index {idx} out of a {}-point space",
            self.len()
        );
        let mut rest = idx;
        let mut take = |len: usize| {
            let i = rest % len;
            rest /= len;
            i
        };
        // Consume fastest-varying axes first (the reverse of the nesting).
        // The CMP axis varies slowest so a widened space enumerates its
        // entire pre-CMP prefix (cmp = None) first, in the old order.
        let l0 = self.l0s[take(self.l0s.len())];
        let bus = self.buses[take(self.buses.len())];
        let codec = self.codecs[take(self.codecs.len())];
        let cache = self.caches[take(self.caches.len())];
        let block = self.blocks[take(self.blocks.len())];
        let banks = self.banks[take(self.banks.len())];
        let cmp = self.cmps[take(self.cmps.len())].clone();
        DesignPoint {
            banks,
            block,
            cache,
            codec,
            bus,
            l0,
            cmp,
        }
    }

    /// Iterates every point in enumeration order.
    pub fn enumerate(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        (0..self.len()).map(|i| self.point_at(i))
    }

    /// `true` when every axis value of `point` is on the corresponding
    /// axis list.
    pub fn contains(&self, point: &DesignPoint) -> bool {
        self.banks.contains(&point.banks)
            && self.blocks.contains(&point.block)
            && self.caches.contains(&point.cache)
            && self.codecs.contains(&point.codec)
            && self.buses.contains(&point.bus)
            && self.l0s.contains(&point.l0)
            && self.cmps.contains(&point.cmp)
    }

    /// Checks that the space is non-empty and every point it can produce
    /// is structurally valid (it suffices to check each axis value once).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid axis value.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Err("design space has an empty axis".to_owned());
        }
        // One representative point per axis value covers all constraints,
        // since validity is per-axis.
        let base = self.point_at(0);
        for &banks in &self.banks {
            DesignPoint {
                banks,
                ..base.clone()
            }
            .validate()?;
        }
        for &block in &self.blocks {
            DesignPoint {
                block,
                ..base.clone()
            }
            .validate()?;
        }
        for &cache in &self.caches {
            DesignPoint {
                cache,
                ..base.clone()
            }
            .validate()?;
        }
        for &codec in &self.codecs {
            DesignPoint {
                codec,
                ..base.clone()
            }
            .validate()?;
        }
        for &bus in &self.buses {
            DesignPoint {
                bus,
                ..base.clone()
            }
            .validate()?;
        }
        for &l0 in &self.l0s {
            DesignPoint { l0, ..base.clone() }.validate()?;
        }
        // The CMP axis is the one cross-axis constraint (bank capacity
        // vs. L1 line size), so check it against every cache geometry.
        for cmp in &self.cmps {
            for &cache in &self.caches {
                DesignPoint {
                    cmp: cmp.clone(),
                    cache,
                    ..base.clone()
                }
                .validate()?;
            }
        }
        Ok(())
    }

    /// Draws a uniformly random point.
    pub fn sample(&self, rng: &mut Rng) -> DesignPoint {
        let pick = |rng: &mut Rng, len: usize| rng.bounded_u64(len as u64) as usize;
        DesignPoint {
            banks: self.banks[pick(rng, self.banks.len())],
            block: self.blocks[pick(rng, self.blocks.len())],
            cache: self.caches[pick(rng, self.caches.len())],
            codec: self.codecs[pick(rng, self.codecs.len())],
            bus: self.buses[pick(rng, self.buses.len())],
            l0: self.l0s[pick(rng, self.l0s.len())],
            cmp: self.cmps[pick(rng, self.cmps.len())].clone(),
        }
    }

    /// Replaces one randomly chosen axis value with a different value from
    /// the same axis (a no-op on axes with a single choice — the next axis
    /// in round-robin order is tried instead).
    pub fn mutate(&self, point: &DesignPoint, rng: &mut Rng) -> DesignPoint {
        let mut out = point.clone();
        let start = rng.bounded_u64(7);
        for step in 0..7 {
            let axis = (start + step) % 7;
            if self.mutate_axis(&mut out, axis, rng) {
                return out;
            }
        }
        out
    }

    /// Mutates one axis in place; `false` when the axis has no alternative
    /// value to switch to.
    fn mutate_axis(&self, point: &mut DesignPoint, axis: u64, rng: &mut Rng) -> bool {
        fn other<T: PartialEq + Clone>(list: &[T], current: &T, rng: &mut Rng) -> Option<T> {
            let alts: Vec<&T> = list.iter().filter(|v| *v != current).collect();
            if alts.is_empty() {
                None
            } else {
                Some((*alts[rng.bounded_u64(alts.len() as u64) as usize]).clone())
            }
        }
        match axis {
            0 => other(&self.banks, &point.banks, rng).map(|v| point.banks = v),
            1 => other(&self.blocks, &point.block, rng).map(|v| point.block = v),
            2 => other(&self.caches, &point.cache, rng).map(|v| point.cache = v),
            3 => other(&self.codecs, &point.codec, rng).map(|v| point.codec = v),
            4 => other(&self.buses, &point.bus, rng).map(|v| point.bus = v),
            5 => other(&self.l0s, &point.l0, rng).map(|v| point.l0 = v),
            _ => other(&self.cmps, &point.cmp, rng).map(|v| point.cmp = v),
        }
        .is_some()
    }

    /// Uniform per-axis crossover of two parents.
    pub fn crossover(&self, a: &DesignPoint, b: &DesignPoint, rng: &mut Rng) -> DesignPoint {
        DesignPoint {
            banks: if rng.gen_bool(0.5) { a.banks } else { b.banks },
            block: if rng.gen_bool(0.5) { a.block } else { b.block },
            cache: if rng.gen_bool(0.5) { a.cache } else { b.cache },
            codec: if rng.gen_bool(0.5) { a.codec } else { b.codec },
            bus: if rng.gen_bool(0.5) { a.bus } else { b.bus },
            l0: if rng.gen_bool(0.5) { a.l0 } else { b.l0 },
            cmp: if rng.gen_bool(0.5) {
                a.cmp.clone()
            } else {
                b.cmp.clone()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let space = DesignSpace::small();
        let keys: std::collections::BTreeSet<String> = space.enumerate().map(|p| p.key()).collect();
        assert_eq!(keys.len(), space.len(), "keys must be unique");
        let p = space.point_at(0);
        assert_eq!(p.key(), space.point_at(0).key(), "keys must be stable");
    }

    #[test]
    fn spaces_are_valid_and_sized_as_documented() {
        let full = DesignSpace::full();
        assert_eq!(full.len(), 4 * 3 * 18 * 4 * 6 * 4);
        full.validate().unwrap();
        let small = DesignSpace::small();
        assert_eq!(small.len(), 32);
        small.validate().unwrap();
    }

    #[test]
    fn cmp_space_is_pinned_and_exceeds_ten_million_points() {
        let space = DesignSpace::cmp();
        // 1440 active scenarios + the single-core None over the full base.
        assert_eq!(space.cmps.len(), 1441);
        assert_eq!(space.len(), 20_736 * 1441);
        assert!(space.len() >= 10_000_000, "ROADMAP item 4 floor");
        space.validate().unwrap();
        // The widened space enumerates its entire pre-CMP prefix first, in
        // the old order, so existing frontier seeds keep their indices.
        let full = DesignSpace::full();
        assert_eq!(space.point_at(0), full.point_at(0));
        assert_eq!(
            space.point_at(full.len() - 1),
            full.point_at(full.len() - 1)
        );
        assert!(space.point_at(full.len()).cmp.is_some());
        // Scenario keys stay distinct from the base point's key.
        let base = space.point_at(0);
        let widened = space.point_at(full.len());
        assert!(widened.key().starts_with(&base.key()));
        assert_ne!(widened.key(), base.key());
    }

    #[test]
    fn cmp_axis_rejects_degenerate_scenarios() {
        let good = DesignSpace::cmp().point_at(20_736);
        assert!(good.cmp.is_some());
        good.validate().unwrap();
        assert!(DesignPoint {
            cmp: Some(CmpSpec::off()),
            ..good.clone()
        }
        .validate()
        .is_err());
        let passthrough = CmpSpec {
            cores: 2,
            banks: 1,
            bank_kib: 32,
            ways: 4,
            ..CmpSpec::off()
        };
        assert!(DesignPoint {
            cmp: Some(passthrough),
            ..good.clone()
        }
        .validate()
        .is_err());
        let tiny_bank = CmpSpec {
            bank_kib: 0,
            ..CmpSpec::quad()
        };
        assert!(DesignPoint {
            cmp: Some(tiny_bank),
            ..good
        }
        .validate()
        .is_err());
    }

    #[test]
    fn enumeration_visits_every_point_once() {
        let space = DesignSpace::small();
        let points: Vec<DesignPoint> = space.enumerate().collect();
        assert_eq!(points.len(), 32);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(*p, space.point_at(i));
            assert!(space.contains(p));
        }
    }

    #[test]
    fn sweep_variants_embed_into_the_full_space() {
        let space = DesignSpace::full();
        for variant in [VariantSpec::default(), VariantSpec::tight()] {
            let p = DesignPoint::from_variant(&variant);
            p.validate().unwrap();
            assert!(space.contains(&p), "{} not on the axes", p.key());
        }
        let d = DesignPoint::from_variant(&VariantSpec::default());
        assert_eq!(d.key(), "b8-k2048-c4096x64x2-diff-xor4-l01024");
    }

    #[test]
    fn operators_stay_on_the_axes() {
        let space = DesignSpace::full();
        let mut rng = Rng::seed_from_u64(7);
        let mut a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        for _ in 0..200 {
            let child = space.crossover(&a, &b, &mut rng);
            let mutant = space.mutate(&child, &mut rng);
            assert!(space.contains(&child));
            assert!(space.contains(&mutant));
            a = mutant;
        }
    }

    #[test]
    fn mutation_changes_exactly_one_axis() {
        // `full` has a single-choice CMP axis (mutation falls through to
        // the next axis); `cmp` exercises mutation onto and off scenarios.
        for space in [DesignSpace::full(), DesignSpace::cmp()] {
            let mut rng = Rng::seed_from_u64(11);
            let p = space.sample(&mut rng);
            for _ in 0..50 {
                let m = space.mutate(&p, &mut rng);
                let diffs = [
                    m.banks != p.banks,
                    m.block != p.block,
                    m.cache != p.cache,
                    m.codec != p.codec,
                    m.bus != p.bus,
                    m.l0 != p.l0,
                    m.cmp != p.cmp,
                ]
                .iter()
                .filter(|&&d| d)
                .count();
                assert_eq!(diffs, 1, "{} vs {}", p.key(), m.key());
            }
        }
    }

    #[test]
    fn invalid_points_are_rejected() {
        let good = DesignSpace::small().point_at(0);
        assert!(DesignPoint {
            banks: 0,
            ..good.clone()
        }
        .validate()
        .is_err());
        assert!(DesignPoint {
            block: 1000,
            ..good.clone()
        }
        .validate()
        .is_err());
        assert!(DesignPoint {
            bus: BusChoice::Xor(0),
            ..good.clone()
        }
        .validate()
        .is_err());
        assert!(DesignPoint {
            l0: 0,
            ..good.clone()
        }
        .validate()
        .is_err());
        let bad_cache = CacheGeom {
            size: 100,
            line: 64,
            ways: 2,
        };
        assert!(DesignPoint {
            cache: bad_cache,
            ..good
        }
        .validate()
        .is_err());
    }
}
