//! Multi-objective design-space exploration for the `lpmem` workspace.
//!
//! The four Session 1B flows each optimize one knob of the same embedded
//! memory platform. This crate searches the **cross-flow configuration
//! space** — scratchpad banking, clustering granularity, D-cache geometry,
//! write-back codec, instruction-bus encoding, scheduler L0 capacity — and
//! emits the Pareto frontier over three minimized objectives: energy (pJ),
//! silicon area (mm², via the promoted [`lpmem_energy::AreaReport`]
//! accounting), and memory cycles.
//!
//! The pieces:
//!
//! * [`DesignPoint`] / [`DesignSpace`] — the axis encoding, with stable
//!   keys, validity checks, and embeddings of the sweep grid's variants;
//! * [`Evaluator`] — maps a point through the existing flows
//!   ([`run_partitioning`](lpmem_core::flows::partitioning::run_partitioning),
//!   [`run_compression_trace`](lpmem_core::flows::compression::run_compression_trace),
//!   the bus encoders, the greedy scheduler) and scores it as
//!   [`Objectives`];
//! * [`Exhaustive`] and [`Evolutionary`] — two [`SearchStrategy`]
//!   implementations fanning candidate evaluation across the
//!   [`lpmem_util::pool`] work-stealing pool, with every random draw
//!   seeded by logical coordinates so frontiers are **byte-identical at
//!   any worker count**;
//! * [`Frontier`] — non-dominated archive with NSGA-II helpers
//!   ([`frontier::non_dominated_ranks`], [`frontier::crowding_distances`])
//!   and deterministic JSONL dumps.
//!
//! # Example
//!
//! ```
//! use lpmem_explore::{DesignSpace, Evaluator, Exhaustive, SearchConfig, SearchStrategy, Workload};
//!
//! let space = DesignSpace::small();
//! let evaluator = Evaluator::new(Workload { scale: 16, iterations: 8, ..Workload::default() })?;
//! let cfg = SearchConfig { budget: 8, ..Default::default() };
//! let out = Exhaustive.search(&space, &evaluator, &cfg)?;
//! assert!(!out.frontier.is_empty());
//! # Ok::<(), lpmem_core::FlowError>(())
//! ```

#![warn(missing_docs)]

pub mod eval;
pub mod frontier;
pub mod point;
pub mod search;

pub use eval::{Evaluation, Evaluator, MemoShard, Objectives, Workload};
pub use frontier::Frontier;
pub use point::{BusChoice, CacheGeom, CodecChoice, DesignPoint, DesignSpace};
pub use search::{
    parse_strategy, Evolutionary, Exhaustive, SearchConfig, SearchOutcome, SearchStrategy,
};
