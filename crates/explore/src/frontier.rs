//! Pareto-frontier maintenance: archive insertion, non-dominated sorting,
//! and crowding distance.
//!
//! The [`Frontier`] is an archive: every evaluated point is offered to it,
//! dominated entries are evicted, and the survivors are kept in a
//! deterministic total order — `(energy, area, cycles, silent, key)`
//! ascending —
//! so two searches that evaluate the same points produce **byte-identical
//! frontiers** regardless of evaluation interleaving or worker count.
//! [`nsga_order`] ranks a whole population NSGA-II style (front rank, then
//! crowding distance, then key) for the evolutionary search's selection.

use std::cmp::Ordering;

use lpmem_util::JsonObject;

use crate::eval::{Evaluation, Objectives};

/// A non-dominated archive over evaluated design points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Frontier {
    points: Vec<Evaluation>,
}

impl Frontier {
    /// Creates an empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Offers an evaluation to the archive. Returns `true` when it joins
    /// the frontier (evicting any members it dominates); `false` when an
    /// existing member dominates it or shares its key.
    ///
    /// Distinct points with **equal** objective vectors are collapsed to
    /// one representative — the lexicographically smallest key — so the
    /// archive holds one entry per Pareto-optimal objective vector and
    /// its contents never depend on insertion order.
    pub fn insert(&mut self, eval: Evaluation) -> bool {
        let key = eval.point.key();
        if self.points.iter().any(|p| {
            p.objectives.dominates(&eval.objectives)
                || (p.objectives == eval.objectives && p.point.key() <= key)
        }) {
            return false;
        }
        self.points.retain(|p| {
            !eval.objectives.dominates(&p.objectives) && p.objectives != eval.objectives
        });
        let at = self
            .points
            .binary_search_by(|p| order(&p.objectives, &p.point.key(), &eval.objectives, &key))
            .unwrap_or_else(|i| i);
        self.points.insert(at, eval);
        true
    }

    /// The frontier members in deterministic order.
    pub fn points(&self) -> &[Evaluation] {
        &self.points
    }

    /// Number of frontier members.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `true` when some member dominates `objectives`.
    pub fn dominates(&self, objectives: &Objectives) -> bool {
        self.points
            .iter()
            .any(|p| p.objectives.dominates(objectives))
    }

    /// One JSON object per member, in frontier order, newline-terminated —
    /// the byte-identical dump format of the `explore` binary.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            let mut row = JsonObject::new()
                .str("key", &p.point.key())
                .u64("banks", p.point.banks as u64)
                .u64("block", p.point.block)
                .u64("cache_bytes", p.point.cache.size)
                .u64("cache_line", u64::from(p.point.cache.line))
                .u64("cache_ways", u64::from(p.point.cache.ways))
                .str("codec", p.point.codec.name())
                .str("bus", &p.point.bus.name())
                .u64("l0", p.point.l0)
                .f64("energy_pj", p.objectives.energy_pj)
                .f64("area_mm2", p.objectives.area_mm2)
                .u64("cycles", p.objectives.cycles);
            // Reliability fields appear only for fault-scored evaluations,
            // so fault-free dumps keep their historical bytes.
            if let Some(r) = &p.reliability {
                row = row
                    .u64("injected", r.injected)
                    .u64("masked", r.masked)
                    .u64("detected", r.detected)
                    .u64("corrected", r.corrected)
                    .u64("silent", r.silent);
            }
            // CMP fields likewise appear only on scenario points, so
            // single-core dumps keep their historical bytes.
            if let (Some(spec), Some(c)) = (&p.point.cmp, &p.cmp) {
                row = row
                    .str("cmp", &spec.label())
                    .u64("cores", u64::from(c.cores))
                    .u64("llc_banks", u64::from(c.llc_banks))
                    .u64("dark_banks", u64::from(c.dark_banks))
                    .u64("llc_lookups", c.llc_lookups)
                    .u64("llc_hits", c.llc_hits)
                    .u64("llc_lines", c.llc_lines)
                    .u64("llc_compressed", c.llc_compressed_lines)
                    .u64("offchip_beats", c.offchip_beats)
                    .u64("cmp_cycles", c.cycles);
            }
            out.push_str(&row.finish());
            out.push('\n');
        }
        out
    }
}

/// The frontier's total order: objectives lexicographically, key as the
/// final tie-break (total over distinct points, since keys are unique).
fn order(a: &Objectives, a_key: &str, b: &Objectives, b_key: &str) -> Ordering {
    a.energy_pj
        .total_cmp(&b.energy_pj)
        .then_with(|| a.area_mm2.total_cmp(&b.area_mm2))
        .then_with(|| a.cycles.cmp(&b.cycles))
        .then_with(|| a.silent.cmp(&b.silent))
        .then_with(|| a_key.cmp(b_key))
}

/// Assigns each objective vector its non-dominated front rank (0 = the
/// Pareto front of the set, 1 = the front after removing rank 0, …).
pub fn non_dominated_ranks(objectives: &[Objectives]) -> Vec<usize> {
    let n = objectives.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0;
    let mut current = 0;
    while assigned < n {
        // The front is computed against the remaining set as it stood at
        // the start of the pass; assignments land only once the scan is
        // complete, so members of the same front never mask one another.
        let front: Vec<usize> = (0..n)
            .filter(|&i| rank[i] == usize::MAX)
            .filter(|&i| {
                !(0..n).any(|j| {
                    j != i && rank[j] == usize::MAX && objectives[j].dominates(&objectives[i])
                })
            })
            .collect();
        assert!(!front.is_empty(), "every pass assigns at least one point");
        for &i in &front {
            rank[i] = current;
        }
        assigned += front.len();
        current += 1;
    }
    rank
}

/// NSGA-II crowding distance of each member **within its own front**.
/// Boundary points get `f64::INFINITY`.
pub fn crowding_distances(objectives: &[Objectives], ranks: &[usize]) -> Vec<f64> {
    assert_eq!(objectives.len(), ranks.len());
    let n = objectives.len();
    let mut dist = vec![0.0f64; n];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for front in 0..=max_rank {
        let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == front).collect();
        if members.is_empty() {
            continue;
        }
        // The silent axis joins only when some member actually corrupts:
        // a constant axis would re-crown its (index-order) boundary points
        // as infinitely uncrowded, perturbing fault-free searches that
        // must stay bit-for-bit on their historical trajectories.
        let axes: [fn(&Objectives) -> f64; 4] = [
            |o| o.energy_pj,
            |o| o.area_mm2,
            |o| o.cycles as f64,
            |o| o.silent as f64,
        ];
        let live = if objectives.iter().any(|o| o.silent > 0) {
            &axes[..]
        } else {
            &axes[..3]
        };
        for &extract in live {
            let mut sorted = members.clone();
            sorted.sort_by(|&a, &b| extract(&objectives[a]).total_cmp(&extract(&objectives[b])));
            let lo = extract(&objectives[sorted[0]]);
            let hi = extract(&objectives[*sorted.last().expect("non-empty front")]);
            dist[sorted[0]] = f64::INFINITY;
            dist[*sorted.last().expect("non-empty front")] = f64::INFINITY;
            if hi > lo {
                for w in sorted.windows(3) {
                    let gap = (extract(&objectives[w[2]]) - extract(&objectives[w[0]])) / (hi - lo);
                    dist[w[1]] += gap;
                }
            }
        }
    }
    dist
}

/// Orders a population NSGA-II style: front rank ascending, crowding
/// distance descending, point key ascending. The returned indices are a
/// permutation of `0..evals.len()`; taking a prefix selects the survivors.
pub fn nsga_order(evals: &[Evaluation]) -> Vec<usize> {
    let objectives: Vec<Objectives> = evals.iter().map(|e| e.objectives).collect();
    let ranks = non_dominated_ranks(&objectives);
    let dist = crowding_distances(&objectives, &ranks);
    let keys: Vec<String> = evals.iter().map(|e| e.point.key()).collect();
    let mut idx: Vec<usize> = (0..evals.len()).collect();
    idx.sort_by(|&a, &b| {
        ranks[a]
            .cmp(&ranks[b])
            .then_with(|| dist[b].total_cmp(&dist[a]))
            .then_with(|| keys[a].cmp(&keys[b]))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{BusChoice, CacheGeom, CodecChoice, DesignPoint};
    use lpmem_energy::AreaReport;

    fn eval(banks: usize, energy: f64, area: f64, cycles: u64) -> Evaluation {
        // Distinct `banks` gives distinct keys without touching the rest.
        let point = DesignPoint {
            banks,
            block: 2048,
            cache: CacheGeom {
                size: 4096,
                line: 64,
                ways: 2,
            },
            codec: CodecChoice::Differential,
            bus: BusChoice::Xor(4),
            l0: 1024,
            cmp: None,
        };
        Evaluation {
            point,
            objectives: Objectives {
                energy_pj: energy,
                area_mm2: area,
                cycles,
                silent: 0,
            },
            area: AreaReport::new(),
            reliability: None,
            cmp: None,
        }
    }

    #[test]
    fn jsonl_rows_carry_cmp_fields_only_for_scenario_points() {
        use lpmem_cmp::{CmpReport, CmpSpec};
        let mut f = Frontier::new();
        f.insert(eval(1, 10.0, 1.0, 100));
        let mut chip = eval(2, 8.0, 2.0, 120);
        let spec = CmpSpec::quad();
        chip.point.cmp = Some(spec.clone());
        chip.cmp = Some(CmpReport {
            spec: spec.label(),
            cores: 4,
            llc_banks: 8,
            dark_banks: 2,
            llc_lookups: 1000,
            llc_hits: 700,
            llc_lines: 90,
            llc_compressed_lines: 40,
            offchip_beats: 300,
            cycles: 5000,
        });
        f.insert(chip);
        let jsonl = f.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let (solo, cmp_row) = if lines[0].contains("\"cmp\"") {
            (lines[1], lines[0])
        } else {
            (lines[0], lines[1])
        };
        assert!(!solo.contains("\"cmp\""));
        assert!(!solo.contains("llc_lookups"));
        assert!(cmp_row.contains(&format!("\"cmp\":\"{}\"", spec.label())));
        assert!(cmp_row.contains("\"dark_banks\":2"));
        assert!(cmp_row.contains("\"cmp_cycles\":5000"));
    }

    #[test]
    fn insert_rejects_dominated_and_evicts_dominated() {
        let mut f = Frontier::new();
        assert!(f.insert(eval(1, 10.0, 1.0, 100)));
        // Dominated by the member: rejected.
        assert!(!f.insert(eval(2, 11.0, 1.0, 100)));
        // Trade-off: joins.
        assert!(f.insert(eval(3, 12.0, 0.5, 100)));
        assert_eq!(f.len(), 2);
        // Dominates both: evicts both.
        assert!(f.insert(eval(4, 9.0, 0.4, 90)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].point.banks, 4);
    }

    #[test]
    fn insertion_order_does_not_change_the_frontier() {
        let evals = vec![
            eval(1, 10.0, 1.0, 100),
            eval(2, 8.0, 2.0, 100),
            eval(3, 12.0, 0.5, 90),
        ];
        let mut forward = Frontier::new();
        let mut backward = Frontier::new();
        for e in &evals {
            forward.insert(e.clone());
        }
        for e in evals.iter().rev() {
            backward.insert(e.clone());
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.to_jsonl(), backward.to_jsonl());
    }

    #[test]
    fn equal_objectives_collapse_to_the_smallest_key() {
        // b8 arrives first but b4's key sorts lower; either insertion
        // order leaves exactly the b4 representative on the frontier.
        let mut f = Frontier::new();
        assert!(f.insert(eval(8, 10.0, 1.0, 100)));
        assert!(f.insert(eval(4, 10.0, 1.0, 100)));
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].point.banks, 4);
        let mut g = Frontier::new();
        assert!(g.insert(eval(4, 10.0, 1.0, 100)));
        assert!(!g.insert(eval(8, 10.0, 1.0, 100)));
        assert_eq!(f, g);
    }

    #[test]
    fn duplicate_keys_are_not_double_inserted() {
        let mut f = Frontier::new();
        assert!(f.insert(eval(1, 10.0, 1.0, 100)));
        assert!(!f.insert(eval(1, 10.0, 1.0, 100)));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn no_member_dominates_another() {
        let mut f = Frontier::new();
        for i in 0..50 {
            let e = ((i * 7) % 13) as f64;
            let a = ((i * 5) % 11) as f64;
            let c = (i * 3) % 17;
            f.insert(eval(i + 1, e, a, c as u64));
        }
        for x in f.points() {
            for y in f.points() {
                assert!(!x.objectives.dominates(&y.objectives), "{:?} vs {:?}", x, y);
            }
        }
    }

    #[test]
    fn ranks_layer_the_set() {
        let objs = vec![
            Objectives {
                energy_pj: 1.0,
                area_mm2: 1.0,
                cycles: 1,
                silent: 0,
            },
            Objectives {
                energy_pj: 2.0,
                area_mm2: 2.0,
                cycles: 2,
                silent: 0,
            },
            Objectives {
                energy_pj: 3.0,
                area_mm2: 3.0,
                cycles: 3,
                silent: 0,
            },
            Objectives {
                energy_pj: 0.5,
                area_mm2: 3.0,
                cycles: 1,
                silent: 0,
            },
        ];
        let ranks = non_dominated_ranks(&objs);
        assert_eq!(ranks, vec![0, 1, 2, 0]);
    }

    #[test]
    fn crowding_favours_boundary_points() {
        let objs = vec![
            Objectives {
                energy_pj: 0.0,
                area_mm2: 10.0,
                cycles: 5,
                silent: 0,
            },
            Objectives {
                energy_pj: 1.0,
                area_mm2: 9.0,
                cycles: 5,
                silent: 0,
            },
            Objectives {
                energy_pj: 9.0,
                area_mm2: 1.0,
                cycles: 5,
                silent: 0,
            },
            Objectives {
                energy_pj: 10.0,
                area_mm2: 0.0,
                cycles: 5,
                silent: 0,
            },
        ];
        let ranks = non_dominated_ranks(&objs);
        assert!(ranks.iter().all(|&r| r == 0));
        let dist = crowding_distances(&objs, &ranks);
        assert!(dist[0].is_infinite() && dist[3].is_infinite());
        assert!(dist[1].is_finite() && dist[2].is_finite());
        // The middle points sit in uneven gaps: the one next to the wide
        // gap is more crowded-distant.
        assert!(dist[2] > 0.0 && dist[1] > 0.0);
    }

    #[test]
    fn nsga_order_is_a_deterministic_permutation() {
        let evals = vec![
            eval(1, 1.0, 1.0, 1),
            eval(2, 2.0, 2.0, 2),
            eval(3, 0.5, 3.0, 1),
            eval(4, 3.0, 0.2, 4),
        ];
        let a = nsga_order(&evals);
        let b = nsga_order(&evals);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Rank-0 members come first.
        let objs: Vec<Objectives> = evals.iter().map(|e| e.objectives).collect();
        let ranks = non_dominated_ranks(&objs);
        assert!(ranks[a[0]] <= ranks[*a.last().unwrap()]);
    }
}
