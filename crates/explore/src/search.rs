//! Search strategies over a [`DesignSpace`]: exhaustive enumeration and a
//! seeded (μ+λ) evolutionary search, both behind [`SearchStrategy`].
//!
//! Determinism contract: the set of evaluated points — and therefore the
//! archive frontier — depends only on `(space, workload, SearchConfig)`,
//! never on thread scheduling. Candidate batches are fixed *before* they
//! are fanned across the work-stealing pool; every random draw comes from
//! an [`Rng`] seeded by [`SplitMix64::derive`] on logical coordinates
//! (generation, offspring index), not on execution order. Frontier dumps
//! are byte-identical at any `workers` count.

use std::collections::HashSet;

use lpmem_core::FlowError;
use lpmem_util::{parallel_map_with, Rng, SplitMix64};

use crate::eval::{Evaluation, Evaluator, MemoShard};
use crate::frontier::{nsga_order, Frontier};
use crate::point::{DesignPoint, DesignSpace};

/// Shared knobs of every search strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SearchConfig {
    /// Maximum number of evaluations (seeds included).
    pub budget: usize,
    /// Base seed of every random draw.
    pub seed: u64,
    /// Worker threads candidate evaluation fans across.
    pub workers: usize,
    /// Points evaluated first, before any enumeration or sampling —
    /// typically the sweep-grid embeddings, so the frontier provably
    /// covers the configurations the existing experiments run.
    pub seeds: Vec<DesignPoint>,
}

impl Default for SearchConfig {
    /// 256 evaluations, seed 2003, single worker, no seed points.
    fn default() -> Self {
        SearchConfig {
            budget: 256,
            seed: 2003,
            workers: 1,
            seeds: Vec::new(),
        }
    }
}

/// What a search hands back: the archive frontier over everything it
/// evaluated, plus the evaluation count actually spent.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Non-dominated archive over all evaluated points.
    pub frontier: Frontier,
    /// Evaluations performed (≤ budget).
    pub evaluated: usize,
}

/// A deterministic search strategy over a design space.
pub trait SearchStrategy {
    /// Strategy key used on the command line and in reports.
    fn name(&self) -> &'static str;

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (never expected for a validated
    /// space).
    fn search(
        &self,
        space: &DesignSpace,
        evaluator: &Evaluator,
        cfg: &SearchConfig,
    ) -> Result<SearchOutcome, FlowError>;
}

/// Evaluates a fixed batch on the pool, preserving batch order, and folds
/// every result into the frontier. Each worker memoizes sub-flow results
/// into its own [`MemoShard`] (no locking on the hot path); the shards are
/// absorbed into the evaluator's base table afterwards so the next batch
/// starts warm. Cached values are pure in their keys, so the results — and
/// the frontier built from them — are byte-identical at any worker count.
fn evaluate_batch(
    batch: Vec<DesignPoint>,
    evaluator: &Evaluator,
    workers: usize,
    frontier: &mut Frontier,
) -> Result<Vec<Evaluation>, FlowError> {
    let (results, shards) = parallel_map_with(batch, workers, |shard: &mut MemoShard, p| {
        evaluator.evaluate_in(shard, &p)
    });
    for shard in shards {
        evaluator.absorb(shard);
    }
    let mut evals = Vec::with_capacity(results.len());
    for r in results {
        let e = r?;
        frontier.insert(e.clone());
        evals.push(e);
    }
    Ok(evals)
}

/// Enumerates the space in axis order (after the seed points) until the
/// budget is spent — exact by construction whenever `budget ≥ space.len()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl SearchStrategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn search(
        &self,
        space: &DesignSpace,
        evaluator: &Evaluator,
        cfg: &SearchConfig,
    ) -> Result<SearchOutcome, FlowError> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut batch: Vec<DesignPoint> = Vec::new();
        for p in cfg.seeds.iter().cloned().chain(space.enumerate()) {
            if batch.len() >= cfg.budget {
                break;
            }
            if seen.insert(p.key()) {
                batch.push(p);
            }
        }
        let mut frontier = Frontier::new();
        let evaluated = batch.len();
        evaluate_batch(batch, evaluator, cfg.workers, &mut frontier)?;
        Ok(SearchOutcome {
            frontier,
            evaluated,
        })
    }
}

/// Seeded (μ+λ) evolutionary search with NSGA-II survivor selection.
///
/// Offspring are produced by per-axis crossover of tournament-selected
/// parents followed by one mutation; candidates are deduplicated by key
/// against everything ever evaluated, falling back to the first unseen
/// point in enumeration order — so given budget the search provably
/// exhausts small spaces (the DSE-2 agreement guarantee).
#[derive(Debug, Clone, Copy)]
pub struct Evolutionary {
    /// Survivor population size.
    pub mu: usize,
    /// Offspring per generation.
    pub lambda: usize,
}

impl Default for Evolutionary {
    /// μ = 16, λ = 32.
    fn default() -> Self {
        Evolutionary { mu: 16, lambda: 32 }
    }
}

impl Evolutionary {
    /// A candidate not yet in `seen`: `propose` is tried a bounded number
    /// of times, then the first unseen point in enumeration order is taken
    /// (`None` only when the space is exhausted).
    fn fresh(
        space: &DesignSpace,
        seen: &HashSet<String>,
        rng: &mut Rng,
        mut propose: impl FnMut(&mut Rng) -> DesignPoint,
    ) -> Option<DesignPoint> {
        for _ in 0..16 {
            let p = propose(rng);
            if !seen.contains(&p.key()) {
                return Some(p);
            }
        }
        space.enumerate().find(|p| !seen.contains(&p.key()))
    }
}

impl SearchStrategy for Evolutionary {
    fn name(&self) -> &'static str {
        "evolutionary"
    }

    fn search(
        &self,
        space: &DesignSpace,
        evaluator: &Evaluator,
        cfg: &SearchConfig,
    ) -> Result<SearchOutcome, FlowError> {
        assert!(
            self.mu > 0 && self.lambda > 0,
            "population sizes must be positive"
        );
        let mut seen: HashSet<String> = HashSet::new();
        let mut frontier = Frontier::new();
        let mut evaluated = 0usize;

        // Generation 0: seed points, then uniform samples up to μ.
        let mut rng = Rng::seed_from_u64(SplitMix64::derive(cfg.seed, &[0]));
        let mut init: Vec<DesignPoint> = Vec::new();
        for p in &cfg.seeds {
            if init.len() >= cfg.budget {
                break;
            }
            if seen.insert(p.key()) {
                init.push(p.clone());
            }
        }
        while init.len() < self.mu.min(cfg.budget) {
            match Self::fresh(space, &seen, &mut rng, |r| space.sample(r)) {
                Some(p) => {
                    seen.insert(p.key());
                    init.push(p);
                }
                None => break,
            }
        }
        evaluated += init.len();
        let mut population = evaluate_batch(init, evaluator, cfg.workers, &mut frontier)?;

        let mut generation = 1u64;
        while evaluated < cfg.budget && seen.len() < space.len() && !population.is_empty() {
            // Rank the survivors once; tournaments then compare positions
            // in this deterministic order (lower index = fitter).
            let order = nsga_order(&population);
            let ranked: Vec<&Evaluation> = order.iter().map(|&i| &population[i]).collect();

            let remaining = cfg.budget - evaluated;
            let mut batch: Vec<DesignPoint> = Vec::new();
            for i in 0..self.lambda.min(remaining) {
                if seen.len() >= space.len() {
                    break;
                }
                let mut r =
                    Rng::seed_from_u64(SplitMix64::derive(cfg.seed, &[generation, i as u64]));
                let tournament = |r: &mut Rng| {
                    let a = r.bounded_u64(ranked.len() as u64) as usize;
                    let b = r.bounded_u64(ranked.len() as u64) as usize;
                    ranked[a.min(b)]
                };
                let p1 = tournament(&mut r).point.clone();
                let p2 = tournament(&mut r).point.clone();
                let child = Self::fresh(space, &seen, &mut r, |r| {
                    let c = space.crossover(&p1, &p2, r);
                    space.mutate(&c, r)
                });
                match child {
                    Some(p) => {
                        seen.insert(p.key());
                        batch.push(p);
                    }
                    None => break,
                }
            }
            if batch.is_empty() {
                break;
            }
            evaluated += batch.len();
            let offspring = evaluate_batch(batch, evaluator, cfg.workers, &mut frontier)?;
            population.extend(offspring);
            let order = nsga_order(&population);
            let survivors: Vec<Evaluation> = order
                .into_iter()
                .take(self.mu)
                .map(|i| population[i].clone())
                .collect();
            population = survivors;
            generation += 1;
        }

        Ok(SearchOutcome {
            frontier,
            evaluated,
        })
    }
}

/// Parses a strategy key (`"exhaustive"` or `"evolutionary"`); `"auto"`
/// picks exhaustive when the space fits the budget and evolutionary
/// otherwise.
pub fn parse_strategy(
    name: &str,
    space: &DesignSpace,
    budget: usize,
) -> Option<Box<dyn SearchStrategy>> {
    match name.trim().to_ascii_lowercase().as_str() {
        "exhaustive" => Some(Box::new(Exhaustive)),
        "evolutionary" => Some(Box::new(Evolutionary::default())),
        "auto" => {
            if space.len() <= budget {
                Some(Box::new(Exhaustive))
            } else {
                Some(Box::new(Evolutionary::default()))
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Workload;
    use lpmem_core::flows::spec::VariantSpec;

    fn evaluator() -> Evaluator {
        Evaluator::new(Workload {
            scale: 16,
            iterations: 8,
            ..Workload::default()
        })
        .unwrap()
    }

    #[test]
    fn exhaustive_covers_the_small_space() {
        let space = DesignSpace::small();
        let eval = evaluator();
        let cfg = SearchConfig {
            budget: 64,
            ..Default::default()
        };
        let out = Exhaustive.search(&space, &eval, &cfg).unwrap();
        assert_eq!(
            out.evaluated, 32,
            "budget above |space| evaluates everything once"
        );
        assert!(!out.frontier.is_empty());
        // Frontier members are mutually non-dominated (archive invariant).
        for a in out.frontier.points() {
            assert!(!out.frontier.dominates(&a.objectives));
        }
    }

    #[test]
    fn budget_caps_exhaustive_enumeration() {
        let space = DesignSpace::small();
        let eval = evaluator();
        let cfg = SearchConfig {
            budget: 7,
            ..Default::default()
        };
        let out = Exhaustive.search(&space, &eval, &cfg).unwrap();
        assert_eq!(out.evaluated, 7);
    }

    #[test]
    fn evolutionary_exhausts_small_spaces_and_matches_exhaustive() {
        let space = DesignSpace::small();
        let eval = evaluator();
        let cfg = SearchConfig {
            budget: 64,
            ..Default::default()
        };
        let exhaustive = Exhaustive.search(&space, &eval, &cfg).unwrap();
        let evolved = Evolutionary { mu: 8, lambda: 8 }
            .search(&space, &eval, &cfg)
            .unwrap();
        assert_eq!(
            evolved.evaluated, 32,
            "dedup + fallback must exhaust the space"
        );
        assert_eq!(
            evolved.frontier.to_jsonl(),
            exhaustive.frontier.to_jsonl(),
            "archives over the same evaluated set are identical"
        );
    }

    #[test]
    fn results_are_identical_at_any_worker_count() {
        let space = DesignSpace::small();
        let eval = evaluator();
        let mut dumps = Vec::new();
        for workers in [1usize, 2, 8] {
            let cfg = SearchConfig {
                budget: 20,
                workers,
                ..Default::default()
            };
            let out = Evolutionary { mu: 6, lambda: 6 }
                .search(&space, &eval, &cfg)
                .unwrap();
            dumps.push(out.frontier.to_jsonl());
        }
        assert_eq!(dumps[0], dumps[1]);
        assert_eq!(dumps[1], dumps[2]);
    }

    #[test]
    fn seeds_are_evaluated_first_and_protected_by_the_archive() {
        let space = DesignSpace::full();
        let eval = evaluator();
        let seeds = vec![
            DesignPoint::from_variant(&VariantSpec::default()),
            DesignPoint::from_variant(&VariantSpec::tight()),
        ];
        let cfg = SearchConfig {
            budget: 24,
            seeds: seeds.clone(),
            ..Default::default()
        };
        let out = Evolutionary { mu: 8, lambda: 8 }
            .search(&space, &eval, &cfg)
            .unwrap();
        // Every seed was scored; none can dominate the frontier from
        // outside it (it is either on the frontier or dominated by it).
        for s in &seeds {
            let e = eval.evaluate(s).unwrap();
            let on_frontier = out
                .frontier
                .points()
                .iter()
                .any(|p| p.point.key() == s.key());
            assert!(
                on_frontier || out.frontier.dominates(&e.objectives),
                "seed {} neither on nor dominated by the frontier",
                s.key()
            );
        }
    }

    #[test]
    fn strategy_parsing_and_auto_selection() {
        let small = DesignSpace::small();
        assert_eq!(
            parse_strategy("exhaustive", &small, 10).unwrap().name(),
            "exhaustive"
        );
        assert_eq!(
            parse_strategy("evolutionary", &small, 10).unwrap().name(),
            "evolutionary"
        );
        assert_eq!(
            parse_strategy("auto", &small, 64).unwrap().name(),
            "exhaustive"
        );
        assert_eq!(
            parse_strategy("auto", &small, 8).unwrap().name(),
            "evolutionary"
        );
        assert!(parse_strategy("nonsense", &small, 8).is_none());
    }
}
